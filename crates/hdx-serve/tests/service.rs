//! End-to-end service tests over real TCP: submit → poll → result, overload
//! shedding, cooperative cancel, graceful drain, and crash-style recovery
//! (a second server over the same state directory resumes the orphaned job
//! and serves the byte-identical result an uninterrupted server produces).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

use hdx_serve::{ServeConfig, Server};

/// One HTTP exchange (the service closes the connection per request).
struct Response {
    status: u16,
    headers: String,
    body: String,
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("write");
    let mut raw = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => raw.extend_from_slice(&buf[..n]),
            // A reset after the response arrived is expected when the
            // service refuses a body without reading it (413).
            Err(_) if !raw.is_empty() => break,
            Err(e) => panic!("read: {e}"),
        }
    }
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let (head, payload) = raw.split_once("\r\n\r\n").expect("blank line");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code");
    Response {
        status,
        headers: head.to_string(),
        body: payload.to_string(),
    }
}

fn tmp_state_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hdx-serve-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A dataset large enough that a job does not finish between two
/// back-to-back HTTP requests, small enough to complete in well under the
/// poll deadline.
fn sample_csv(rows: usize) -> String {
    let mut csv = String::from("class,pred,age,income,grp\n");
    for r in 0..rows {
        csv.push_str(&format!(
            "{},{},{},{},{}\n",
            u8::from(r % 3 == 0),
            u8::from(r % 4 == 0),
            r % 23,
            (r * 37) % 101,
            ["a", "b", "c", "d"][r % 4],
        ));
    }
    csv
}

fn submission(csv: &str, tenant: &str) -> String {
    format!(
        r#"{{"csv":"{}","tenant":"{tenant}","stat":"fpr","support":0.02,"checkpoint_every":1}}"#,
        hdx_serve::json::escape(csv)
    )
}

fn config(state_dir: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        state_dir,
        workers: 1,
        ..ServeConfig::default()
    }
}

/// Binds and runs a server on a background thread, returning its address
/// and the join handle (the thread exits when the server drains).
fn start(config: ServeConfig) -> (SocketAddr, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve"));
    (addr, handle)
}

/// Extracts a top-level string field from a JSON body (the status document
/// can contain arrays, which the flat submission parser rejects).
fn json_str_field(body: &str, key: &str) -> String {
    let marker = format!("\"{key}\":\"");
    let start = body
        .find(&marker)
        .unwrap_or_else(|| panic!("no `{key}` in {body}"))
        + marker.len();
    let rest = &body[start..];
    rest[..rest.find('"').expect("closing quote")].to_string()
}

/// Polls a job until it leaves the active states, returning its final state.
fn await_terminal(addr: SocketAddr, job_id: &str) -> String {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
        assert_eq!(status.status, 200, "{}", status.body);
        let state = json_str_field(&status.body, "state");
        if !matches!(state.as_str(), "queued" | "running" | "backoff") {
            return state;
        }
        assert!(
            Instant::now() < deadline,
            "job `{job_id}` stuck in `{state}`"
        );
        thread::sleep(Duration::from_millis(20));
    }
}

fn extract_job_id(body: &str) -> String {
    json_str_field(body, "job_id")
}

#[test]
fn submit_poll_result_lifecycle() {
    let state = tmp_state_dir("lifecycle");
    let (addr, handle) = start(config(state.clone()));
    assert_eq!(http(addr, "GET", "/healthz", "").status, 200);
    assert_eq!(http(addr, "GET", "/readyz", "").status, 200);

    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(200), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);

    // Not finished yet (or already done on a fast machine) — the result
    // endpoint must never 500 either way.
    let early = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert!(
        early.status == 200 || early.status == 409,
        "{}",
        early.headers
    );

    assert_eq!(await_terminal(addr, &job_id), "done");
    let result = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(result.status, 200);
    assert!(result.body.contains("\"subgroups\""), "{}", result.body);
    assert!(result.body.contains("\"termination\":\"complete\""));

    assert_eq!(http(addr, "GET", "/jobs/j-9999999999", "").status, 404);
    assert_eq!(
        http(addr, "POST", "/jobs", "{not json").status,
        400,
        "malformed submissions are rejected"
    );

    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn overload_sheds_with_retry_after_and_draining_refuses_work() {
    let state = tmp_state_dir("overload");
    let mut cfg = config(state.clone());
    cfg.tenant_max_jobs = 1;
    let (addr, handle) = start(cfg);

    // Slot 1: a job big enough to still be in flight when the second
    // submission lands a millisecond later.
    let first = http(
        addr,
        "POST",
        "/jobs",
        &submission(&sample_csv(4000), "acme"),
    );
    assert_eq!(first.status, 202, "{}", first.body);
    let first_id = extract_job_id(&first.body);

    let shed = http(addr, "POST", "/jobs", &submission(&sample_csv(10), "acme"));
    assert_eq!(shed.status, 429, "{}", shed.body);
    assert!(
        shed.headers.contains("Retry-After:"),
        "shed responses advise a retry: {}",
        shed.headers
    );
    // Another tenant is unaffected by acme's cap.
    let other = http(addr, "POST", "/jobs", &submission(&sample_csv(10), "zen"));
    assert_eq!(other.status, 202, "{}", other.body);

    assert_eq!(await_terminal(addr, &first_id), "done");

    // Draining: readiness flips and submissions shed with 503.
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    let late = http(addr, "POST", "/jobs", &submission(&sample_csv(10), "acme"));
    assert_eq!(late.status, 503, "{}", late.body);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn cancel_is_cooperative_and_keeps_partial_results() {
    let state = tmp_state_dir("cancel");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(
        addr,
        "POST",
        "/jobs",
        &submission(&sample_csv(4000), "acme"),
    );
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);

    let cancelled = http(addr, "POST", &format!("/jobs/{job_id}/cancel"), "");
    assert_eq!(cancelled.status, 202, "{}", cancelled.body);

    // A user cancel is terminal-with-results: the job finishes "done" with
    // a cancelled termination (or "complete" if it beat the cancel).
    assert_eq!(await_terminal(addr, &job_id), "done");
    let result = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(result.status, 200, "{}", result.body);
    assert!(
        result.body.contains("\"termination\":\"cancelled\"")
            || result.body.contains("\"termination\":\"complete\""),
        "{}",
        result.body
    );

    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn drain_then_restart_resumes_the_job_to_identical_bytes() {
    let state = tmp_state_dir("recovery");
    let csv = sample_csv(600);

    // Server #1 accepts the job and is immediately drained: whether the job
    // was still queued or already mining, it must land on disk incomplete.
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&csv, "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    // Server #2 over the same state directory: the orphan scan re-queues
    // the job and runs it to completion.
    let server = Server::bind(config(state.clone())).expect("rebind");
    assert!(
        server
            .recovery_notes
            .iter()
            .any(|n| n.contains(&job_id) && n.contains("resuming")),
        "recovery notes must name the orphan: {:?}",
        server.recovery_notes
    );
    let addr = server.local_addr();
    let handle = thread::spawn(move || server.run().expect("serve"));
    assert_eq!(await_terminal(addr, &job_id), "done");
    let resumed = http(addr, "GET", &format!("/jobs/{job_id}/result"), "");
    assert_eq!(resumed.status, 200);
    let status = http(addr, "GET", &format!("/jobs/{job_id}"), "");
    assert!(status.body.contains("\"resumed\":true"), "{}", status.body);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    // Control: an uninterrupted server over a fresh state directory.
    let control_state = tmp_state_dir("recovery-control");
    let (addr, handle) = start(config(control_state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&csv, "acme"));
    let control_id = extract_job_id(&accepted.body);
    assert_eq!(await_terminal(addr, &control_id), "done");
    let control = http(addr, "GET", &format!("/jobs/{control_id}/result"), "");
    assert_eq!(control.status, 200);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");

    assert_eq!(
        resumed.body, control.body,
        "a recovered job must serve the byte-identical result"
    );
    let _ = std::fs::remove_dir_all(&state);
    let _ = std::fs::remove_dir_all(&control_state);
}

#[test]
fn metrics_scrape_is_valid_exposition_in_every_build() {
    let state = tmp_state_dir("metrics");
    let (addr, handle) = start(config(state.clone()));
    let accepted = http(addr, "POST", "/jobs", &submission(&sample_csv(100), "acme"));
    assert_eq!(accepted.status, 202, "{}", accepted.body);
    let job_id = extract_job_id(&accepted.body);
    assert_eq!(await_terminal(addr, &job_id), "done");

    let scrape = http(addr, "GET", "/metrics", "");
    assert_eq!(scrape.status, 200, "{}", scrape.body);
    assert!(
        scrape.headers.contains("text/plain; version=0.0.4"),
        "exposition content type: {}",
        scrape.headers
    );
    // The grammar self-check is the contract: whatever this build records
    // (all-zero without `obs`), the page must parse as text-format 0.0.4.
    hdx_obs::expo::check_grammar(&scrape.body).expect("scrape page grammar");
    for family in [
        "hdx_serve_jobs_submitted_total",
        "hdx_serve_live_queue_depth",
        "hdx_serve_live_worker_utilization",
        "hdx_mining_sched_steals_per_1k_itemsets",
        "hdx_mining_level_latency_ns_bucket",
    ] {
        assert!(scrape.body.contains(family), "missing `{family}`");
    }
    // Counters must be cumulative across scrapes (Prometheus semantics):
    // a second scrape parses too and never goes backwards.
    let again = http(addr, "GET", "/metrics", "");
    hdx_obs::expo::check_grammar(&again.body).expect("second scrape grammar");
    let submitted = |body: &str| {
        body.lines()
            .find(|l| l.starts_with("hdx_serve_jobs_submitted_total "))
            .and_then(|l| l.split(' ').nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .expect("submitted counter sample")
    };
    assert!(submitted(&again.body) >= submitted(&scrape.body));

    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn oversized_bodies_are_refused_before_they_are_read() {
    let state = tmp_state_dir("toobig");
    let mut cfg = config(state.clone());
    cfg.max_body_bytes = 512;
    let (addr, handle) = start(cfg);
    let big = http(addr, "POST", "/jobs", &submission(&sample_csv(500), "acme"));
    assert_eq!(big.status, 413, "{}", big.headers);
    // The service is still healthy afterwards.
    assert_eq!(http(addr, "GET", "/healthz", "").status, 200);
    assert_eq!(http(addr, "POST", "/shutdown", "").status, 202);
    handle.join().expect("drain");
    let _ = std::fs::remove_dir_all(&state);
}
