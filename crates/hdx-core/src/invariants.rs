//! Runtime validator for the polarity-pruning invariant (paper §V-C).
//!
//! Polarity pruning runs one search over positive-divergence items and one
//! over negative-divergence items; the merged result must therefore be
//! *sign-homogeneous*: every mined itemset draws all of its items from a
//! single polarity class (items with zero/undefined single-item divergence
//! belong to both classes and never break homogeneity).
//!
//! Always compiled; under the `debug-invariants` feature,
//! [`mine_with_polarity`](crate::mine_with_polarity) validates every merged
//! result before returning it.

use std::collections::HashSet;

use hdx_items::{ItemId, Itemset};
use hdx_mining::{MiningResult, Transactions};

use crate::polarity::split_by_polarity;

/// A violated polarity invariant: an itemset mixes divergence signs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolarityViolation {
    /// The offending itemset.
    pub itemset: Itemset,
    /// A member whose single-item divergence is strictly positive.
    pub positive_item: ItemId,
    /// A member whose single-item divergence is strictly negative.
    pub negative_item: ItemId,
}

impl std::fmt::Display for PolarityViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "polarity-pruned itemset {:?} mixes signs: {:?} diverges positively, {:?} negatively",
            self.itemset, self.positive_item, self.negative_item
        )
    }
}

impl std::error::Error for PolarityViolation {}

/// Validates sign-homogeneity of a polarity-pruned mining result: every
/// itemset is entirely contained in the positive item class or entirely in
/// the negative one (as computed by
/// [`split_by_polarity`](crate::split_by_polarity) on `transactions`).
pub fn validate_sign_homogeneity(
    result: &MiningResult,
    transactions: &Transactions,
) -> Result<(), PolarityViolation> {
    let (positive, negative) = split_by_polarity(transactions);
    for fi in &result.itemsets {
        let items = fi.itemset.items();
        let all_pos = items.iter().all(|i| positive.contains(i));
        let all_neg = items.iter().all(|i| negative.contains(i));
        if all_pos || all_neg {
            continue;
        }
        // Mixed: exhibit one strictly-positive and one strictly-negative
        // member (strict = member of exactly one class).
        let strict = |i: &ItemId, own: &HashSet<ItemId>, other: &HashSet<ItemId>| {
            own.contains(i) && !other.contains(i)
        };
        let pos_item = items.iter().find(|i| strict(i, &positive, &negative));
        let neg_item = items.iter().find(|i| strict(i, &negative, &positive));
        if let (Some(&p), Some(&n)) = (pos_item, neg_item) {
            return Err(PolarityViolation {
                itemset: fi.itemset.clone(),
                positive_item: p,
                negative_item: n,
            });
        }
    }
    Ok(())
}

/// Panicking form of [`validate_sign_homogeneity`], run by
/// [`mine_with_polarity`](crate::mine_with_polarity) under the
/// `debug-invariants` feature.
#[cfg(feature = "debug-invariants")]
pub(crate) fn assert_sign_homogeneity(result: &MiningResult, transactions: &Transactions) {
    if let Err(v) = validate_sign_homogeneity(result, transactions) {
        // An invariant violation is a search bug, never a user error.
        panic!("hdx invariant violated: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::{Item, ItemCatalog};
    use hdx_mining::FrequentItemset;
    use hdx_stats::{Outcome, StatAccum};

    /// Two attributes: a=hi / b=hi positive, a=lo / b=lo negative.
    fn setup() -> (Transactions, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let a_hi = c.intern(Item::cat_eq(AttrId(0), 0, "a", "hi"));
        let a_lo = c.intern(Item::cat_eq(AttrId(0), 1, "a", "lo"));
        let b_hi = c.intern(Item::cat_eq(AttrId(1), 0, "b", "hi"));
        let b_lo = c.intern(Item::cat_eq(AttrId(1), 1, "b", "lo"));
        let mut rows = Vec::new();
        let mut outcomes = Vec::new();
        for i in 0..40 {
            let a = if i % 2 == 0 { a_hi } else { a_lo };
            let b = if i % 4 < 2 { b_hi } else { b_lo };
            rows.push(vec![a, b]);
            outcomes.push(Outcome::Bool(a == a_hi && b == b_hi));
        }
        (
            Transactions::from_rows(rows, outcomes),
            vec![a_hi, a_lo, b_hi, b_lo],
        )
    }

    fn result_with(t: &Transactions, itemsets: Vec<Vec<ItemId>>) -> MiningResult {
        MiningResult::complete(
            itemsets
                .into_iter()
                .map(|items| FrequentItemset {
                    itemset: Itemset::from_sorted_unchecked(items),
                    accum: StatAccum::from_outcomes(&[Outcome::Bool(true)]),
                })
                .collect(),
            t.n_rows(),
            t.global_accum(),
        )
    }

    #[test]
    fn homogeneous_result_passes() {
        let (t, ids) = setup();
        let r = result_with(
            &t,
            vec![
                vec![ids[0]],
                vec![ids[0], ids[2]], // hi+hi: both positive
                vec![ids[1], ids[3]], // lo+lo: both negative
            ],
        );
        assert!(validate_sign_homogeneity(&r, &t).is_ok());
    }

    #[test]
    fn mixed_sign_itemset_rejected() {
        let (t, ids) = setup();
        // a=hi (positive) with b=lo (negative): forbidden by §V-C.
        let r = result_with(&t, vec![vec![ids[0], ids[3]]]);
        let err = validate_sign_homogeneity(&r, &t).unwrap_err();
        assert_eq!(err.positive_item, ids[0]);
        assert_eq!(err.negative_item, ids[3]);
    }
}
