//! Base (non-hierarchical) divergence exploration — DivExplorer (§III-C).

use std::time::Instant;

use hdx_data::DataFrame;
use hdx_items::{HierarchySet, ItemCatalog};
use hdx_mining::{mine, MiningAlgorithm, MiningConfig, Transactions};
use hdx_stats::Outcome;

use crate::polarity::mine_with_polarity;
use crate::report::DivergenceReport;

/// Parameters of a divergence exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExplorationConfig {
    /// Minimum subgroup support `s`.
    pub min_support: f64,
    /// Mining algorithm.
    pub algorithm: MiningAlgorithm,
    /// Optional cap on pattern length.
    pub max_len: Option<usize>,
    /// Whether to apply polarity pruning (§V-C).
    pub polarity_pruning: bool,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            algorithm: MiningAlgorithm::default(),
            max_len: None,
            polarity_pruning: false,
        }
    }
}

impl ExplorationConfig {
    fn mining_config(&self) -> MiningConfig {
        MiningConfig {
            min_support: self.min_support,
            max_len: self.max_len,
            algorithm: self.algorithm,
        }
    }
}

/// The base explorer: frequent-itemset mining over **leaf** items with
/// divergence accumulated during mining (prior work's setting — the paper's
/// "base exploration").
#[derive(Debug, Clone, Default)]
pub struct DivExplorer {
    config: ExplorationConfig,
}

impl DivExplorer {
    /// Creates an explorer.
    pub fn new(config: ExplorationConfig) -> Self {
        Self { config }
    }

    /// The configuration.
    pub fn config(&self) -> &ExplorationConfig {
        &self.config
    }

    /// Explores the leaf items of `hierarchies` over `df`.
    pub fn explore(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
    ) -> DivergenceReport {
        let transactions = Transactions::encode_base(df, catalog, hierarchies, outcomes);
        self.explore_transactions(&transactions, catalog)
    }

    /// Explores **all** hierarchy items (generalized exploration, used by
    /// H-DivExplorer).
    pub fn explore_generalized(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
    ) -> DivergenceReport {
        let transactions = Transactions::encode_generalized(df, catalog, hierarchies, outcomes);
        self.explore_transactions(&transactions, catalog)
    }

    /// Explores pre-encoded transactions.
    pub fn explore_transactions(
        &self,
        transactions: &Transactions,
        catalog: &ItemCatalog,
    ) -> DivergenceReport {
        let start = Instant::now();
        let mining = self.config.mining_config();
        let result = if self.config.polarity_pruning {
            mine_with_polarity(transactions, catalog, &mining)
        } else {
            mine(transactions, catalog, &mining)
        };
        DivergenceReport::from_mining(&result, catalog, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::{Interval, Item, ItemHierarchy};

    /// Dataset: error concentrated in x>50 & g=b.
    fn setup() -> (DataFrame, ItemCatalog, HierarchySet, Vec<Outcome>) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let g = b.add_categorical("g").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..200 {
            let xv = (i % 100) as f64;
            let gv = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(vec![Value::Num(xv), Value::Cat(gv.into())])
                .unwrap();
            outcomes.push(Outcome::Bool(xv > 50.0 && gv == "b" && i % 8 != 0));
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let mut hx = ItemHierarchy::new(x);
        let le50 = catalog.intern(Item::range(x, Interval::at_most(50.0), "x"));
        let gt50 = catalog.intern(Item::range(x, Interval::greater_than(50.0), "x"));
        let le25 = catalog.intern(Item::range(x, Interval::at_most(25.0), "x"));
        let m = catalog.intern(Item::range(x, Interval::new(25.0, 50.0), "x"));
        hx.add_root(le50);
        hx.add_root(gt50);
        hx.add_child(le50, le25);
        hx.add_child(le50, m);
        let col = df.categorical(g).clone();
        let cat_items: Vec<_> = (0..col.n_levels() as u32)
            .map(|c| catalog.intern(Item::cat_eq(g, c, "g", col.level(c))))
            .collect();
        let mut hs = HierarchySet::new();
        hs.push(hx);
        hs.push(ItemHierarchy::flat(g, cat_items));
        (df, catalog, hs, outcomes)
    }

    #[test]
    fn base_finds_the_anomalous_intersection() {
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            ..ExplorationConfig::default()
        });
        let report = explorer.explore(&df, &catalog, &hs, &outcomes);
        let top = report.top().unwrap();
        assert!(top.label.contains("x>50"));
        assert!(top.label.contains("g=b"));
        assert!(top.divergence.unwrap() > 0.3);
        assert!(top.t_value > 2.0);
    }

    #[test]
    fn base_uses_only_leaves() {
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::default();
        let report = explorer.explore(&df, &catalog, &hs, &outcomes);
        // x<=50 is an internal node: never mined in base mode.
        assert!(report.records.iter().all(|r| !r.label.contains("x<=50")));
        // Its children are.
        assert!(report.records.iter().any(|r| r.label.contains("x<=25")));
    }

    #[test]
    fn generalized_includes_internal_items() {
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::default();
        let report = explorer.explore_generalized(&df, &catalog, &hs, &outcomes);
        assert!(report.records.iter().any(|r| r.label.contains("x<=50")));
        // Generalized is a superset of base.
        let base = explorer.explore(&df, &catalog, &hs, &outcomes);
        assert!(report.records.len() > base.records.len());
        assert!(report.max_divergence() >= base.max_divergence());
    }

    #[test]
    fn polarity_pruning_preserves_top_divergence() {
        let (df, catalog, hs, outcomes) = setup();
        let full = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            ..ExplorationConfig::default()
        });
        let pruned = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            polarity_pruning: true,
            ..ExplorationConfig::default()
        });
        let rf = full.explore_generalized(&df, &catalog, &hs, &outcomes);
        let rp = pruned.explore_generalized(&df, &catalog, &hs, &outcomes);
        assert_eq!(rf.max_divergence(), rp.max_divergence());
        assert!(rp.records.len() <= rf.records.len());
    }

    #[test]
    fn all_algorithms_give_same_report() {
        let (df, catalog, hs, outcomes) = setup();
        let reports: Vec<DivergenceReport> = [
            MiningAlgorithm::Apriori,
            MiningAlgorithm::FpGrowth,
            MiningAlgorithm::Vertical,
        ]
        .into_iter()
        .map(|algorithm| {
            DivExplorer::new(ExplorationConfig {
                min_support: 0.05,
                algorithm,
                ..ExplorationConfig::default()
            })
            .explore_generalized(&df, &catalog, &hs, &outcomes)
        })
        .collect();
        for r in &reports[1..] {
            assert_eq!(r.records.len(), reports[0].records.len());
            assert_eq!(r.top().unwrap().label, reports[0].top().unwrap().label);
            assert_eq!(r.max_divergence(), reports[0].max_divergence());
        }
    }
}
