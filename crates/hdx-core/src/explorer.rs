//! Base (non-hierarchical) divergence exploration — DivExplorer (§III-C).

use std::time::Instant;

use hdx_data::DataFrame;
use hdx_governor::{CancelToken, Governor, RunBudget};
use hdx_items::{HierarchySet, ItemCatalog};
use hdx_mining::{mine_governed, MiningAlgorithm, MiningConfig, Transactions};
use hdx_stats::Outcome;

use crate::polarity::mine_with_polarity_governed;
use crate::report::DivergenceReport;

/// Parameters of a divergence exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExplorationConfig {
    /// Minimum subgroup support `s`.
    pub min_support: f64,
    /// Mining algorithm.
    pub algorithm: MiningAlgorithm,
    /// Optional cap on pattern length.
    pub max_len: Option<usize>,
    /// Worker threads for [`MiningAlgorithm::VerticalParallel`] (`None` =
    /// all available cores). Ignored by the serial algorithms.
    pub threads: Option<usize>,
    /// Whether to apply polarity pruning (§V-C).
    pub polarity_pruning: bool,
    /// Work/time limits for the run (unbounded by default). When a limit
    /// trips, the exploration degrades gracefully: the report carries a
    /// partial-but-valid subset and a non-`Complete`
    /// [`Termination`](hdx_governor::Termination).
    pub budget: RunBudget,
}

impl Default for ExplorationConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            algorithm: MiningAlgorithm::default(),
            max_len: None,
            threads: None,
            polarity_pruning: false,
            budget: RunBudget::unbounded(),
        }
    }
}

impl ExplorationConfig {
    fn mining_config(&self) -> MiningConfig {
        MiningConfig {
            min_support: self.min_support,
            max_len: self.max_len,
            algorithm: self.algorithm,
            threads: self.threads,
        }
    }
}

/// The base explorer: frequent-itemset mining over **leaf** items with
/// divergence accumulated during mining (prior work's setting — the paper's
/// "base exploration").
#[derive(Debug, Clone, Default)]
pub struct DivExplorer {
    config: ExplorationConfig,
    cancel: CancelToken,
}

impl DivExplorer {
    /// Creates an explorer.
    pub fn new(config: ExplorationConfig) -> Self {
        Self {
            config,
            cancel: CancelToken::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ExplorationConfig {
        &self.config
    }

    /// Observes an external cancellation token (builder style): cancelling
    /// the caller's handle makes every subsequent exploration wind down at
    /// its next poll point and return partial results.
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Explores the leaf items of `hierarchies` over `df`.
    pub fn explore(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
    ) -> DivergenceReport {
        let transactions = Transactions::encode_base(df, catalog, hierarchies, outcomes);
        self.explore_transactions(&transactions, catalog)
    }

    /// Explores **all** hierarchy items (generalized exploration, used by
    /// H-DivExplorer).
    pub fn explore_generalized(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
    ) -> DivergenceReport {
        let transactions = Transactions::encode_generalized(df, catalog, hierarchies, outcomes);
        self.explore_transactions(&transactions, catalog)
    }

    /// [`explore_generalized`](Self::explore_generalized) under an external
    /// [`Governor`] (used by the hierarchical pipeline to share one budget
    /// across stages). The governor's limits apply *instead of* the
    /// config's own [`budget`](ExplorationConfig::budget).
    pub fn explore_generalized_governed(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
        governor: &Governor,
    ) -> DivergenceReport {
        let transactions = Transactions::encode_generalized(df, catalog, hierarchies, outcomes);
        self.explore_transactions_governed(&transactions, catalog, governor)
    }

    /// [`explore`](Self::explore) under an external [`Governor`].
    pub fn explore_governed(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
        governor: &Governor,
    ) -> DivergenceReport {
        let transactions = Transactions::encode_base(df, catalog, hierarchies, outcomes);
        self.explore_transactions_governed(&transactions, catalog, governor)
    }

    /// Explores pre-encoded transactions under the config's own budget and
    /// the explorer's cancellation token.
    pub fn explore_transactions(
        &self,
        transactions: &Transactions,
        catalog: &ItemCatalog,
    ) -> DivergenceReport {
        let governor = Governor::with_token(self.config.budget, self.cancel.clone());
        self.explore_transactions_governed(transactions, catalog, &governor)
    }

    /// Explores pre-encoded transactions under an external [`Governor`].
    pub fn explore_transactions_governed(
        &self,
        transactions: &Transactions,
        catalog: &ItemCatalog,
        governor: &Governor,
    ) -> DivergenceReport {
        hdx_obs::span!("explore");
        let start = Instant::now();
        let mining = self.config.mining_config();
        let result = if self.config.polarity_pruning {
            mine_with_polarity_governed(transactions, catalog, &mining, governor)
        } else {
            mine_governed(transactions, catalog, &mining, governor)
        };
        DivergenceReport::from_mining(&result, catalog, start.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::{Interval, Item, ItemHierarchy};

    /// Dataset: error concentrated in x>50 & g=b.
    fn setup() -> (DataFrame, ItemCatalog, HierarchySet, Vec<Outcome>) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let g = b.add_categorical("g").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..200 {
            let xv = (i % 100) as f64;
            let gv = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(vec![Value::Num(xv), Value::Cat(gv.into())])
                .unwrap();
            outcomes.push(Outcome::Bool(xv > 50.0 && gv == "b" && i % 8 != 0));
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let mut hx = ItemHierarchy::new(x);
        let le50 = catalog.intern(Item::range(x, Interval::at_most(50.0), "x"));
        let gt50 = catalog.intern(Item::range(x, Interval::greater_than(50.0), "x"));
        let le25 = catalog.intern(Item::range(x, Interval::at_most(25.0), "x"));
        let m = catalog.intern(Item::range(x, Interval::new(25.0, 50.0), "x"));
        hx.add_root(le50);
        hx.add_root(gt50);
        hx.add_child(le50, le25);
        hx.add_child(le50, m);
        let col = df.categorical(g).clone();
        let cat_items: Vec<_> = (0..col.n_levels() as u32)
            .map(|c| catalog.intern(Item::cat_eq(g, c, "g", col.level(c))))
            .collect();
        let mut hs = HierarchySet::new();
        hs.push(hx);
        hs.push(ItemHierarchy::flat(g, cat_items));
        (df, catalog, hs, outcomes)
    }

    #[test]
    fn base_finds_the_anomalous_intersection() {
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            ..ExplorationConfig::default()
        });
        let report = explorer.explore(&df, &catalog, &hs, &outcomes);
        let top = report.top().unwrap();
        assert!(top.label.contains("x>50"));
        assert!(top.label.contains("g=b"));
        assert!(top.divergence.unwrap() > 0.3);
        assert!(top.t_value > 2.0);
    }

    #[test]
    fn base_uses_only_leaves() {
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::default();
        let report = explorer.explore(&df, &catalog, &hs, &outcomes);
        // x<=50 is an internal node: never mined in base mode.
        assert!(report.records.iter().all(|r| !r.label.contains("x<=50")));
        // Its children are.
        assert!(report.records.iter().any(|r| r.label.contains("x<=25")));
    }

    #[test]
    fn generalized_includes_internal_items() {
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::default();
        let report = explorer.explore_generalized(&df, &catalog, &hs, &outcomes);
        assert!(report.records.iter().any(|r| r.label.contains("x<=50")));
        // Generalized is a superset of base.
        let base = explorer.explore(&df, &catalog, &hs, &outcomes);
        assert!(report.records.len() > base.records.len());
        assert!(report.max_divergence() >= base.max_divergence());
    }

    #[test]
    fn polarity_pruning_preserves_top_divergence() {
        let (df, catalog, hs, outcomes) = setup();
        let full = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            ..ExplorationConfig::default()
        });
        let pruned = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            polarity_pruning: true,
            ..ExplorationConfig::default()
        });
        let rf = full.explore_generalized(&df, &catalog, &hs, &outcomes);
        let rp = pruned.explore_generalized(&df, &catalog, &hs, &outcomes);
        assert_eq!(rf.max_divergence(), rp.max_divergence());
        assert!(rp.records.len() <= rf.records.len());
    }

    #[test]
    fn itemset_budget_truncates_report_and_flags_partial() {
        use hdx_governor::Termination;
        let (df, catalog, hs, outcomes) = setup();
        let explorer = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            budget: RunBudget::unbounded().with_max_itemsets(3),
            ..ExplorationConfig::default()
        });
        let report = explorer.explore_generalized(&df, &catalog, &hs, &outcomes);
        assert_eq!(report.records.len(), 3, "exactly the budgeted itemsets");
        assert_eq!(report.termination, Termination::BudgetExhausted);
        assert!(report.is_partial());
        // The truncated records are a subset of the unbounded report.
        let full = DivExplorer::new(ExplorationConfig {
            min_support: 0.05,
            ..ExplorationConfig::default()
        })
        .explore_generalized(&df, &catalog, &hs, &outcomes);
        assert!(full.termination.is_complete());
        for r in &report.records {
            let twin = full
                .records
                .iter()
                .find(|f| f.itemset == r.itemset)
                .expect("truncated record exists in full report");
            assert_eq!(twin.support, r.support);
        }
    }

    #[test]
    fn external_cancel_token_stops_exploration() {
        use hdx_governor::{CancelReason, CancelToken, Termination};
        let (df, catalog, hs, outcomes) = setup();
        let token = CancelToken::new();
        token.cancel();
        let explorer = DivExplorer::default().with_cancel_token(token);
        let report = explorer.explore_generalized(&df, &catalog, &hs, &outcomes);
        assert!(report.records.is_empty());
        assert_eq!(
            report.termination,
            Termination::Cancelled(CancelReason::User)
        );
    }

    #[test]
    fn all_algorithms_give_same_report() {
        let (df, catalog, hs, outcomes) = setup();
        let reports: Vec<DivergenceReport> = [
            MiningAlgorithm::Apriori,
            MiningAlgorithm::FpGrowth,
            MiningAlgorithm::Vertical,
        ]
        .into_iter()
        .map(|algorithm| {
            DivExplorer::new(ExplorationConfig {
                min_support: 0.05,
                algorithm,
                ..ExplorationConfig::default()
            })
            .explore_generalized(&df, &catalog, &hs, &outcomes)
        })
        .collect();
        for r in &reports[1..] {
            assert_eq!(r.records.len(), reports[0].records.len());
            assert_eq!(r.top().unwrap().label, reports[0].top().unwrap().label);
            assert_eq!(r.max_divergence(), reports[0].max_divergence());
        }
    }
}
