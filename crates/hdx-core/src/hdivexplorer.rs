//! H-DivExplorer: the full hierarchical pipeline (paper §V, Algorithm 1).
//!
//! 1. **Hierarchical discretization** — every continuous attribute is turned
//!    into an item hierarchy by the divergence-aware tree discretizer;
//!    categorical attributes contribute their levels (plus taxonomy groups
//!    when supplied).
//! 2. **Generalized divergence subgroup extraction** — generalized frequent
//!    itemset mining over items at *all* granularity levels, with divergence
//!    accumulated during mining, optionally polarity-pruned.

use std::time::{Duration, Instant};

use hdx_data::{AttributeKind, DataFrame};
use hdx_discretize::{DiscretizationTree, GainCriterion, TreeDiscretizer, TreeDiscretizerConfig};
use hdx_items::{HierarchySet, Item, ItemCatalog, ItemHierarchy, Taxonomy};
use hdx_mining::MiningAlgorithm;
use hdx_stats::Outcome;

use crate::error::CoreError;
use crate::explorer::{DivExplorer, ExplorationConfig};
use crate::report::DivergenceReport;

/// Whether to explore leaf items only (prior work) or the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplorationMode {
    /// Leaf items only ("Tree discretization, base" in Table III).
    Base,
    /// All hierarchy levels ("Tree discretization, generalized"; default).
    #[default]
    Generalized,
}

/// Configuration of the H-DivExplorer pipeline.
#[derive(Debug, Clone, Copy)]
pub struct HDivExplorerConfig {
    /// Minimum subgroup support `s` (exploration).
    pub min_support: f64,
    /// Minimum tree-node support `st` (discretization; the paper uses
    /// `st = 0.1` throughout its experiments).
    pub tree_min_support: f64,
    /// Split gain criterion for the discretization trees.
    pub criterion: GainCriterion,
    /// Optional cap on tree depth.
    pub max_tree_depth: Option<usize>,
    /// Mining algorithm.
    pub algorithm: MiningAlgorithm,
    /// Optional cap on pattern length.
    pub max_len: Option<usize>,
    /// Whether to apply polarity pruning (§V-C).
    pub polarity_pruning: bool,
}

impl Default for HDivExplorerConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            tree_min_support: 0.1,
            criterion: GainCriterion::Divergence,
            max_tree_depth: None,
            algorithm: MiningAlgorithm::default(),
            max_len: None,
            polarity_pruning: false,
        }
    }
}

impl HDivExplorerConfig {
    fn exploration(&self) -> ExplorationConfig {
        ExplorationConfig {
            min_support: self.min_support,
            algorithm: self.algorithm,
            max_len: self.max_len,
            polarity_pruning: self.polarity_pruning,
        }
    }

    fn tree(&self) -> TreeDiscretizerConfig {
        TreeDiscretizerConfig {
            min_support: self.tree_min_support,
            criterion: self.criterion,
            max_depth: self.max_tree_depth,
        }
    }
}

/// The result of a full H-DivExplorer run.
#[derive(Debug, Clone)]
pub struct HDivResult {
    /// Ranked divergent subgroups.
    pub report: DivergenceReport,
    /// All interned items.
    pub catalog: ItemCatalog,
    /// The hierarchical discretization `Γ` that was explored.
    pub hierarchies: HierarchySet,
    /// The discretization trees (one per continuous attribute), for
    /// inspection and Fig. 1-style rendering.
    pub trees: Vec<DiscretizationTree>,
    /// Wall-clock time of the discretization step.
    pub discretization_time: Duration,
}

/// The hierarchical subgroup discovery pipeline.
#[derive(Debug, Clone, Default)]
pub struct HDivExplorer {
    config: HDivExplorerConfig,
    taxonomies: Vec<(String, Taxonomy)>,
}

impl HDivExplorer {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: HDivExplorerConfig) -> Self {
        Self {
            config,
            taxonomies: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HDivExplorerConfig {
        &self.config
    }

    /// Attaches a taxonomy to a categorical attribute (builder style).
    pub fn with_taxonomy(mut self, attr_name: impl Into<String>, taxonomy: Taxonomy) -> Self {
        self.taxonomies.push((attr_name.into(), taxonomy));
        self
    }

    /// Discovers taxonomies from approximate functional dependencies between
    /// the categorical attributes of `df` (§IV-B) and attaches them,
    /// skipping attributes that already have an explicit taxonomy.
    ///
    /// `tolerance` is the admissible fraction of FD-violating rows
    /// (0.0 = exact dependencies only).
    pub fn with_discovered_taxonomies(mut self, df: &DataFrame, tolerance: f64) -> Self {
        for (attr_name, taxonomy) in hdx_items::discover_fd_taxonomies(df, tolerance) {
            if !self.taxonomies.iter().any(|(name, _)| *name == attr_name) {
                self.taxonomies.push((attr_name, taxonomy));
            }
        }
        self
    }

    /// Runs discretization only: builds the catalog, the hierarchy set `Γ`
    /// and the per-attribute trees.
    pub fn discretize(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
    ) -> (ItemCatalog, HierarchySet, Vec<DiscretizationTree>) {
        let mut catalog = ItemCatalog::new();
        let mut hierarchies = HierarchySet::new();
        let mut trees = Vec::new();
        let discretizer = TreeDiscretizer::new(self.config.tree());
        for (attr, attribute) in df.schema().iter() {
            match attribute.kind() {
                AttributeKind::Continuous => {
                    let (hierarchy, tree) =
                        discretizer.discretize_attribute(df, attr, outcomes, &mut catalog);
                    if !hierarchy.is_empty() {
                        hierarchies.push(hierarchy);
                    }
                    trees.push(tree);
                }
                AttributeKind::Categorical => {
                    let column = df.categorical(attr);
                    let taxonomy = self
                        .taxonomies
                        .iter()
                        .find(|(name, _)| name == attribute.name())
                        .map(|(_, t)| t);
                    let hierarchy = match taxonomy {
                        Some(t) => t.build(attr, attribute.name(), column, &mut catalog),
                        None => {
                            let items: Vec<_> = (0..column.n_levels() as u32)
                                .map(|code| {
                                    catalog.intern(Item::cat_eq(
                                        attr,
                                        code,
                                        attribute.name(),
                                        column.level(code),
                                    ))
                                })
                                .collect();
                            ItemHierarchy::flat(attr, items)
                        }
                    };
                    if !hierarchy.is_empty() {
                        hierarchies.push(hierarchy);
                    }
                }
            }
        }
        (catalog, hierarchies, trees)
    }

    /// Runs the full pipeline in [`ExplorationMode::Generalized`].
    ///
    /// # Panics
    /// Panics when `outcomes.len() != df.n_rows()`; use [`Self::try_fit`]
    /// for a fallible variant.
    pub fn fit(&self, df: &DataFrame, outcomes: &[Outcome]) -> HDivResult {
        self.fit_mode(df, outcomes, ExplorationMode::Generalized)
    }

    /// Fallible variant of [`Self::fit`]: returns a typed error instead of
    /// panicking on malformed input.
    pub fn try_fit(&self, df: &DataFrame, outcomes: &[Outcome]) -> Result<HDivResult, CoreError> {
        self.try_fit_mode(df, outcomes, ExplorationMode::Generalized)
    }

    /// Runs the full pipeline in the given exploration mode.
    ///
    /// # Panics
    /// Panics when `outcomes.len() != df.n_rows()`; use
    /// [`Self::try_fit_mode`] for a fallible variant.
    pub fn fit_mode(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
    ) -> HDivResult {
        assert_eq!(outcomes.len(), df.n_rows(), "outcomes not parallel to rows");
        self.fit_mode_checked(df, outcomes, mode)
    }

    /// Fallible variant of [`Self::fit_mode`]: returns a typed error instead
    /// of panicking on malformed input.
    pub fn try_fit_mode(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
    ) -> Result<HDivResult, CoreError> {
        if outcomes.len() != df.n_rows() {
            return Err(CoreError::OutcomeLengthMismatch {
                expected: df.n_rows(),
                found: outcomes.len(),
            });
        }
        if !(self.config.min_support > 0.0 && self.config.min_support <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "min_support",
                message: format!("must be in (0, 1], got {}", self.config.min_support),
            });
        }
        if !(self.config.tree_min_support > 0.0 && self.config.tree_min_support < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "tree_min_support",
                message: format!("must be in (0, 1), got {}", self.config.tree_min_support),
            });
        }
        Ok(self.fit_mode_checked(df, outcomes, mode))
    }

    /// Pipeline body; `outcomes` has already been validated against `df`.
    fn fit_mode_checked(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
    ) -> HDivResult {
        let start = Instant::now();
        let (catalog, hierarchies, trees) = self.discretize(df, outcomes);
        let discretization_time = start.elapsed();
        let explorer = DivExplorer::new(self.config.exploration());
        let report = match mode {
            ExplorationMode::Base => explorer.explore(df, &catalog, &hierarchies, outcomes),
            ExplorationMode::Generalized => {
                explorer.explore_generalized(df, &catalog, &hierarchies, outcomes)
            }
        };
        HDivResult {
            report,
            catalog,
            hierarchies,
            trees,
            discretization_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome_fn::OutcomeFn;
    use hdx_data::{DataFrameBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    /// Synthetic dataset with an anomaly needing *coarse* granularity on two
    /// attributes at once: errors cluster where x>60 AND y>60.
    fn setup(n: usize) -> (DataFrame, Vec<Outcome>) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_continuous("y").unwrap();
        b.add_categorical("g").unwrap();
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..100.0);
            let y: f64 = rng.random_range(0.0..100.0);
            let g = ["a", "b", "c"][rng.random_range(0..3)];
            b.push_row(vec![Value::Num(x), Value::Num(y), Value::Cat(g.into())])
                .unwrap();
            let truth = rng.random::<f64>() < 0.5;
            let err = x > 60.0 && y > 60.0 && rng.random::<f64>() < 0.9;
            y_true.push(truth);
            y_pred.push(truth != err);
        }
        (b.finish(), OutcomeFn::ErrorRate.compute(&y_true, &y_pred))
    }

    #[test]
    fn pipeline_discovers_injected_anomaly() {
        let (df, outcomes) = setup(2000);
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            tree_min_support: 0.1,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        let top = result.report.top().unwrap();
        let attrs: Vec<String> = top
            .itemset
            .items()
            .iter()
            .map(|&i| df.schema().name(result.catalog.attr_of(i)).to_string())
            .collect();
        assert!(
            attrs.contains(&"x".to_string()) && attrs.contains(&"y".to_string()),
            "top subgroup {} should constrain both x and y",
            top.label
        );
        assert!(top.divergence.unwrap() > 0.2);
    }

    #[test]
    fn generalized_beats_or_matches_base() {
        let (df, outcomes) = setup(1500);
        for s in [0.025, 0.05, 0.1] {
            let pipeline = HDivExplorer::new(HDivExplorerConfig {
                min_support: s,
                ..HDivExplorerConfig::default()
            });
            let base = pipeline.fit_mode(&df, &outcomes, ExplorationMode::Base);
            let gen = pipeline.fit_mode(&df, &outcomes, ExplorationMode::Generalized);
            assert!(
                gen.report.max_divergence() >= base.report.max_divergence(),
                "hierarchical exploration is a superset (s={s})"
            );
        }
    }

    #[test]
    fn trees_cover_all_continuous_attributes() {
        let (df, outcomes) = setup(500);
        let result = HDivExplorer::default().fit(&df, &outcomes);
        assert_eq!(result.trees.len(), 2);
        // The categorical attribute contributes a flat hierarchy.
        let g = df.schema().id("g").unwrap();
        let hg = result.hierarchies.get(g).unwrap();
        assert_eq!(hg.len(), 3);
        assert!(hg.items().iter().all(|&i| hg.is_leaf(i)));
    }

    #[test]
    fn hierarchies_satisfy_partition_property() {
        let (df, outcomes) = setup(800);
        let result = HDivExplorer::default().fit(&df, &outcomes);
        let check = result
            .hierarchies
            .validate_partition(&result.catalog, |item| {
                hdx_items::item_cover(&df, &result.catalog, item)
            });
        assert_eq!(check, Ok(()));
    }

    #[test]
    fn taxonomy_items_participate() {
        let mut b = DataFrameBuilder::new();
        b.add_categorical("occ").unwrap();
        let mut outcomes = Vec::new();
        let levels = ["MGR-S", "MGR-F", "MED-D", "MED-N"];
        for i in 0..400 {
            let lvl = levels[i % 4];
            b.push_row(vec![Value::Cat(lvl.into())]).unwrap();
            // Elevated outcome across both MGR leaf categories.
            outcomes.push(Outcome::Bool(lvl.starts_with("MGR") && i % 8 < 6));
        }
        let df = b.finish();
        let mut tax = Taxonomy::new();
        for l in levels {
            tax.set_group(l, &l[..3]);
        }
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.3,
            ..HDivExplorerConfig::default()
        })
        .with_taxonomy("occ", tax)
        .fit(&df, &outcomes);
        // At s=0.3, the leaves (sup 0.25) are infrequent; only the group
        // items survive, and MGR has the top divergence.
        let top = result.report.top().unwrap();
        assert_eq!(top.label, "{occ=MGR}");
        assert!(result
            .report
            .records
            .iter()
            .all(|r| !r.label.contains("MGR-S")));
    }

    #[test]
    fn discovered_fd_taxonomies_feed_the_pipeline() {
        // city → state holds exactly; the anomaly spans all CA cities, so
        // only the state-level generalized item reaches the support bar.
        let mut b = DataFrameBuilder::new();
        b.add_categorical("city").unwrap();
        b.add_categorical("state").unwrap();
        let cities = [
            ("sf", "CA"),
            ("la", "CA"),
            ("sj", "CA"),
            ("fresno", "CA"),
            ("nyc", "NY"),
            ("buffalo", "NY"),
            ("albany", "NY"),
            ("yonkers", "NY"),
        ];
        let mut outcomes = Vec::new();
        for i in 0..800 {
            let (city, state) = cities[i % 8];
            b.push_row(vec![Value::Cat(city.into()), Value::Cat(state.into())])
                .unwrap();
            outcomes.push(Outcome::Bool(state == "CA" && i % 16 < 12));
        }
        let df = b.finish();
        // Drop `state` from the frame? No — the FD also lets `city` alone
        // carry the hierarchy; here we keep both and check the city taxonomy
        // produces city=CA-style group items.
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.3,
            ..HDivExplorerConfig::default()
        })
        .with_discovered_taxonomies(&df, 0.0)
        .fit(&df, &outcomes);
        // Each city has support 0.125 < 0.3; the discovered group item
        // city=CA (support 0.5) is mineable and maximally divergent.
        assert!(result
            .report
            .records
            .iter()
            .any(|r| r.label.contains("city=CA")));
        let top = result.report.top().unwrap();
        assert!(top.label.contains("CA"), "top = {}", top.label);
    }

    #[test]
    fn polarity_matches_complete_search_on_pipeline() {
        let (df, outcomes) = setup(1200);
        let complete = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        let pruned = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            polarity_pruning: true,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert_eq!(
            complete.report.max_divergence(),
            pruned.report.max_divergence()
        );
        assert!(pruned.report.records.len() <= complete.report.records.len());
    }

    #[test]
    fn entropy_and_divergence_criteria_both_work() {
        let (df, outcomes) = setup(1000);
        for criterion in [GainCriterion::Entropy, GainCriterion::Divergence] {
            let result = HDivExplorer::new(HDivExplorerConfig {
                criterion,
                ..HDivExplorerConfig::default()
            })
            .fit(&df, &outcomes);
            assert!(
                result.report.max_divergence().unwrap() > 0.1,
                "criterion {criterion:?}"
            );
        }
    }
}
