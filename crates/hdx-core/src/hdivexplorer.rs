//! H-DivExplorer: the full hierarchical pipeline (paper §V, Algorithm 1).
//!
//! 1. **Hierarchical discretization** — every continuous attribute is turned
//!    into an item hierarchy by the divergence-aware tree discretizer;
//!    categorical attributes contribute their levels (plus taxonomy groups
//!    when supplied).
//! 2. **Generalized divergence subgroup extraction** — generalized frequent
//!    itemset mining over items at *all* granularity levels, with divergence
//!    accumulated during mining, optionally polarity-pruned.

use std::time::{Duration, Instant};

use hdx_data::{AttributeKind, DataFrame};
use hdx_discretize::{DiscretizationTree, GainCriterion, TreeDiscretizer, TreeDiscretizerConfig};
use hdx_governor::{CancelToken, Governor, RunBudget, RunCounters, Termination};
use hdx_items::{HierarchySet, Item, ItemCatalog, ItemHierarchy, Taxonomy};
use hdx_mining::MiningAlgorithm;
use hdx_stats::Outcome;

use crate::error::CoreError;
use crate::explorer::{DivExplorer, ExplorationConfig};
use crate::report::DivergenceReport;

/// Whether to explore leaf items only (prior work) or the full hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExplorationMode {
    /// Leaf items only ("Tree discretization, base" in Table III).
    Base,
    /// All hierarchy levels ("Tree discretization, generalized"; default).
    #[default]
    Generalized,
}

/// Configuration of the H-DivExplorer pipeline.
#[derive(Debug, Clone, Copy)]
pub struct HDivExplorerConfig {
    /// Minimum subgroup support `s` (exploration).
    pub min_support: f64,
    /// Minimum tree-node support `st` (discretization; the paper uses
    /// `st = 0.1` throughout its experiments).
    pub tree_min_support: f64,
    /// Split gain criterion for the discretization trees.
    pub criterion: GainCriterion,
    /// Optional cap on tree depth.
    pub max_tree_depth: Option<usize>,
    /// Mining algorithm.
    pub algorithm: MiningAlgorithm,
    /// Optional cap on pattern length.
    pub max_len: Option<usize>,
    /// Worker threads for [`MiningAlgorithm::VerticalParallel`] (`None` =
    /// all available cores). Ignored by the serial algorithms.
    pub threads: Option<usize>,
    /// Whether to apply polarity pruning (§V-C).
    pub polarity_pruning: bool,
    /// Work/time limits for the whole run. The discretization stage charges
    /// tree nodes; the mining stage charges itemsets and candidate bytes;
    /// the deadline and the cancel token span both stages.
    pub budget: RunBudget,
    /// When the mining stage exhausts its budget, retry with the minimum
    /// support doubled (up to [`ADAPTIVE_MAX_SUPPORT`], at most
    /// [`ADAPTIVE_MAX_RETRIES`] times): a coarser-but-complete exploration
    /// often fits where a fine-grained one cannot.
    pub adaptive_support: bool,
}

/// Ceiling for [`HDivExplorerConfig::adaptive_support`] retries.
pub const ADAPTIVE_MAX_SUPPORT: f64 = 0.5;
/// Maximum number of adaptive-support retries.
pub const ADAPTIVE_MAX_RETRIES: u32 = 4;

impl Default for HDivExplorerConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            tree_min_support: 0.1,
            criterion: GainCriterion::Divergence,
            max_tree_depth: None,
            algorithm: MiningAlgorithm::default(),
            max_len: None,
            threads: None,
            polarity_pruning: false,
            budget: RunBudget::unbounded(),
            adaptive_support: false,
        }
    }
}

impl HDivExplorerConfig {
    fn exploration(&self, min_support: f64) -> ExplorationConfig {
        ExplorationConfig {
            min_support,
            algorithm: self.algorithm,
            max_len: self.max_len,
            threads: self.threads,
            polarity_pruning: self.polarity_pruning,
            // The pipeline drives the governed explorer entry points
            // directly; the per-stage governors carry the limits.
            budget: RunBudget::unbounded(),
        }
    }

    fn tree(&self) -> TreeDiscretizerConfig {
        TreeDiscretizerConfig {
            min_support: self.tree_min_support,
            criterion: self.criterion,
            max_depth: self.max_tree_depth,
        }
    }
}

/// The result of a full H-DivExplorer run.
#[derive(Debug, Clone)]
pub struct HDivResult {
    /// Ranked divergent subgroups.
    pub report: DivergenceReport,
    /// All interned items.
    pub catalog: ItemCatalog,
    /// The hierarchical discretization `Γ` that was explored.
    pub hierarchies: HierarchySet,
    /// The discretization trees (one per continuous attribute), for
    /// inspection and Fig. 1-style rendering.
    pub trees: Vec<DiscretizationTree>,
    /// Wall-clock time of the discretization step.
    pub discretization_time: Duration,
    /// Number of adaptive-support retries the mining stage performed
    /// (always 0 unless [`HDivExplorerConfig::adaptive_support`] is set).
    pub adaptive_retries: u32,
    /// The minimum support the final mining pass actually ran with (equals
    /// the configured `min_support` unless adaptive retries raised it).
    pub effective_min_support: f64,
}

impl HDivResult {
    /// How the run ended, across both pipeline stages (the worst stage
    /// outcome; also stamped on [`report`](Self::report)).
    pub fn termination(&self) -> Termination {
        self.report.termination
    }

    /// Work charged across both pipeline stages.
    pub fn counters(&self) -> RunCounters {
        self.report.counters
    }

    /// Whether the run degraded (tripped a limit, was cancelled, or lost a
    /// worker) and the report is a partial-but-valid subset.
    pub fn is_partial(&self) -> bool {
        self.report.is_partial()
    }
}

/// The hierarchical subgroup discovery pipeline.
#[derive(Debug, Clone, Default)]
pub struct HDivExplorer {
    pub(crate) config: HDivExplorerConfig,
    taxonomies: Vec<(String, Taxonomy)>,
    pub(crate) cancel: CancelToken,
}

impl HDivExplorer {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: HDivExplorerConfig) -> Self {
        Self {
            config,
            taxonomies: Vec::new(),
            cancel: CancelToken::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &HDivExplorerConfig {
        &self.config
    }

    /// Observes an external cancellation token (builder style): cancelling
    /// the caller's handle stops both pipeline stages at their next poll
    /// point; [`fit`](Self::fit) then returns whatever was computed so far
    /// with [`Termination::Cancelled`].
    #[must_use]
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Attaches a taxonomy to a categorical attribute (builder style).
    pub fn with_taxonomy(mut self, attr_name: impl Into<String>, taxonomy: Taxonomy) -> Self {
        self.taxonomies.push((attr_name.into(), taxonomy));
        self
    }

    /// Discovers taxonomies from approximate functional dependencies between
    /// the categorical attributes of `df` (§IV-B) and attaches them,
    /// skipping attributes that already have an explicit taxonomy.
    ///
    /// `tolerance` is the admissible fraction of FD-violating rows
    /// (0.0 = exact dependencies only).
    pub fn with_discovered_taxonomies(mut self, df: &DataFrame, tolerance: f64) -> Self {
        for (attr_name, taxonomy) in hdx_items::discover_fd_taxonomies(df, tolerance) {
            if !self.taxonomies.iter().any(|(name, _)| *name == attr_name) {
                self.taxonomies.push((attr_name, taxonomy));
            }
        }
        self
    }

    /// Runs discretization only: builds the catalog, the hierarchy set `Γ`
    /// and the per-attribute trees.
    pub fn discretize(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
    ) -> (ItemCatalog, HierarchySet, Vec<DiscretizationTree>) {
        self.discretize_governed(df, outcomes, &Governor::unbounded())
    }

    /// [`discretize`](Self::discretize) under a [`Governor`]: tree nodes
    /// are charged against `max_tree_nodes`, and a tripped governor leaves
    /// the remaining attributes with coarser (or empty) hierarchies.
    pub fn discretize_governed(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        governor: &Governor,
    ) -> (ItemCatalog, HierarchySet, Vec<DiscretizationTree>) {
        hdx_obs::span!("discretize");
        let mut catalog = ItemCatalog::new();
        let mut hierarchies = HierarchySet::new();
        let mut trees = Vec::new();
        let discretizer = TreeDiscretizer::new(self.config.tree());
        for (attr, attribute) in df.schema().iter() {
            match attribute.kind() {
                AttributeKind::Continuous => {
                    let (hierarchy, tree) = discretizer.discretize_attribute_governed(
                        df,
                        attr,
                        outcomes,
                        &mut catalog,
                        governor,
                    );
                    if !hierarchy.is_empty() {
                        hierarchies.push(hierarchy);
                    }
                    trees.push(tree);
                }
                AttributeKind::Categorical => {
                    let column = df.categorical(attr);
                    let taxonomy = self
                        .taxonomies
                        .iter()
                        .find(|(name, _)| name == attribute.name())
                        .map(|(_, t)| t);
                    let hierarchy = match taxonomy {
                        Some(t) => t.build(attr, attribute.name(), column, &mut catalog),
                        None => {
                            let items: Vec<_> = (0..column.n_levels() as u32)
                                .map(|code| {
                                    catalog.intern(Item::cat_eq(
                                        attr,
                                        code,
                                        attribute.name(),
                                        column.level(code),
                                    ))
                                })
                                .collect();
                            ItemHierarchy::flat(attr, items)
                        }
                    };
                    if !hierarchy.is_empty() {
                        hierarchies.push(hierarchy);
                    }
                }
            }
        }
        (catalog, hierarchies, trees)
    }

    /// Runs the full pipeline in [`ExplorationMode::Generalized`].
    ///
    /// # Panics
    /// Panics when `outcomes.len() != df.n_rows()`; use [`Self::try_fit`]
    /// for a fallible variant.
    pub fn fit(&self, df: &DataFrame, outcomes: &[Outcome]) -> HDivResult {
        self.fit_mode(df, outcomes, ExplorationMode::Generalized)
    }

    /// Fallible variant of [`Self::fit`]: returns a typed error instead of
    /// panicking on malformed input.
    pub fn try_fit(&self, df: &DataFrame, outcomes: &[Outcome]) -> Result<HDivResult, CoreError> {
        self.try_fit_mode(df, outcomes, ExplorationMode::Generalized)
    }

    /// Runs the full pipeline in the given exploration mode.
    ///
    /// # Panics
    /// Panics when `outcomes.len() != df.n_rows()`; use
    /// [`Self::try_fit_mode`] for a fallible variant.
    pub fn fit_mode(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
    ) -> HDivResult {
        assert_eq!(outcomes.len(), df.n_rows(), "outcomes not parallel to rows");
        self.fit_mode_checked(df, outcomes, mode)
    }

    /// Fallible variant of [`Self::fit_mode`]: returns a typed error instead
    /// of panicking on malformed input.
    pub fn try_fit_mode(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
    ) -> Result<HDivResult, CoreError> {
        self.validate_inputs(df, outcomes)?;
        Ok(self.fit_mode_checked(df, outcomes, mode))
    }

    /// The shared input validation of the fallible entry points
    /// ([`try_fit_mode`](Self::try_fit_mode) and the checkpointed runs).
    pub(crate) fn validate_inputs(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
    ) -> Result<(), CoreError> {
        if outcomes.len() != df.n_rows() {
            return Err(CoreError::OutcomeLengthMismatch {
                expected: df.n_rows(),
                found: outcomes.len(),
            });
        }
        if !(self.config.min_support > 0.0 && self.config.min_support <= 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "min_support",
                message: format!("must be in (0, 1], got {}", self.config.min_support),
            });
        }
        if !(self.config.tree_min_support > 0.0 && self.config.tree_min_support < 1.0) {
            return Err(CoreError::InvalidParameter {
                name: "tree_min_support",
                message: format!("must be in (0, 1), got {}", self.config.tree_min_support),
            });
        }
        Ok(())
    }

    /// Pipeline body; `outcomes` has already been validated against `df`.
    ///
    /// Each stage runs under its own [`Governor`] so that a budget trip in
    /// one stage (say, the tree-node cap) degrades *that* stage without
    /// starving the next: a coarser discretization is still worth mining.
    /// The wall-clock deadline and the cancel token span the whole run.
    fn fit_mode_checked(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
    ) -> HDivResult {
        let start = Instant::now();
        let budget = self.config.budget;
        let disc_governor = Governor::with_token(budget, self.cancel.clone());
        let (catalog, hierarchies, trees) = self.discretize_governed(df, outcomes, &disc_governor);
        let discretization_time = start.elapsed();

        let remaining_deadline = |budget: RunBudget| RunBudget {
            deadline: budget.deadline.map(|d| d.saturating_sub(start.elapsed())),
            ..budget
        };
        let mut min_support = self.config.min_support;
        let mut adaptive_retries = 0;
        let (mut report, mine_governor) = loop {
            let governor = Governor::with_token(remaining_deadline(budget), self.cancel.clone());
            let explorer = DivExplorer::new(self.config.exploration(min_support));
            let report = match mode {
                ExplorationMode::Base => {
                    explorer.explore_governed(df, &catalog, &hierarchies, outcomes, &governor)
                }
                ExplorationMode::Generalized => explorer.explore_generalized_governed(
                    df,
                    &catalog,
                    &hierarchies,
                    outcomes,
                    &governor,
                ),
            };
            // Adaptive degradation: trade granularity for completeness by
            // re-mining at doubled support. Only budget trips qualify — a
            // deadline or cancellation would cut the retry short too.
            let exhausted = report.termination == Termination::BudgetExhausted;
            if self.config.adaptive_support
                && exhausted
                && adaptive_retries < ADAPTIVE_MAX_RETRIES
                && min_support < ADAPTIVE_MAX_SUPPORT
            {
                min_support = (min_support * 2.0).min(ADAPTIVE_MAX_SUPPORT);
                adaptive_retries += 1;
                continue;
            }
            break (report, governor);
        };
        // The report speaks for the whole run: worst stage outcome, summed
        // stage counters.
        report.termination = report.termination.worst(disc_governor.termination());
        report.counters = mine_governor.counters().merged(disc_governor.counters());
        HDivResult {
            report,
            catalog,
            hierarchies,
            trees,
            discretization_time,
            adaptive_retries,
            effective_min_support: min_support,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome_fn::OutcomeFn;
    use hdx_data::{DataFrameBuilder, Value};
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    /// Synthetic dataset with an anomaly needing *coarse* granularity on two
    /// attributes at once: errors cluster where x>60 AND y>60.
    fn setup(n: usize) -> (DataFrame, Vec<Outcome>) {
        let mut rng = StdRng::seed_from_u64(13);
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_continuous("y").unwrap();
        b.add_categorical("g").unwrap();
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..100.0);
            let y: f64 = rng.random_range(0.0..100.0);
            let g = ["a", "b", "c"][rng.random_range(0..3usize)];
            b.push_row(vec![Value::Num(x), Value::Num(y), Value::Cat(g.into())])
                .unwrap();
            let truth = rng.random::<f64>() < 0.5;
            let err = x > 60.0 && y > 60.0 && rng.random::<f64>() < 0.9;
            y_true.push(truth);
            y_pred.push(truth != err);
        }
        (b.finish(), OutcomeFn::ErrorRate.compute(&y_true, &y_pred))
    }

    #[test]
    fn pipeline_discovers_injected_anomaly() {
        let (df, outcomes) = setup(2000);
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            tree_min_support: 0.1,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        let top = result.report.top().unwrap();
        let attrs: Vec<String> = top
            .itemset
            .items()
            .iter()
            .map(|&i| df.schema().name(result.catalog.attr_of(i)).to_string())
            .collect();
        assert!(
            attrs.contains(&"x".to_string()) && attrs.contains(&"y".to_string()),
            "top subgroup {} should constrain both x and y",
            top.label
        );
        assert!(top.divergence.unwrap() > 0.2);
    }

    #[test]
    fn generalized_beats_or_matches_base() {
        let (df, outcomes) = setup(1500);
        for s in [0.025, 0.05, 0.1] {
            let pipeline = HDivExplorer::new(HDivExplorerConfig {
                min_support: s,
                ..HDivExplorerConfig::default()
            });
            let base = pipeline.fit_mode(&df, &outcomes, ExplorationMode::Base);
            let gen = pipeline.fit_mode(&df, &outcomes, ExplorationMode::Generalized);
            assert!(
                gen.report.max_divergence() >= base.report.max_divergence(),
                "hierarchical exploration is a superset (s={s})"
            );
        }
    }

    #[test]
    fn trees_cover_all_continuous_attributes() {
        let (df, outcomes) = setup(500);
        let result = HDivExplorer::default().fit(&df, &outcomes);
        assert_eq!(result.trees.len(), 2);
        // The categorical attribute contributes a flat hierarchy.
        let g = df.schema().id("g").unwrap();
        let hg = result.hierarchies.get(g).unwrap();
        assert_eq!(hg.len(), 3);
        assert!(hg.items().iter().all(|&i| hg.is_leaf(i)));
    }

    #[test]
    fn hierarchies_satisfy_partition_property() {
        let (df, outcomes) = setup(800);
        let result = HDivExplorer::default().fit(&df, &outcomes);
        let check = result
            .hierarchies
            .validate_partition(&result.catalog, |item| {
                hdx_items::item_cover(&df, &result.catalog, item)
            });
        assert_eq!(check, Ok(()));
    }

    #[test]
    fn taxonomy_items_participate() {
        let mut b = DataFrameBuilder::new();
        b.add_categorical("occ").unwrap();
        let mut outcomes = Vec::new();
        let levels = ["MGR-S", "MGR-F", "MED-D", "MED-N"];
        for i in 0..400 {
            let lvl = levels[i % 4];
            b.push_row(vec![Value::Cat(lvl.into())]).unwrap();
            // Elevated outcome across both MGR leaf categories.
            outcomes.push(Outcome::Bool(lvl.starts_with("MGR") && i % 8 < 6));
        }
        let df = b.finish();
        let mut tax = Taxonomy::new();
        for l in levels {
            tax.set_group(l, &l[..3]);
        }
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.3,
            ..HDivExplorerConfig::default()
        })
        .with_taxonomy("occ", tax)
        .fit(&df, &outcomes);
        // At s=0.3, the leaves (sup 0.25) are infrequent; only the group
        // items survive, and MGR has the top divergence.
        let top = result.report.top().unwrap();
        assert_eq!(top.label, "{occ=MGR}");
        assert!(result
            .report
            .records
            .iter()
            .all(|r| !r.label.contains("MGR-S")));
    }

    #[test]
    fn discovered_fd_taxonomies_feed_the_pipeline() {
        // city → state holds exactly; the anomaly spans all CA cities, so
        // only the state-level generalized item reaches the support bar.
        let mut b = DataFrameBuilder::new();
        b.add_categorical("city").unwrap();
        b.add_categorical("state").unwrap();
        let cities = [
            ("sf", "CA"),
            ("la", "CA"),
            ("sj", "CA"),
            ("fresno", "CA"),
            ("nyc", "NY"),
            ("buffalo", "NY"),
            ("albany", "NY"),
            ("yonkers", "NY"),
        ];
        let mut outcomes = Vec::new();
        for i in 0..800 {
            let (city, state) = cities[i % 8];
            b.push_row(vec![Value::Cat(city.into()), Value::Cat(state.into())])
                .unwrap();
            outcomes.push(Outcome::Bool(state == "CA" && i % 16 < 12));
        }
        let df = b.finish();
        // Drop `state` from the frame? No — the FD also lets `city` alone
        // carry the hierarchy; here we keep both and check the city taxonomy
        // produces city=CA-style group items.
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.3,
            ..HDivExplorerConfig::default()
        })
        .with_discovered_taxonomies(&df, 0.0)
        .fit(&df, &outcomes);
        // Each city has support 0.125 < 0.3; the discovered group item
        // city=CA (support 0.5) is mineable and maximally divergent.
        assert!(result
            .report
            .records
            .iter()
            .any(|r| r.label.contains("city=CA")));
        let top = result.report.top().unwrap();
        assert!(top.label.contains("CA"), "top = {}", top.label);
    }

    #[test]
    fn polarity_matches_complete_search_on_pipeline() {
        // Polarity pruning preserves the top divergence on this dataset
        // (the guarantee is heuristic, so the size is data-dependent: with
        // the vendored rand stream it holds at 1300 but not at 1200).
        let (df, outcomes) = setup(1300);
        let complete = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        let pruned = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.05,
            polarity_pruning: true,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert_eq!(
            complete.report.max_divergence(),
            pruned.report.max_divergence()
        );
        assert!(pruned.report.records.len() <= complete.report.records.len());
    }

    #[test]
    fn pathological_run_degrades_instead_of_dying() {
        // The ISSUE's acceptance scenario: tiny support over a sizeable
        // dataset with an itemset cap and a deadline. The run must come back
        // with non-empty partial results and a `BudgetExhausted` verdict.
        let (df, outcomes) = setup(2000);
        let result = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.01,
            budget: RunBudget::unbounded()
                .with_max_itemsets(5)
                .with_deadline(Duration::from_secs(30)),
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert_eq!(result.termination(), Termination::BudgetExhausted);
        assert!(result.is_partial());
        assert_eq!(result.report.records.len(), 5, "budgeted itemsets arrive");
        assert_eq!(result.counters().itemsets, 5);
    }

    #[test]
    fn zero_deadline_reports_deadline_exceeded() {
        let (df, outcomes) = setup(500);
        let result = HDivExplorer::new(HDivExplorerConfig {
            budget: RunBudget::unbounded().with_deadline(Duration::ZERO),
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert_eq!(result.termination(), Termination::DeadlineExceeded);
        assert!(result.report.records.is_empty());
    }

    #[test]
    fn cancelled_pipeline_returns_partial_result() {
        let (df, outcomes) = setup(500);
        let token = CancelToken::new();
        token.cancel();
        let result = HDivExplorer::default()
            .with_cancel_token(token)
            .fit(&df, &outcomes);
        assert_eq!(
            result.termination(),
            Termination::Cancelled(hdx_governor::CancelReason::User)
        );
    }

    #[test]
    fn tree_node_budget_starves_only_the_discretizer() {
        // Per-stage governors: exhausting the tree-node budget must leave a
        // coarser discretization but still let the mining stage run to
        // completion over it (plus the categorical attribute).
        let (df, outcomes) = setup(1000);
        let result = HDivExplorer::new(HDivExplorerConfig {
            budget: RunBudget::unbounded().with_max_tree_nodes(2),
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert_eq!(result.termination(), Termination::BudgetExhausted);
        assert_eq!(result.counters().tree_nodes, 2);
        assert!(
            !result.report.records.is_empty(),
            "coarse hierarchy still mined"
        );
        assert!(result.counters().itemsets > 0);
    }

    #[test]
    fn adaptive_support_trades_granularity_for_completion() {
        let (df, outcomes) = setup(800);
        // How many subgroups fit at a coarse support?
        let coarse = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.2,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        let cap = coarse.report.records.len() as u64;
        assert!(cap > 0);
        // A fine-grained run under that cap must climb back up to a support
        // level that fits, and finish there.
        let adaptive = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.025,
            budget: RunBudget::unbounded().with_max_itemsets(cap),
            adaptive_support: true,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert!(adaptive.termination().is_complete());
        assert!(adaptive.adaptive_retries > 0);
        assert!(adaptive.effective_min_support > 0.025);
        assert_eq!(adaptive.report.records.len() as u64, cap);
        // Without the adaptive flag the same budget just truncates.
        let truncated = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.025,
            budget: RunBudget::unbounded().with_max_itemsets(cap),
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        assert_eq!(truncated.termination(), Termination::BudgetExhausted);
        assert_eq!(truncated.adaptive_retries, 0);
    }

    #[test]
    fn entropy_and_divergence_criteria_both_work() {
        let (df, outcomes) = setup(1000);
        for criterion in [GainCriterion::Entropy, GainCriterion::Divergence] {
            let result = HDivExplorer::new(HDivExplorerConfig {
                criterion,
                ..HDivExplorerConfig::default()
            })
            .fit(&df, &outcomes);
            assert!(
                result.report.max_divergence().unwrap() > 0.1,
                "criterion {criterion:?}"
            );
        }
    }
}
