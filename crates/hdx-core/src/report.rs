//! Ranked, labelled subgroup results.

use std::time::Duration;

use hdx_data::AttrId;
use hdx_items::{ItemCatalog, Itemset};
use hdx_mining::{MiningError, MiningResult, RunCounters, Termination};
use hdx_stats::StatAccum;

/// One discovered subgroup with its statistics.
#[derive(Debug, Clone)]
pub struct SubgroupRecord {
    /// The defining itemset (pattern).
    pub itemset: Itemset,
    /// Human-readable pattern, e.g. `{age<=24, #prior>8}`.
    pub label: String,
    /// Support `sup(I)` as a fraction of the dataset.
    pub support: f64,
    /// The statistic `f(I)` (`None` when every outcome in the subgroup
    /// is `⊥`).
    pub statistic: Option<f64>,
    /// Divergence `Δ_f(I) = f(I) − f(D)`.
    pub divergence: Option<f64>,
    /// Welch t-value of the divergence.
    pub t_value: f64,
    /// Two-sided Welch p-value of the divergence (1.0 when undefined).
    pub p_value: f64,
    /// The raw statistics accumulated over the subgroup (enables lazy
    /// confidence intervals and further analysis).
    pub accum: StatAccum,
}

impl SubgroupRecord {
    /// Itemset length.
    pub fn len(&self) -> usize {
        self.itemset.len()
    }

    /// Whether the itemset is empty (never true for mined records).
    pub fn is_empty(&self) -> bool {
        self.itemset.is_empty()
    }
}

/// The output of an exploration: all frequent subgroups ranked by descending
/// divergence (records with undefined divergence sink to the end).
#[derive(Debug, Clone)]
pub struct DivergenceReport {
    /// Ranked records.
    pub records: Vec<SubgroupRecord>,
    /// The global statistic `f(D)`.
    pub global_statistic: Option<f64>,
    /// Dataset size.
    pub n_rows: usize,
    /// Wall-clock time of the exploration (mining only, not discretization).
    pub elapsed: Duration,
    /// The statistics of the whole dataset (for lazy per-record intervals).
    pub global_accum: StatAccum,
    /// How the underlying mining run ended. Anything but
    /// [`Termination::Complete`] means `records` is a valid subset of the
    /// unbounded result.
    pub termination: Termination,
    /// Work charged against the run's budget.
    pub counters: RunCounters,
    /// Non-fatal errors absorbed during mining (e.g. worker panics).
    pub errors: Vec<MiningError>,
}

impl DivergenceReport {
    /// An empty, complete report — also handy as a struct-update base.
    pub fn empty() -> Self {
        Self {
            records: Vec::new(),
            global_statistic: None,
            n_rows: 0,
            elapsed: Duration::ZERO,
            global_accum: StatAccum::new(),
            termination: Termination::Complete,
            counters: RunCounters::default(),
            errors: Vec::new(),
        }
    }

    /// Builds a report from a mining result, ranking by divergence.
    pub fn from_mining(result: &MiningResult, catalog: &ItemCatalog, elapsed: Duration) -> Self {
        let mut records: Vec<SubgroupRecord> = result
            .itemsets
            .iter()
            .map(|fi| SubgroupRecord {
                label: fi.itemset.display(catalog).to_string(),
                itemset: fi.itemset.clone(),
                support: result.support(fi),
                statistic: fi.accum.statistic(),
                divergence: result.divergence(fi),
                t_value: result.t_value(fi),
                p_value: fi.accum.p_value(&result.global),
                accum: fi.accum,
            })
            .collect();
        records.sort_by(|a, b| {
            match (b.divergence, a.divergence) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                (Some(_), None) => std::cmp::Ordering::Greater,
                (None, Some(_)) => std::cmp::Ordering::Less,
                (None, None) => std::cmp::Ordering::Equal,
            }
            .then_with(|| a.label.cmp(&b.label))
        });
        Self {
            records,
            global_statistic: result.global.statistic(),
            n_rows: result.n_rows,
            elapsed,
            global_accum: result.global,
            termination: result.termination,
            counters: result.counters,
            errors: result.errors.clone(),
        }
    }

    /// `true` when the run was cut short (budget, deadline, cancellation) or
    /// absorbed a worker error — the report is then a valid subset.
    pub fn is_partial(&self) -> bool {
        self.termination.is_partial() || !self.errors.is_empty()
    }

    /// Two-sided `(1 − alpha)` Welch confidence interval for a record's
    /// divergence (computed lazily — t-quantiles are too costly to
    /// precompute for every mined subgroup).
    pub fn divergence_ci(&self, record: &SubgroupRecord, alpha: f64) -> Option<(f64, f64)> {
        record.accum.divergence_ci(&self.global_accum, alpha)
    }

    /// The highest divergence, or `None` when no record has one.
    pub fn max_divergence(&self) -> Option<f64> {
        self.records.iter().find_map(|r| r.divergence)
    }

    /// The highest absolute divergence.
    pub fn max_abs_divergence(&self) -> Option<f64> {
        self.records
            .iter()
            .filter_map(|r| r.divergence)
            .map(f64::abs)
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a| a.max(d)))
            })
    }

    /// The top record (highest divergence), if any.
    pub fn top(&self) -> Option<&SubgroupRecord> {
        self.records.first()
    }

    /// The first `k` records.
    pub fn top_k(&self, k: usize) -> &[SubgroupRecord] {
        &self.records[..k.min(self.records.len())]
    }

    /// Records with `|t| ≥ t_min` (statistically significant divergence).
    pub fn significant(&self, t_min: f64) -> impl Iterator<Item = &SubgroupRecord> {
        self.records
            .iter()
            .filter(move |r| r.t_value.abs() >= t_min)
    }

    /// The best record among those satisfying a predicate.
    pub fn best_where(
        &self,
        mut keep: impl FnMut(&SubgroupRecord) -> bool,
    ) -> Option<&SubgroupRecord> {
        self.records.iter().find(|r| keep(r))
    }

    /// Records surviving Benjamini–Hochberg false-discovery-rate control at
    /// level `q`: with `m` subgroups tested, the records with the `k`
    /// smallest p-values are returned, where `k` is the largest index with
    /// `p₍ₖ₎ ≤ k·q/m`.
    ///
    /// Subgroup discovery tests *many* hypotheses at once; filtering by raw
    /// t-values inflates false discoveries, which BH bounds in expectation.
    pub fn significant_fdr(&self, q: f64) -> Vec<&SubgroupRecord> {
        assert!((0.0..=1.0).contains(&q), "q must be in [0, 1]");
        let m = self.records.len();
        if m == 0 {
            return Vec::new();
        }
        let mut by_p: Vec<&SubgroupRecord> = self.records.iter().collect();
        by_p.sort_by(|a, b| a.p_value.total_cmp(&b.p_value));
        let mut cutoff = 0;
        for (i, r) in by_p.iter().enumerate() {
            if r.p_value <= (i + 1) as f64 * q / m as f64 {
                cutoff = i + 1;
            }
        }
        by_p.truncate(cutoff);
        by_p
    }

    /// Records whose divergence is *not* already explained by one of their
    /// immediate sub-itemsets: a record is redundant when removing one of
    /// its items loses less than `epsilon` of (absolute) divergence.
    ///
    /// Useful to compact results where an attribute duplicates another
    /// (e.g. a functional dependency makes `branch=west` and `region=west`
    /// interchangeable) or an item adds no divergence of its own.
    pub fn non_redundant(&self, epsilon: f64) -> Vec<&SubgroupRecord> {
        let index: std::collections::HashMap<&Itemset, f64> = self
            .records
            .iter()
            .filter_map(|r| r.divergence.map(|d| (&r.itemset, d)))
            .collect();
        self.records
            .iter()
            .filter(|r| {
                let Some(d) = r.divergence else { return true };
                let explained_by = |sub_div: f64| {
                    // The subset already reaches (almost) the same divergence
                    // in the same direction.
                    sub_div.abs() >= d.abs() - epsilon
                        && (hdx_stats::approx::approx_zero(sub_div)
                            || hdx_stats::approx::same_sign(sub_div, d))
                };
                !r.itemset.sub_itemsets().any(|sub| {
                    if sub.is_empty() {
                        explained_by(0.0) // Δ(∅) = 0
                    } else {
                        index.get(&sub).copied().is_some_and(explained_by)
                    }
                })
            })
            .collect()
    }

    /// Per-attribute divergence profile: for every attribute appearing in
    /// some pattern, the maximum |divergence| over the subgroups that
    /// constrain it — a quick "which attributes drive the anomalies" view.
    /// Sorted descending.
    pub fn attribute_profile(&self, catalog: &ItemCatalog) -> Vec<(AttrId, f64)> {
        let mut best: std::collections::HashMap<AttrId, f64> = std::collections::HashMap::new();
        for r in &self.records {
            let Some(d) = r.divergence else { continue };
            for &item in r.itemset.items() {
                let attr = catalog.attr_of(item);
                let entry = best.entry(attr).or_insert(0.0);
                if d.abs() > *entry {
                    *entry = d.abs();
                }
            }
        }
        let mut out: Vec<(AttrId, f64)> = best.into_iter().collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Renders the top `k` records as an aligned text table.
    pub fn table(&self, k: usize) -> String {
        let mut rows: Vec<[String; 5]> = vec![[
            "itemset".into(),
            "sup".into(),
            "f".into(),
            "Δf".into(),
            "t".into(),
        ]];
        for r in self.top_k(k) {
            rows.push([
                r.label.clone(),
                format!("{:.3}", r.support),
                r.statistic.map_or("-".into(), |s| format!("{s:.3}")),
                r.divergence.map_or("-".into(), |d| format!("{d:+.3}")),
                format!("{:.1}", r.t_value),
            ]);
        }
        let widths: Vec<usize> = (0..5)
            .map(|c| rows.iter().map(|r| r[c].chars().count()).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        for row in rows {
            for (c, cell) in row.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.push_str(&" ".repeat(widths[c].saturating_sub(cell.chars().count())));
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::Item;
    use hdx_mining::FrequentItemset;
    use hdx_stats::{Outcome, StatAccum};

    fn fixture() -> (MiningResult, ItemCatalog) {
        let mut catalog = ItemCatalog::new();
        let a = catalog.intern(Item::cat_eq(AttrId(0), 0, "x", "a"));
        let b = catalog.intern(Item::cat_eq(AttrId(1), 0, "y", "b"));
        let global = StatAccum::from_outcomes(&[
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
            Outcome::Bool(false),
        ]);
        let result = MiningResult::complete(
            vec![
                FrequentItemset {
                    itemset: Itemset::singleton(a),
                    accum: StatAccum::from_outcomes(&[Outcome::Bool(true), Outcome::Bool(true)]),
                },
                FrequentItemset {
                    itemset: Itemset::from_sorted_unchecked(vec![a, b]),
                    accum: StatAccum::from_outcomes(&[Outcome::Undefined]),
                },
                FrequentItemset {
                    itemset: Itemset::singleton(b),
                    accum: StatAccum::from_outcomes(&[Outcome::Bool(false), Outcome::Bool(false)]),
                },
            ],
            4,
            global,
        );
        (result, catalog)
    }

    #[test]
    fn ranked_by_divergence_with_undefined_last() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        assert_eq!(report.records.len(), 3);
        assert_eq!(report.records[0].label, "{x=a}");
        assert_eq!(report.records[0].divergence, Some(0.75));
        assert_eq!(report.records[1].divergence, Some(-0.25));
        assert_eq!(report.records[2].divergence, None);
        assert_eq!(report.max_divergence(), Some(0.75));
        assert_eq!(report.max_abs_divergence(), Some(0.75));
        assert_eq!(report.global_statistic, Some(0.25));
    }

    #[test]
    fn top_k_and_filters() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        assert_eq!(report.top_k(2).len(), 2);
        assert_eq!(report.top_k(10).len(), 3);
        assert_eq!(report.top().unwrap().label, "{x=a}");
        let best_len1_neg = report
            .best_where(|r| r.len() == 1 && r.divergence.unwrap_or(0.0) < 0.0)
            .unwrap();
        assert_eq!(best_len1_neg.label, "{y=b}");
        // t filter: all our toy t-values are small; threshold 1e9 removes all.
        assert_eq!(report.significant(1e9).count(), 0);
    }

    #[test]
    fn attribute_profile_ranks_by_max_divergence() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        // fixture: {x=a} Δ=.75 (attr 0), {y=b} Δ=-.25 (attr 1),
        // {x=a,y=b} undefined.
        let profile = report.attribute_profile(&catalog);
        assert_eq!(profile.len(), 2);
        assert_eq!(profile[0].0, AttrId(0));
        assert!((profile[0].1 - 0.75).abs() < 1e-12);
        assert_eq!(profile[1].0, AttrId(1));
        assert!((profile[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table_renders_aligned() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        let table = report.table(3);
        assert!(table.contains("{x=a}"));
        assert!(table.lines().count() == 4);
        assert!(table.contains("+0.750"));
    }

    #[test]
    fn fdr_control_selects_by_bh_cutoff() {
        // Hand-built p-values: [0.001, 0.01, 0.03, 0.8].
        // BH at q=0.1, m=4: thresholds 0.025, 0.05, 0.075, 0.1 →
        // p(1)=0.001 ≤ 0.025 ✓, p(2)=0.01 ≤ 0.05 ✓, p(3)=0.03 ≤ 0.075 ✓,
        // p(4)=0.8 > 0.1 → keep first three.
        let (result, catalog) = fixture();
        let mut report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        report.records.push(report.records[0].clone());
        let ps = [0.03, 0.8, 0.001, 0.01]; // unsorted on purpose
        for (r, p) in report.records.iter_mut().zip(ps) {
            r.p_value = p;
        }
        let kept = report.significant_fdr(0.1);
        assert_eq!(kept.len(), 3);
        assert!(kept.iter().all(|r| r.p_value <= 0.03));
        // Monotone in q.
        assert!(report.significant_fdr(0.001).len() <= kept.len());
        assert_eq!(report.significant_fdr(1.0).len(), 4);
        // Empty report.
        let empty = DivergenceReport::empty();
        assert!(empty.significant_fdr(0.1).is_empty());
    }

    #[test]
    #[should_panic(expected = "q must be")]
    fn fdr_rejects_bad_q() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        let _ = report.significant_fdr(1.5);
    }

    #[test]
    fn p_values_consistent_with_t() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        for r in &report.records {
            assert!((0.0..=1.0).contains(&r.p_value), "{}", r.label);
            // Larger |t| should not have larger p among comparable samples;
            // at minimum, t == 0 ⇒ p == 1.
            if r.t_value == 0.0 {
                assert_eq!(r.p_value, 1.0);
            }
        }
    }

    #[test]
    fn non_redundant_filters_explained_itemsets() {
        // {a} Δ=.75; {a,b} Δ=.75 (b adds nothing) → {a,b} is redundant.
        // {y=b} Δ=-.25 is kept (novel singleton).
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        // fixture: {x=a} 0.75, {x=a,y=b} undefined, {y=b} -0.25.
        let filtered = report.non_redundant(0.01);
        // The undefined-divergence record is never dropped; singletons whose
        // |Δ| exceeds ε stay.
        assert_eq!(filtered.len(), 3);

        // Now add a redundant superset explicitly.
        let mut result2 = result.clone();
        let a = result2.itemsets[0].itemset.items()[0];
        let b = result2.itemsets[2].itemset.items()[0];
        result2.itemsets.push(hdx_mining::FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(vec![a, b]),
            accum: StatAccum::from_outcomes(&[Outcome::Bool(true), Outcome::Bool(true)]),
        });
        // Remove the undefined {a,b} so labels don't clash.
        result2.itemsets.remove(1);
        let report2 = DivergenceReport::from_mining(&result2, &catalog, Duration::ZERO);
        let filtered2 = report2.non_redundant(0.01);
        // {x=a, y=b} (Δ = .75) is explained by {x=a} (Δ = .75) → dropped.
        assert!(filtered2.iter().all(|r| r.itemset.len() == 1));
        // Tiny-divergence singletons are explained by the empty set.
        assert_eq!(
            report2
                .non_redundant(0.3)
                .iter()
                .filter(|r| r.label == "{y=b}")
                .count(),
            0
        );
    }

    #[test]
    fn supports_are_fractions() {
        let (result, catalog) = fixture();
        let report = DivergenceReport::from_mining(&result, &catalog, Duration::ZERO);
        for r in &report.records {
            assert!(r.support > 0.0 && r.support <= 1.0);
        }
    }
}
