//! JSON export of exploration results — reports, discretization trees and
//! hierarchies — for dashboards and downstream tooling.
//!
//! Hand-rolled writer (the reproduction mandate keeps dependencies minimal);
//! emits standards-compliant JSON with proper string escaping and
//! `null` for undefined statistics.

use std::fmt::Write as _;

use hdx_discretize::DiscretizationTree;
use hdx_items::ItemCatalog;

use crate::hdivexplorer::HDivResult;
use crate::report::DivergenceReport;

/// Escapes a string per RFC 8259.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn opt_number(x: Option<f64>) -> String {
    x.map_or_else(|| "null".to_string(), number)
}

/// Serialises a [`DivergenceReport`] to a JSON object with a `subgroups`
/// array (label, items, support, statistic, divergence, t) plus the global
/// statistic and row count.
pub fn report_to_json(report: &DivergenceReport, catalog: &ItemCatalog) -> String {
    let mut out = String::from("{");
    let errors: Vec<String> = report
        .errors
        .iter()
        .map(|e| format!("\"{}\"", escape(&e.to_string())))
        .collect();
    let _ = write!(
        out,
        "\"n_rows\":{},\"global_statistic\":{},\"elapsed_seconds\":{},\
         \"termination\":\"{}\",\"partial\":{},\
         \"counters\":{{\"itemsets\":{},\"candidate_bytes\":{},\"tree_nodes\":{}}},\
         \"errors\":[{}],\"subgroups\":[",
        report.n_rows,
        opt_number(report.global_statistic),
        number(report.elapsed.as_secs_f64()),
        report.termination,
        report.is_partial(),
        report.counters.itemsets,
        report.counters.candidate_bytes,
        report.counters.tree_nodes,
        errors.join(","),
    );
    for (i, r) in report.records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let items: Vec<String> = r
            .itemset
            .items()
            .iter()
            .map(|&id| format!("\"{}\"", escape(catalog.label(id))))
            .collect();
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"items\":[{}],\"support\":{},\"statistic\":{},\"divergence\":{},\"t\":{},\"p\":{}}}",
            escape(&r.label),
            items.join(","),
            number(r.support),
            opt_number(r.statistic),
            opt_number(r.divergence),
            number(r.t_value),
            number(r.p_value),
        );
    }
    out.push_str("]}");
    out
}

/// Serialises a [`DiscretizationTree`] to nested JSON (`item`, `support`,
/// `statistic`, `divergence`, `children`).
pub fn tree_to_json(tree: &DiscretizationTree, catalog: &ItemCatalog) -> String {
    fn node_json(tree: &DiscretizationTree, idx: usize, catalog: &ItemCatalog) -> String {
        let node = &tree.nodes[idx];
        let label = node
            .item
            .map_or_else(|| "root".to_string(), |i| catalog.label(i).to_string());
        let children: Vec<String> = node
            .children
            .iter()
            .map(|&c| node_json(tree, c, catalog))
            .collect();
        format!(
            "{{\"item\":\"{}\",\"support\":{},\"statistic\":{},\"divergence\":{},\"children\":[{}]}}",
            escape(&label),
            number(node.support),
            opt_number(node.statistic),
            opt_number(node.divergence),
            children.join(","),
        )
    }
    node_json(tree, DiscretizationTree::ROOT, catalog)
}

/// Serialises a full [`HDivResult`]: the report plus every discretization
/// tree, keyed by attribute id.
pub fn result_to_json(result: &HDivResult) -> String {
    let trees: Vec<String> = result
        .trees
        .iter()
        .map(|t| {
            format!(
                "{{\"attr\":{},\"tree\":{}}}",
                t.attr.index(),
                tree_to_json(t, &result.catalog)
            )
        })
        .collect();
    format!(
        "{{\"report\":{},\"discretization_seconds\":{},\
         \"adaptive_retries\":{},\"effective_min_support\":{},\"trees\":[{}]}}",
        report_to_json(&result.report, &result.catalog),
        number(result.discretization_time.as_secs_f64()),
        result.adaptive_retries,
        number(result.effective_min_support),
        trees.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hdivexplorer::{HDivExplorer, HDivExplorerConfig};
    use crate::outcome_fn::OutcomeFn;
    use hdx_data::{DataFrameBuilder, Value};

    /// Minimal structural JSON validator: balanced braces/brackets outside
    /// strings, proper string termination. Catches the classes of bugs a
    /// hand-rolled writer can introduce.
    fn check_json(s: &str) {
        let mut depth: Vec<char> = Vec::new();
        let mut chars = s.chars().peekable();
        let mut in_string = false;
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '\\' => {
                        chars.next();
                    }
                    '"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth.push('}'),
                '[' => depth.push(']'),
                '}' | ']' => assert_eq!(depth.pop(), Some(c), "mismatched close in {s}"),
                _ => {}
            }
        }
        assert!(!in_string, "unterminated string");
        assert!(depth.is_empty(), "unbalanced nesting");
    }

    fn fixture() -> crate::hdivexplorer::HDivResult {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_categorical("g").unwrap();
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for i in 0..200 {
            let x = (i % 100) as f64;
            // Level with a quote to exercise escaping.
            let g = if i % 2 == 0 { "a\"quote" } else { "b" };
            b.push_row(vec![Value::Num(x), Value::Cat(g.into())])
                .unwrap();
            y_true.push(true);
            y_pred.push(!(x > 60.0 && i % 4 == 0));
        }
        let df = b.finish();
        let outcomes = OutcomeFn::ErrorRate.compute(&y_true, &y_pred);
        HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.1,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes)
    }

    #[test]
    fn report_json_is_well_formed() {
        let result = fixture();
        let json = report_to_json(&result.report, &result.catalog);
        check_json(&json);
        assert!(json.contains("\"subgroups\":["));
        assert!(json.contains("\"divergence\":"));
        assert!(json.contains("\"termination\":\"complete\""));
        assert!(json.contains("\"partial\":false"));
        assert!(json.contains("\"counters\":{\"itemsets\":"));
        assert!(json.contains("a\\\"quote"), "quotes escaped");
    }

    #[test]
    fn tree_json_nests_children() {
        let result = fixture();
        let json = tree_to_json(&result.trees[0], &result.catalog);
        check_json(&json);
        assert!(json.starts_with("{\"item\":\"root\""));
        assert!(json.contains("\"children\":[{"));
    }

    #[test]
    fn full_result_json() {
        let result = fixture();
        let json = result_to_json(&result);
        check_json(&json);
        assert!(json.contains("\"report\":{"));
        assert!(json.contains("\"trees\":[{\"attr\":0"));
    }

    #[test]
    fn escaping_covers_control_characters() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
        assert_eq!(opt_number(None), "null");
        assert_eq!(opt_number(Some(1.5)), "1.5");
    }
}
