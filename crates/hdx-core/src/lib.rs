//! # hdx-core
//!
//! The paper's primary contribution: hierarchical anomalous subgroup
//! discovery.
//!
//! * [`OutcomeFn`] — the outcome functions of §III-B, turning model
//!   predictions (or a raw quantity) into per-instance outcomes whose mean
//!   is the statistic of interest (FPR, FNR, error rate, accuracy, a real
//!   value such as income, …);
//! * [`DivExplorer`] — the base (non-hierarchical) explorer of prior work
//!   (§III-C): frequent-itemset mining over leaf items with divergence
//!   accumulated during mining;
//! * [`HDivExplorer`] — the full H-DivExplorer pipeline (§V): tree
//!   discretization of every continuous attribute into item hierarchies,
//!   categorical taxonomies, generalized itemset mining at every granularity
//!   (Algorithm 1), and optional polarity pruning (§V-C);
//! * [`DivergenceReport`] / [`SubgroupRecord`] — ranked, labelled results;
//! * [`item_contributions`] / [`global_item_contributions`] — Shapley-value
//!   attribution of a subgroup's divergence to its items (inherited from
//!   DivExplorer's analysis toolkit).
//!
//! ```
//! use hdx_core::{HDivExplorer, HDivExplorerConfig, OutcomeFn};
//! use hdx_data::{DataFrameBuilder, Value};
//!
//! // Tiny dataset: error rate is elevated when x > 80.
//! let mut b = DataFrameBuilder::new();
//! b.add_continuous("x").unwrap();
//! let mut y_true = Vec::new();
//! let mut y_pred = Vec::new();
//! for i in 0..200 {
//!     b.push_row(vec![Value::Num(f64::from(i % 100))]).unwrap();
//!     y_true.push(true);
//!     y_pred.push(!(i % 100 > 80 && i % 3 == 0)); // mistakes when x > 80
//! }
//! let df = b.finish();
//! let outcomes = OutcomeFn::ErrorRate.compute(&y_true, &y_pred);
//! let result = HDivExplorer::new(HDivExplorerConfig::default()).fit(&df, &outcomes);
//! let top = &result.report.records[0];
//! assert!(top.divergence.unwrap() > 0.0);
//! ```

/// Runtime validators for the polarity sign-homogeneity invariant (§V-C).
pub mod invariants;

mod error;
mod explorer;
mod hdivexplorer;
mod json;
mod lattice;
mod outcome_fn;
mod polarity;
mod report;
mod resume;
mod shapley;

pub use error::CoreError;
pub use explorer::{DivExplorer, ExplorationConfig};
pub use hdivexplorer::{
    ExplorationMode, HDivExplorer, HDivExplorerConfig, HDivResult, ADAPTIVE_MAX_RETRIES,
    ADAPTIVE_MAX_SUPPORT,
};
pub use json::{report_to_json, result_to_json, tree_to_json};
pub use lattice::Lattice;
pub use outcome_fn::{
    discounted_exposure_outcomes, real_outcomes, topk_exposure_outcomes, OutcomeFn,
};
pub use polarity::{mine_with_polarity, mine_with_polarity_governed, split_by_polarity};
pub use report::{DivergenceReport, SubgroupRecord};
pub use resume::{fingerprint_config, fingerprint_dataset, snapshot_tree, CheckpointedRun};
pub use shapley::{global_item_contributions, item_contributions};

/// The checkpoint subsystem (re-exported from `hdx-checkpoint`): crash-safe
/// persistence of mining state at work boundaries, with fingerprint-verified
/// resume. See [`HDivExplorer::fit_checkpointed`] /
/// [`HDivExplorer::resume_checkpointed`] and DESIGN.md §12.
pub use hdx_checkpoint as checkpoint;

/// The incremental-ingestion subsystem (re-exported from `hdx-ingest`):
/// a durable CRC-framed row WAL with degrade-not-die recovery, the sealed
/// fold cursor, and the mergeable/subtractable lattice view used for
/// streaming re-mining. See DESIGN.md §17.
pub use hdx_ingest as ingest;

/// The observability subsystem (re-exported from `hdx-obs`): hierarchical
/// spans, typed metrics and the machine-readable [`RunTelemetry`]
/// (`obs::RunTelemetry`) artifact. Zero-cost unless the `obs` feature is
/// enabled.
pub use hdx_obs as obs;

/// The run-governor subsystem (re-exported from `hdx-governor`): budgets,
/// deadlines, cooperative cancellation and fail-point injection.
pub use hdx_governor as governor;
pub use hdx_governor::{CancelReason, CancelToken, Governor, RunBudget, RunCounters, Termination};
