//! Crash-safe checkpoint/resume for the full pipeline (DESIGN.md §12).
//!
//! The checkpointed pipeline persists only the expensive, stateful part of a
//! run — the mining traversal — and *recomputes* the cheap deterministic
//! stages on resume: discretization and transaction encoding rerun from the
//! caller's data frame. Before any persisted state is trusted, three
//! identities must match the checkpoint:
//!
//! 1. the **dataset fingerprint** (schema, every cell, every outcome);
//! 2. the **configuration fingerprint** (effective support thresholds,
//!    criterion, algorithm, exploration mode — *not* the budget, since
//!    resuming with a different budget is the whole point);
//! 3. a content hash of the **re-derived discretization trees**, proving the
//!    recomputation reproduced the item catalog the checkpoint was built on.
//!
//! All three miners are deterministic, so a resumed run returns bit-for-bit
//! the report an uninterrupted run would have produced.

use std::time::Instant;

use hdx_checkpoint::{
    verify_identity, CheckpointError, CheckpointStore, Checkpointer, Fingerprint, MiningProgress,
    TreeNodeSnapshot, TreeSnapshot,
};
use hdx_data::{AttributeKind, DataFrame};
use hdx_discretize::{DiscretizationTree, GainCriterion};
use hdx_governor::{Governor, RunBudget, RunCounters, Termination};
use hdx_mining::{
    checkpoint_algorithm, mine_governed_ckpt, validate_resume, MiningConfig, Transactions,
};
use hdx_stats::Outcome;

use crate::error::CoreError;
use crate::hdivexplorer::{
    ExplorationMode, HDivExplorer, HDivExplorerConfig, HDivResult, ADAPTIVE_MAX_RETRIES,
    ADAPTIVE_MAX_SUPPORT,
};
use crate::report::DivergenceReport;

/// Snapshots a discretization tree into the plain persisted form.
pub fn snapshot_tree(tree: &DiscretizationTree) -> TreeSnapshot {
    TreeSnapshot {
        attr: tree.attr.0,
        nodes: tree
            .nodes
            .iter()
            .map(|n| TreeNodeSnapshot {
                lo: n.interval.lo,
                hi: n.interval.hi,
                item: n.item.map(|i| i.0),
                support: n.support,
                statistic: n.statistic,
                divergence: n.divergence,
                children: n.children.iter().map(|&c| c as u32).collect(),
                depth: n.depth as u32,
            })
            .collect(),
    }
}

/// Content fingerprint of a dataset + outcome vector: schema (names and
/// kinds), every cell (NaN-canonicalised), every outcome. A single edited
/// cell moves the fingerprint, so a checkpoint can never be resumed against
/// the wrong data.
pub fn fingerprint_dataset(df: &DataFrame, outcomes: &[Outcome]) -> u64 {
    let mut f = Fingerprint::new();
    f.write_u64(df.n_rows() as u64);
    for (attr, attribute) in df.schema().iter() {
        f.write_str(attribute.name());
        match attribute.kind() {
            AttributeKind::Continuous => {
                f.write_u8(0);
                for &v in df.continuous(attr).values() {
                    f.write_f64(v);
                }
            }
            AttributeKind::Categorical => {
                f.write_u8(1);
                let column = df.categorical(attr);
                f.write_u64(column.n_levels() as u64);
                for level in column.levels() {
                    f.write_str(level);
                }
                for &code in column.codes() {
                    f.write_u64(code as u64);
                }
            }
        }
    }
    f.write_u64(outcomes.len() as u64);
    for outcome in outcomes {
        match outcome.value() {
            Some(v) => {
                f.write_u8(1);
                f.write_f64(v);
            }
            None => {
                f.write_u8(0);
            }
        }
    }
    f.finish()
}

/// Fingerprint of the result-determining configuration at an effective
/// minimum support.
///
/// Deliberately excluded: the budget and the cancel token (resuming under a
/// *different* budget is the point of checkpointing) and `adaptive_support`
/// (its effect is entirely captured by the effective `min_support` passed
/// here). `polarity_pruning` is excluded because the checkpointed entry
/// points refuse it.
pub fn fingerprint_config(
    config: &HDivExplorerConfig,
    mode: ExplorationMode,
    min_support: f64,
) -> u64 {
    let mut f = Fingerprint::new();
    f.write_f64(min_support);
    f.write_f64(config.tree_min_support);
    f.write_u8(match config.criterion {
        GainCriterion::Entropy => 0,
        GainCriterion::Divergence => 1,
    });
    f.write_u64(config.max_tree_depth.map_or(u64::MAX, |d| d as u64));
    f.write_str(checkpoint_algorithm(config.algorithm));
    f.write_u64(config.max_len.map_or(u64::MAX, |l| l as u64));
    f.write_u8(match mode {
        ExplorationMode::Base => 0,
        ExplorationMode::Generalized => 1,
    });
    f.finish()
}

/// The outcome of a checkpointed (or resumed) pipeline run.
#[derive(Debug, Clone)]
pub struct CheckpointedRun {
    /// The pipeline result — identical to what an uninterrupted
    /// [`HDivExplorer::fit_mode`] run would return.
    pub result: HDivResult,
    /// Checkpoints durably written during this process's lifetime.
    pub checkpoint_writes: u64,
    /// The last non-fatal checkpoint write failure, if any (the run keeps
    /// mining when a checkpoint cannot be written; durability degrades,
    /// results don't).
    pub checkpoint_error: Option<String>,
    /// Sequence number of the checkpoint this run resumed from
    /// (`None` for fresh runs).
    pub resumed_seq: Option<u64>,
    /// Corrupt or truncated newer checkpoint files that were skipped before
    /// a valid one loaded during resume.
    pub rejected_checkpoints: u64,
}

impl HDivExplorer {
    /// Runs the full pipeline with crash-safe checkpointing: mining state is
    /// persisted into `store` at every `every`-th work boundary (and once
    /// more when mining stops — normal completion and governor trips alike),
    /// so a killed process continues from its last boundary via
    /// [`resume_checkpointed`](Self::resume_checkpointed) instead of
    /// restarting from zero.
    ///
    /// # Errors
    /// [`CoreError::OutcomeLengthMismatch`] / [`CoreError::InvalidParameter`]
    /// on malformed input; `polarity_pruning` is refused (the polarity
    /// search's per-polarity passes have no single replayable emission
    /// order).
    pub fn fit_checkpointed(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
        store: CheckpointStore,
        every: u64,
    ) -> Result<CheckpointedRun, CoreError> {
        self.run_checkpointed(df, outcomes, mode, store, every, false)
    }

    /// Resumes a run persisted by [`fit_checkpointed`](Self::fit_checkpointed)
    /// from the newest valid checkpoint in `store`.
    ///
    /// The cheap stages (discretization, transaction encoding) are recomputed
    /// from `df`/`outcomes`; the checkpoint's dataset and configuration
    /// fingerprints and the re-derived trees are verified before any mining
    /// state is trusted. Budget work counters continue from the checkpoint;
    /// the deadline clock restarts (a dead process's wall time is not billed
    /// to its successor).
    ///
    /// # Errors
    /// Everything [`fit_checkpointed`](Self::fit_checkpointed) returns, plus
    /// [`CoreError::Checkpoint`] when no valid checkpoint exists or an
    /// identity fingerprint disagrees.
    pub fn resume_checkpointed(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
        store: CheckpointStore,
        every: u64,
    ) -> Result<CheckpointedRun, CoreError> {
        self.run_checkpointed(df, outcomes, mode, store, every, true)
    }

    fn run_checkpointed(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        mode: ExplorationMode,
        store: CheckpointStore,
        every: u64,
        resume: bool,
    ) -> Result<CheckpointedRun, CoreError> {
        self.validate_inputs(df, outcomes)?;
        if self.config.polarity_pruning {
            return Err(CoreError::InvalidParameter {
                name: "polarity_pruning",
                message: "polarity-pruned mining cannot be checkpointed (no single \
                          replayable emission order); disable one of the two"
                    .into(),
            });
        }
        let start = Instant::now();
        let budget = self.config.budget;
        let disc_governor = Governor::with_token(budget, self.cancel.clone());
        let (catalog, hierarchies, trees) = self.discretize_governed(df, outcomes, &disc_governor);
        let discretization_time = start.elapsed();
        let tree_snaps: Vec<TreeSnapshot> = trees.iter().map(snapshot_tree).collect();
        let dataset_fingerprint = fingerprint_dataset(df, outcomes);

        // The adaptive-support ladder: rung `r` is the effective support
        // after `r` retries. Each rung re-fingerprints the config, so a
        // checkpoint written mid-retry names the rung it belongs to.
        let mut ladder = vec![self.config.min_support];
        if self.config.adaptive_support {
            let mut s = self.config.min_support;
            for _ in 0..ADAPTIVE_MAX_RETRIES {
                if s >= ADAPTIVE_MAX_SUPPORT {
                    break;
                }
                s = (s * 2.0).min(ADAPTIVE_MAX_SUPPORT);
                ladder.push(s);
            }
        }

        let mut resume_progress: Option<MiningProgress> = None;
        let mut resumed_seq = None;
        let mut rejected_checkpoints = 0;
        let mut adaptive_retries: u32 = 0;
        if resume {
            let loaded = store.load_latest()?;
            let rung = ladder
                .iter()
                .position(|&s| {
                    fingerprint_config(&self.config, mode, s) == loaded.state.config_fingerprint
                })
                .ok_or(CheckpointError::FingerprintMismatch {
                    field: "config",
                    expected: loaded.state.config_fingerprint,
                    found: fingerprint_config(&self.config, mode, self.config.min_support),
                })?;
            verify_identity(
                &loaded.state,
                dataset_fingerprint,
                fingerprint_config(&self.config, mode, ladder[rung]),
                &tree_snaps,
            )?;
            adaptive_retries = rung as u32;
            resumed_seq = Some(loaded.seq);
            rejected_checkpoints = loaded.rejected;
            resume_progress = Some(loaded.state.progress);
        }

        let remaining_deadline = |budget: RunBudget| RunBudget {
            deadline: budget.deadline.map(|d| d.saturating_sub(start.elapsed())),
            ..budget
        };
        let mut checkpoint_writes = 0;
        let mut checkpoint_error: Option<String> = None;
        let (mut report, mine_governor) = loop {
            let min_support = ladder[adaptive_retries as usize];
            let mut ckpt = Checkpointer::new(
                store.clone(),
                every,
                dataset_fingerprint,
                fingerprint_config(&self.config, mode, min_support),
                tree_snaps.clone(),
            );
            let transactions = match mode {
                ExplorationMode::Base => {
                    Transactions::encode_base(df, &catalog, &hierarchies, outcomes)
                }
                ExplorationMode::Generalized => {
                    Transactions::encode_generalized(df, &catalog, &hierarchies, outcomes)
                }
            };
            let mining = MiningConfig {
                min_support,
                max_len: self.config.max_len,
                algorithm: self.config.algorithm,
                threads: self.config.threads,
            };
            // The loaded progress applies only to the first pass; adaptive
            // retries restart mining from scratch at the coarser support.
            let progress = resume_progress.take();
            if let Some(p) = &progress {
                validate_resume(p, &mining, &transactions)?;
            }
            let governor = match &progress {
                Some(p) => Governor::resumed_with_token(
                    remaining_deadline(budget),
                    self.cancel.clone(),
                    RunCounters {
                        itemsets: p.counters.itemsets,
                        candidate_bytes: p.counters.candidate_bytes,
                        tree_nodes: p.counters.tree_nodes,
                        ..RunCounters::default()
                    },
                ),
                None => Governor::with_token(remaining_deadline(budget), self.cancel.clone()),
            };
            let mine_start = Instant::now();
            let result = mine_governed_ckpt(
                &transactions,
                &catalog,
                &mining,
                &governor,
                &mut ckpt,
                progress.as_ref(),
            );
            checkpoint_writes += ckpt.writes();
            if let Some(err) = ckpt.last_error() {
                checkpoint_error = Some(err.to_string());
            }
            let report = DivergenceReport::from_mining(&result, &catalog, mine_start.elapsed());
            let exhausted = report.termination == Termination::BudgetExhausted;
            if self.config.adaptive_support
                && exhausted
                && (adaptive_retries as usize) + 1 < ladder.len()
            {
                adaptive_retries += 1;
                continue;
            }
            break (report, governor);
        };
        report.termination = report.termination.worst(disc_governor.termination());
        report.counters = mine_governor.counters().merged(disc_governor.counters());
        let effective_min_support = ladder[adaptive_retries as usize];
        Ok(CheckpointedRun {
            result: HDivResult {
                report,
                catalog,
                hierarchies,
                trees,
                discretization_time,
                adaptive_retries,
                effective_min_support,
            },
            checkpoint_writes,
            checkpoint_error,
            resumed_seq,
            rejected_checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome_fn::OutcomeFn;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_mining::MiningAlgorithm;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};
    use std::fs;
    use std::path::PathBuf;

    fn setup(n: usize) -> (DataFrame, Vec<Outcome>) {
        let mut rng = StdRng::seed_from_u64(29);
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_categorical("g").unwrap();
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for _ in 0..n {
            let x: f64 = rng.random_range(0.0..100.0);
            let g = ["a", "b", "c"][rng.random_range(0..3usize)];
            b.push_row(vec![Value::Num(x), Value::Cat(g.into())])
                .unwrap();
            let truth = rng.random::<f64>() < 0.5;
            let err = x > 55.0 && g == "b" && rng.random::<f64>() < 0.85;
            y_true.push(truth);
            y_pred.push(truth != err);
        }
        (b.finish(), OutcomeFn::ErrorRate.compute(&y_true, &y_pred))
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("hdx-core-resume-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn assert_same_report(a: &DivergenceReport, b: &DivergenceReport) {
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.support, y.support);
            assert_eq!(x.divergence, y.divergence);
        }
    }

    #[test]
    fn fresh_checkpointed_run_matches_plain_fit() {
        let (df, outcomes) = setup(600);
        let dir = tmp_dir("fresh");
        let config = HDivExplorerConfig {
            min_support: 0.05,
            algorithm: MiningAlgorithm::Vertical,
            ..HDivExplorerConfig::default()
        };
        let pipeline = HDivExplorer::new(config);
        let plain = pipeline.fit_mode(&df, &outcomes, ExplorationMode::Generalized);
        let run = pipeline
            .fit_checkpointed(
                &df,
                &outcomes,
                ExplorationMode::Generalized,
                CheckpointStore::create(&dir).unwrap(),
                1,
            )
            .unwrap();
        assert_same_report(&plain.report, &run.result.report);
        assert!(run.checkpoint_writes > 0, "boundaries were persisted");
        assert!(run.checkpoint_error.is_none());
        assert_eq!(run.resumed_seq, None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_run_resumes_to_the_uninterrupted_result() {
        let (df, outcomes) = setup(800);
        let dir = tmp_dir("resume");
        let base = HDivExplorerConfig {
            min_support: 0.05,
            algorithm: MiningAlgorithm::Vertical,
            ..HDivExplorerConfig::default()
        };
        let full = HDivExplorer::new(base).fit_mode(&df, &outcomes, ExplorationMode::Generalized);
        let total = full.report.records.len() as u64;
        assert!(total > 4, "fixture must emit enough itemsets");

        // Trip a budget near the end: the last flushed boundary survives.
        let tripped = HDivExplorer::new(HDivExplorerConfig {
            budget: RunBudget::unbounded().with_max_itemsets(total - 2),
            ..base
        })
        .fit_checkpointed(
            &df,
            &outcomes,
            ExplorationMode::Generalized,
            CheckpointStore::create(&dir).unwrap(),
            1,
        )
        .unwrap();
        assert_eq!(tripped.result.termination(), Termination::BudgetExhausted);
        assert!(tripped.checkpoint_writes > 0);

        // Resume with the budget lifted: identical to the uninterrupted run.
        let resumed = HDivExplorer::new(base)
            .resume_checkpointed(
                &df,
                &outcomes,
                ExplorationMode::Generalized,
                CheckpointStore::open(&dir).unwrap(),
                1,
            )
            .unwrap();
        assert!(resumed.resumed_seq.is_some());
        assert_eq!(resumed.rejected_checkpoints, 0);
        assert!(resumed.result.termination().is_complete());
        assert_same_report(&full.report, &resumed.result.report);
        // The resumed governor kept charging from the checkpoint counters.
        assert_eq!(resumed.result.counters().itemsets, full.counters().itemsets);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_an_edited_dataset() {
        let (df, outcomes) = setup(400);
        let dir = tmp_dir("editeddata");
        let config = HDivExplorerConfig {
            algorithm: MiningAlgorithm::Apriori,
            ..HDivExplorerConfig::default()
        };
        HDivExplorer::new(config)
            .fit_checkpointed(
                &df,
                &outcomes,
                ExplorationMode::Generalized,
                CheckpointStore::create(&dir).unwrap(),
                1,
            )
            .unwrap();
        // Same frame, one outcome flipped: the dataset fingerprint moves.
        let mut edited = outcomes.clone();
        edited[0] = match edited[0].value() {
            Some(v) if v > 0.5 => Outcome::Bool(false),
            _ => Outcome::Bool(true),
        };
        let err = HDivExplorer::new(config)
            .resume_checkpointed(
                &df,
                &edited,
                ExplorationMode::Generalized,
                CheckpointStore::open(&dir).unwrap(),
                1,
            )
            .unwrap_err();
        match err {
            CoreError::Checkpoint(CheckpointError::FingerprintMismatch { field, .. }) => {
                assert_eq!(field, "dataset");
            }
            other => panic!("expected dataset fingerprint mismatch, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_rejects_a_changed_configuration() {
        let (df, outcomes) = setup(400);
        let dir = tmp_dir("editedcfg");
        HDivExplorer::new(HDivExplorerConfig::default())
            .fit_checkpointed(
                &df,
                &outcomes,
                ExplorationMode::Generalized,
                CheckpointStore::create(&dir).unwrap(),
                1,
            )
            .unwrap();
        let err = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.2,
            ..HDivExplorerConfig::default()
        })
        .resume_checkpointed(
            &df,
            &outcomes,
            ExplorationMode::Generalized,
            CheckpointStore::open(&dir).unwrap(),
            1,
        )
        .unwrap_err();
        match err {
            CoreError::Checkpoint(CheckpointError::FingerprintMismatch { field, .. }) => {
                assert_eq!(field, "config");
            }
            other => panic!("expected config fingerprint mismatch, got {other}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn polarity_pruning_is_refused() {
        let (df, outcomes) = setup(200);
        let dir = tmp_dir("polarity");
        let err = HDivExplorer::new(HDivExplorerConfig {
            polarity_pruning: true,
            ..HDivExplorerConfig::default()
        })
        .fit_checkpointed(
            &df,
            &outcomes,
            ExplorationMode::Generalized,
            CheckpointStore::create(&dir).unwrap(),
            1,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidParameter {
                name: "polarity_pruning",
                ..
            }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_on_resume() {
        let (df, outcomes) = setup(600);
        let dir = tmp_dir("fallback");
        let base = HDivExplorerConfig {
            algorithm: MiningAlgorithm::FpGrowth,
            ..HDivExplorerConfig::default()
        };
        let full = HDivExplorer::new(base).fit_mode(&df, &outcomes, ExplorationMode::Generalized);
        let total = full.report.records.len() as u64;
        HDivExplorer::new(HDivExplorerConfig {
            budget: RunBudget::unbounded().with_max_itemsets(total - 1),
            ..base
        })
        .fit_checkpointed(
            &df,
            &outcomes,
            ExplorationMode::Generalized,
            CheckpointStore::create(&dir).unwrap(),
            1,
        )
        .unwrap();
        // Flip one byte in the newest checkpoint file.
        let store = CheckpointStore::open(&dir).unwrap();
        let newest = *store.sequences().unwrap().last().unwrap();
        let path = store.path_of(newest);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs::write(&path, &bytes).unwrap();

        let resumed = HDivExplorer::new(base)
            .resume_checkpointed(&df, &outcomes, ExplorationMode::Generalized, store, 1)
            .unwrap();
        assert_eq!(resumed.rejected_checkpoints, 1, "corrupt newest skipped");
        assert_same_report(&full.report, &resumed.result.report);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adaptive_retries_climb_the_ladder_under_checkpointing() {
        let (df, outcomes) = setup(700);
        let dir = tmp_dir("adaptive");
        let coarse = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.2,
            ..HDivExplorerConfig::default()
        })
        .fit(&df, &outcomes);
        let cap = coarse.report.records.len() as u64;
        assert!(cap > 0);
        let run = HDivExplorer::new(HDivExplorerConfig {
            min_support: 0.025,
            budget: RunBudget::unbounded().with_max_itemsets(cap),
            adaptive_support: true,
            ..HDivExplorerConfig::default()
        })
        .fit_checkpointed(
            &df,
            &outcomes,
            ExplorationMode::Generalized,
            CheckpointStore::create(&dir).unwrap(),
            1,
        )
        .unwrap();
        assert!(run.result.termination().is_complete());
        assert!(run.result.adaptive_retries > 0);
        assert!(run.result.effective_min_support > 0.025);
        assert_eq!(run.result.report.records.len() as u64, cap);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dataset_fingerprint_is_cell_sensitive() {
        let (df, outcomes) = setup(100);
        let base = fingerprint_dataset(&df, &outcomes);
        assert_eq!(base, fingerprint_dataset(&df, &outcomes));
        let mut edited = outcomes.clone();
        edited[7] = Outcome::Undefined;
        assert_ne!(base, fingerprint_dataset(&df, &edited));
    }

    #[test]
    fn config_fingerprint_tracks_result_determining_fields() {
        let config = HDivExplorerConfig::default();
        let base = fingerprint_config(&config, ExplorationMode::Generalized, 0.05);
        // Budget changes do NOT move the fingerprint (resume may lift it).
        let budgeted = HDivExplorerConfig {
            budget: RunBudget::unbounded().with_max_itemsets(3),
            ..config
        };
        assert_eq!(
            base,
            fingerprint_config(&budgeted, ExplorationMode::Generalized, 0.05)
        );
        // Support, mode and algorithm do.
        assert_ne!(
            base,
            fingerprint_config(&config, ExplorationMode::Generalized, 0.1)
        );
        assert_ne!(
            base,
            fingerprint_config(&config, ExplorationMode::Base, 0.05)
        );
        let apriori = HDivExplorerConfig {
            algorithm: MiningAlgorithm::Apriori,
            ..config
        };
        assert_ne!(
            base,
            fingerprint_config(&apriori, ExplorationMode::Generalized, 0.05)
        );
        // The parallel vertical miner checkpoints as the serial one.
        let v = HDivExplorerConfig {
            algorithm: MiningAlgorithm::Vertical,
            ..config
        };
        let vp = HDivExplorerConfig {
            algorithm: MiningAlgorithm::VerticalParallel,
            ..config
        };
        assert_eq!(
            fingerprint_config(&v, ExplorationMode::Generalized, 0.05),
            fingerprint_config(&vp, ExplorationMode::Generalized, 0.05)
        );
    }
}
