//! Polarity pruning (§V-C).
//!
//! When hunting for high-|divergence| itemsets, the heuristic only combines
//! items whose *single-item* divergence has the same sign: a positive-polarity
//! search over items with `Δ ≥ 0` and a negative-polarity search over items
//! with `Δ ≤ 0`, merged. With `n` attributes whose items split roughly evenly
//! by sign, this prunes the lattice by a factor around `2^(n−1)`.

use std::collections::HashSet;

use hdx_items::{ItemCatalog, ItemId, Itemset};
use hdx_mining::{mine_governed, Governor, MiningConfig, MiningResult, Transactions};

#[cfg(test)]
use hdx_mining::mine;

/// Splits the items of `transactions` by the sign of their single-item
/// divergence. Items with zero or undefined divergence land in *both* sets
/// (they constrain neither polarity).
pub fn split_by_polarity(transactions: &Transactions) -> (HashSet<ItemId>, HashSet<ItemId>) {
    let global = transactions.global_accum();
    let mut positive = HashSet::new();
    let mut negative = HashSet::new();
    for (item, accum) in transactions.item_stats() {
        match accum.divergence(&global) {
            Some(d) if d > 0.0 => {
                positive.insert(item);
            }
            Some(d) if d < 0.0 => {
                negative.insert(item);
            }
            _ => {
                positive.insert(item);
                negative.insert(item);
            }
        }
    }
    (positive, negative)
}

/// Mines with polarity pruning: one run per polarity, merged and
/// deduplicated.
pub fn mine_with_polarity(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    mine_with_polarity_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`mine_with_polarity`] under a [`Governor`]. Both polarity runs share the
/// governor (and therefore the budget/deadline); errors from both runs are
/// merged and the shared termination is reported once.
pub fn mine_with_polarity_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    let (positive, negative) = split_by_polarity(transactions);
    #[cfg(feature = "obs")]
    {
        let n_items = transactions.item_stats().len() as u64;
        hdx_obs::counter_add!(
            PolarityItemsPruned,
            n_items.saturating_sub(positive.len() as u64)
                + n_items.saturating_sub(negative.len() as u64)
        );
    }
    let pos_result = {
        hdx_obs::span!("polarity", str "+");
        mine_governed(&transactions.restrict(&positive), catalog, config, governor)
    };
    let neg_result = {
        hdx_obs::span!("polarity", str "-");
        mine_governed(&transactions.restrict(&negative), catalog, config, governor)
    };

    let mut seen: HashSet<Itemset> = HashSet::new();
    let mut itemsets = Vec::with_capacity(pos_result.itemsets.len());
    let mut errors = pos_result.errors;
    errors.extend(neg_result.errors);
    for fi in pos_result.itemsets.into_iter().chain(neg_result.itemsets) {
        if seen.insert(fi.itemset.clone()) {
            itemsets.push(fi);
        } else {
            hdx_obs::counter_add!(PolarityItemsetsDeduped, 1);
        }
    }
    let mut result =
        MiningResult::complete(itemsets, transactions.n_rows(), transactions.global_accum())
            .governed_by(governor);
    result.errors = errors;
    #[cfg(feature = "debug-invariants")]
    if result.termination.is_complete() && result.errors.is_empty() {
        crate::invariants::assert_sign_homogeneity(&result, transactions);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::Item;
    use hdx_stats::Outcome;

    /// Two attributes, each with a positive-divergence and a
    /// negative-divergence item.
    fn setup() -> (Transactions, ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let a_hi = c.intern(Item::cat_eq(AttrId(0), 0, "a", "hi"));
        let a_lo = c.intern(Item::cat_eq(AttrId(0), 1, "a", "lo"));
        let b_hi = c.intern(Item::cat_eq(AttrId(1), 0, "b", "hi"));
        let b_lo = c.intern(Item::cat_eq(AttrId(1), 1, "b", "lo"));
        let mut rows = Vec::new();
        let mut outcomes = Vec::new();
        for i in 0..100 {
            let a = if i % 2 == 0 { a_hi } else { a_lo };
            let b = if i % 4 < 2 { b_hi } else { b_lo };
            rows.push(vec![a, b]);
            // Outcome true mostly when both "hi".
            let p_true = (a == a_hi) && (b == b_hi) && i % 8 < 7;
            outcomes.push(Outcome::Bool(p_true));
        }
        (
            Transactions::from_rows(rows, outcomes),
            c,
            vec![a_hi, a_lo, b_hi, b_lo],
        )
    }

    #[test]
    fn split_assigns_signs() {
        let (t, _, ids) = setup();
        let (pos, neg) = split_by_polarity(&t);
        assert!(pos.contains(&ids[0]), "a=hi is positive");
        assert!(pos.contains(&ids[2]), "b=hi is positive");
        assert!(neg.contains(&ids[1]), "a=lo is negative");
        assert!(neg.contains(&ids[3]), "b=lo is negative");
        assert!(!pos.contains(&ids[1]));
        assert!(!neg.contains(&ids[0]));
    }

    #[test]
    fn pruned_search_keeps_max_divergence() {
        let (t, catalog, _) = setup();
        let config = MiningConfig {
            min_support: 0.05,
            ..MiningConfig::default()
        };
        let full = mine(&t, &catalog, &config);
        let pruned = mine_with_polarity(&t, &catalog, &config);
        // The extreme subgroups combine same-polarity items, so the pruned
        // search finds the same maxima.
        assert_eq!(full.max_divergence(), pruned.max_divergence());
        assert_eq!(full.max_abs_divergence(), pruned.max_abs_divergence());
        // But it explores fewer itemsets (mixed-polarity pairs dropped).
        assert!(pruned.itemsets.len() < full.itemsets.len());
    }

    #[test]
    fn pruned_results_are_subset_without_duplicates() {
        let (t, catalog, _) = setup();
        let config = MiningConfig {
            min_support: 0.05,
            ..MiningConfig::default()
        };
        let full = mine(&t, &catalog, &config);
        let pruned = mine_with_polarity(&t, &catalog, &config);
        let full_set: HashSet<_> = full.itemsets.iter().map(|fi| fi.itemset.clone()).collect();
        let mut seen = HashSet::new();
        for fi in &pruned.itemsets {
            assert!(full_set.contains(&fi.itemset), "pruned ⊆ full");
            assert!(seen.insert(fi.itemset.clone()), "no duplicates");
        }
    }

    #[test]
    fn zero_divergence_items_in_both_polarities() {
        let mut c = ItemCatalog::new();
        let x = c.intern(Item::cat_eq(AttrId(0), 0, "x", "v"));
        // Item covers all rows → divergence exactly 0.
        let rows = vec![vec![x]; 10];
        let outcomes: Vec<Outcome> = (0..10).map(|i| Outcome::Bool(i % 2 == 0)).collect();
        let t = Transactions::from_rows(rows, outcomes);
        let (pos, neg) = split_by_polarity(&t);
        assert!(pos.contains(&x) && neg.contains(&x));
        // Pruned mining still returns it exactly once.
        let pruned = mine_with_polarity(
            &t,
            &c,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        assert_eq!(pruned.itemsets.len(), 1);
    }
}
