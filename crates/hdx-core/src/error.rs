//! Error type for the exploration pipeline.

use std::fmt;

/// Errors produced by the fallible pipeline entry points
/// ([`crate::HDivExplorer::try_fit`] and friends).
#[derive(Debug)]
pub enum CoreError {
    /// The outcome vector is not parallel to the data frame's rows.
    OutcomeLengthMismatch {
        /// Number of rows in the data frame.
        expected: usize,
        /// Length of the supplied outcome vector.
        found: usize,
    },
    /// A mining parameter is outside its valid range.
    InvalidParameter {
        /// Parameter name (e.g. `min_support`).
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutcomeLengthMismatch { expected, found } => write!(
                f,
                "outcome vector has {found} entries, expected {expected} (one per row)"
            ),
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::OutcomeLengthMismatch {
            expected: 10,
            found: 7,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("10"));
        let e = CoreError::InvalidParameter {
            name: "min_support",
            message: "must be in (0, 1]".into(),
        };
        assert!(e.to_string().contains("min_support"));
    }
}
