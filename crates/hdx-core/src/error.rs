//! Error type for the exploration pipeline.

use std::fmt;

/// Errors produced by the fallible pipeline entry points
/// ([`crate::HDivExplorer::try_fit`] and friends).
#[derive(Debug)]
pub enum CoreError {
    /// The outcome vector is not parallel to the data frame's rows.
    OutcomeLengthMismatch {
        /// Number of rows in the data frame.
        expected: usize,
        /// Length of the supplied outcome vector.
        found: usize,
    },
    /// A mining parameter is outside its valid range.
    InvalidParameter {
        /// Parameter name (e.g. `min_support`).
        name: &'static str,
        /// Human-readable description of the violated constraint.
        message: String,
    },
    /// A checkpoint could not be loaded, or the loaded state does not belong
    /// to this dataset/configuration (see `hdx_checkpoint::CheckpointError`).
    Checkpoint(hdx_checkpoint::CheckpointError),
}

impl From<hdx_checkpoint::CheckpointError> for CoreError {
    fn from(err: hdx_checkpoint::CheckpointError) -> Self {
        CoreError::Checkpoint(err)
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::OutcomeLengthMismatch { expected, found } => write!(
                f,
                "outcome vector has {found} entries, expected {expected} (one per row)"
            ),
            CoreError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            CoreError::Checkpoint(err) => write!(f, "checkpoint: {err}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Checkpoint(err) => Some(err),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CoreError::OutcomeLengthMismatch {
            expected: 10,
            found: 7,
        };
        assert!(e.to_string().contains("7"));
        assert!(e.to_string().contains("10"));
        let e = CoreError::InvalidParameter {
            name: "min_support",
            message: "must be in (0, 1]".into(),
        };
        assert!(e.to_string().contains("min_support"));
    }
}
