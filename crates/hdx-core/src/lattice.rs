//! Interactive lattice navigation over mined subgroups.
//!
//! §V of the paper: the exploration "enables users to explore the lattice of
//! frequent itemsets, identifying data subgroups with anomalous behavior".
//! [`Lattice`] indexes a [`DivergenceReport`] by itemset and materialises the
//! Hasse diagram (parent = immediate sub-itemset), supporting drill-down /
//! roll-up navigation and steepest-divergence paths.

use std::collections::HashMap;

use hdx_items::Itemset;

use crate::report::{DivergenceReport, SubgroupRecord};

/// A navigable view of the mined subgroup lattice.
pub struct Lattice<'a> {
    report: &'a DivergenceReport,
    index: HashMap<&'a Itemset, usize>,
    /// `children[i]` = records one item *more* specific than record `i`.
    children: Vec<Vec<usize>>,
    /// `parents[i]` = records one item *less* specific than record `i`.
    parents: Vec<Vec<usize>>,
    /// Records of length 1 (the children of the empty root).
    roots: Vec<usize>,
}

impl<'a> Lattice<'a> {
    /// Indexes a report (O(Σ pattern length) construction).
    pub fn new(report: &'a DivergenceReport) -> Self {
        let index: HashMap<&'a Itemset, usize> = report
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| (&r.itemset, i))
            .collect();
        let n = report.records.len();
        let mut children = vec![Vec::new(); n];
        let mut parents = vec![Vec::new(); n];
        let mut roots = Vec::new();
        for (i, record) in report.records.iter().enumerate() {
            if record.itemset.len() == 1 {
                roots.push(i);
            }
            for sub in record.itemset.sub_itemsets() {
                if let Some(&p) = index.get(&sub) {
                    parents[i].push(p);
                    children[p].push(i);
                }
            }
        }
        Self {
            report,
            index,
            children,
            parents,
            roots,
        }
    }

    /// The record of an itemset, if it was mined.
    pub fn record(&self, itemset: &Itemset) -> Option<&'a SubgroupRecord> {
        self.index.get(itemset).map(|&i| &self.report.records[i])
    }

    /// One-item-more-specific mined refinements of `itemset`
    /// (drill-down candidates). For the empty itemset, the length-1 records.
    pub fn children(&self, itemset: &Itemset) -> Vec<&'a SubgroupRecord> {
        if itemset.is_empty() {
            return self
                .roots
                .iter()
                .map(|&i| &self.report.records[i])
                .collect();
        }
        self.index.get(itemset).map_or_else(Vec::new, |&i| {
            self.children[i]
                .iter()
                .map(|&c| &self.report.records[c])
                .collect()
        })
    }

    /// One-item-less-specific generalisations (roll-up candidates).
    pub fn parents(&self, itemset: &Itemset) -> Vec<&'a SubgroupRecord> {
        self.index.get(itemset).map_or_else(Vec::new, |&i| {
            self.parents[i]
                .iter()
                .map(|&p| &self.report.records[p])
                .collect()
        })
    }

    /// The divergence change when drilling from `from` to `to` (which must
    /// be a mined superset of `from`).
    pub fn gain(&self, from: &Itemset, to: &Itemset) -> Option<f64> {
        if !to.is_superset_of(from) {
            return None;
        }
        let from_div = if from.is_empty() {
            0.0
        } else {
            self.record(from)?.divergence?
        };
        Some(self.record(to)?.divergence? - from_div)
    }

    /// Greedy steepest-ascent drill-down from the whole dataset: at each
    /// step move to the child with the highest divergence, while it
    /// increases. Returns the path (excluding the empty root).
    pub fn steepest_path(&self) -> Vec<&'a SubgroupRecord> {
        let mut path = Vec::new();
        let mut current = Itemset::empty();
        let mut current_div = 0.0;
        loop {
            let next = self
                .children(&current)
                .into_iter()
                .filter_map(|r| r.divergence.map(|d| (r, d)))
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite divergences"));
            match next {
                Some((r, d)) if d > current_div => {
                    path.push(r);
                    current = r.itemset.clone();
                    current_div = d;
                }
                _ => return path,
            }
        }
    }

    /// DivExplorer-style *corner* significance of a subgroup: the minimum
    /// |Welch t| between the subgroup's statistic and each of its immediate
    /// generalisations' (the whole dataset, for singletons). A high corner t
    /// means the **last refinement step itself** is significant; a low one
    /// means the divergence is inherited from a parent pattern.
    ///
    /// (As in DivExplorer, the two samples overlap, so this is a heuristic
    /// outstanding-ness score rather than an exact test.)
    pub fn corner_t(&self, itemset: &Itemset) -> Option<f64> {
        let record = self.record(itemset)?;
        let parents = self.parents(itemset);
        let ts: Vec<f64> = if parents.is_empty() && itemset.len() == 1 {
            vec![record.accum.t_value(&self.report.global_accum).abs()]
        } else {
            parents
                .iter()
                .map(|p| record.accum.t_value(&p.accum).abs())
                .collect()
        };
        ts.into_iter()
            .min_by(|a, b| a.partial_cmp(b).expect("finite t"))
    }

    /// Number of indexed records.
    pub fn len(&self) -> usize {
        self.report.records.len()
    }

    /// Whether the lattice is empty.
    pub fn is_empty(&self) -> bool {
        self.report.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_items::ItemId;

    /// Report with itemsets {0}, {1}, {0,1}, {0,2}, {2} and prescribed
    /// divergences.
    fn report() -> DivergenceReport {
        let mk = |items: &[u32], div: f64| SubgroupRecord {
            itemset: Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect()),
            label: format!("{items:?}"),
            support: 0.5,
            statistic: Some(div),
            divergence: Some(div),
            t_value: 1.0,
            p_value: 0.5,
            accum: hdx_stats::StatAccum::new(),
        };
        DivergenceReport {
            records: vec![
                mk(&[0], 0.2),
                mk(&[1], 0.1),
                mk(&[2], -0.05),
                mk(&[0, 1], 0.5),
                mk(&[0, 2], 0.15),
            ],
            global_statistic: Some(0.0),
            n_rows: 100,
            ..DivergenceReport::empty()
        }
    }

    fn set(items: &[u32]) -> Itemset {
        Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect())
    }

    #[test]
    fn children_and_parents() {
        let r = report();
        let lattice = Lattice::new(&r);
        assert_eq!(lattice.len(), 5);
        // Root children = singletons.
        let roots = lattice.children(&Itemset::empty());
        assert_eq!(roots.len(), 3);
        // {0}'s children: {0,1} and {0,2}.
        let kids = lattice.children(&set(&[0]));
        let labels: Vec<&str> = kids.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(kids.len(), 2);
        assert!(labels.contains(&"[0, 1]") && labels.contains(&"[0, 2]"));
        // {0,1}'s parents: {0} and {1}.
        let parents = lattice.parents(&set(&[0, 1]));
        assert_eq!(parents.len(), 2);
        // Unknown itemset: no neighbours.
        assert!(lattice.children(&set(&[9])).is_empty());
        assert!(lattice.parents(&set(&[9])).is_empty());
    }

    #[test]
    fn gain_along_edges() {
        let r = report();
        let lattice = Lattice::new(&r);
        let g = lattice.gain(&set(&[0]), &set(&[0, 1])).unwrap();
        assert!((g - 0.3).abs() < 1e-12);
        let from_root = lattice.gain(&Itemset::empty(), &set(&[0])).unwrap();
        assert!((from_root - 0.2).abs() < 1e-12);
        // Not a superset → None.
        assert!(lattice.gain(&set(&[1]), &set(&[0, 2])).is_none());
        // Unmined target → None.
        assert!(lattice.gain(&set(&[0]), &set(&[0, 9])).is_none());
    }

    #[test]
    fn steepest_path_climbs_to_local_max() {
        let r = report();
        let lattice = Lattice::new(&r);
        let path = lattice.steepest_path();
        let labels: Vec<&str> = path.iter().map(|r| r.label.as_str()).collect();
        // ∅ → {0} (0.2, best singleton) → {0,1} (0.5) → stop.
        assert_eq!(labels, ["[0]", "[0, 1]"]);
    }

    #[test]
    fn corner_t_flags_inherited_divergence() {
        use hdx_stats::{Outcome, StatAccum};
        // {0}: strong divergence; {0,1}: same statistic as {0} (inherited);
        // {0,2}: much stronger than {0} (a true corner).
        let acc = |n_pos: usize, n_neg: usize| {
            let mut a = StatAccum::new();
            for _ in 0..n_pos {
                a.push(Outcome::Bool(true));
            }
            for _ in 0..n_neg {
                a.push(Outcome::Bool(false));
            }
            a
        };
        let mk = |items: &[u32], accum: StatAccum| SubgroupRecord {
            itemset: Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect()),
            label: format!("{items:?}"),
            support: 0.5,
            statistic: accum.statistic(),
            divergence: accum.statistic(),
            t_value: 1.0,
            p_value: 0.5,
            accum,
        };
        let report = DivergenceReport {
            records: vec![
                mk(&[0], acc(50, 50)),
                mk(&[1], acc(10, 90)),
                mk(&[2], acc(10, 90)),
                mk(&[0, 1], acc(25, 25)), // same rate as {0} → inherited
                mk(&[0, 2], acc(40, 2)),  // much higher → corner
            ],
            global_statistic: Some(0.1),
            n_rows: 1000,
            global_accum: acc(100, 900),
            ..DivergenceReport::empty()
        };
        let lattice = Lattice::new(&report);
        let inherited = lattice.corner_t(&set(&[0, 1])).unwrap();
        let corner = lattice.corner_t(&set(&[0, 2])).unwrap();
        assert!(inherited < 1.0, "inherited refinement t = {inherited}");
        assert!(corner > 3.0, "true corner t = {corner}");
        // Singleton corners compare against the whole dataset.
        let single = lattice.corner_t(&set(&[0])).unwrap();
        assert!(single > 3.0, "0.5 vs 0.1 rate: t = {single}");
        // Unknown itemset → None.
        assert!(lattice.corner_t(&set(&[9])).is_none());
    }

    #[test]
    fn empty_report_lattice() {
        let r = DivergenceReport::empty();
        let lattice = Lattice::new(&r);
        assert!(lattice.is_empty());
        assert!(lattice.steepest_path().is_empty());
        assert!(lattice.children(&Itemset::empty()).is_empty());
    }
}
