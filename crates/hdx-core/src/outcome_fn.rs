//! Outcome functions (§III-B): from model predictions to per-instance
//! outcomes.
//!
//! A statistic `f` is defined through an outcome function `o : D → ℝ ∪ {⊥}`;
//! the statistic over a subgroup is the mean of the defined outcomes. For
//! classification statistics, the outcome is boolean:
//!
//! | statistic | `T` | `F` | `⊥` |
//! |---|---|---|---|
//! | FPR | false positive | true negative | actual positives |
//! | FNR | false negative | true positive | actual negatives |
//! | TPR | true positive | false negative | actual negatives |
//! | TNR | true negative | false positive | actual positives |
//! | error rate | misclassified | correct | — |
//! | accuracy | correct | misclassified | — |
//! | positive rate | predicted + | predicted − | — |
//!
//! (The paper's §V-A prose describes FPR as "`F` for true-positives, `⊥` for
//! every negative instance"; that sentence transposes the classes — the FPR
//! denominator is the *actual-negative* instances, as in the DivExplorer
//! reference implementation — so we use the standard definition above.)

use hdx_stats::Outcome;

/// A named outcome function over classification results (or a raw value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutcomeFn {
    /// False-positive rate: `P(pred=1 | true=0)`.
    Fpr,
    /// False-negative rate: `P(pred=0 | true=1)`.
    Fnr,
    /// True-positive rate (recall): `P(pred=1 | true=1)`.
    Tpr,
    /// True-negative rate: `P(pred=0 | true=0)`.
    Tnr,
    /// Error rate: `P(pred ≠ true)`.
    ErrorRate,
    /// Accuracy: `P(pred = true)`.
    Accuracy,
    /// Positive prediction rate: `P(pred=1)` (demographic parity style).
    PositiveRate,
}

impl OutcomeFn {
    /// Computes the outcome of one instance.
    #[inline]
    pub fn outcome(self, y_true: bool, y_pred: bool) -> Outcome {
        match self {
            OutcomeFn::Fpr => match (y_true, y_pred) {
                (false, true) => Outcome::Bool(true),   // FP
                (false, false) => Outcome::Bool(false), // TN
                (true, _) => Outcome::Undefined,
            },
            OutcomeFn::Fnr => match (y_true, y_pred) {
                (true, false) => Outcome::Bool(true), // FN
                (true, true) => Outcome::Bool(false), // TP
                (false, _) => Outcome::Undefined,
            },
            OutcomeFn::Tpr => match (y_true, y_pred) {
                (true, true) => Outcome::Bool(true),
                (true, false) => Outcome::Bool(false),
                (false, _) => Outcome::Undefined,
            },
            OutcomeFn::Tnr => match (y_true, y_pred) {
                (false, false) => Outcome::Bool(true),
                (false, true) => Outcome::Bool(false),
                (true, _) => Outcome::Undefined,
            },
            OutcomeFn::ErrorRate => Outcome::Bool(y_true != y_pred),
            OutcomeFn::Accuracy => Outcome::Bool(y_true == y_pred),
            OutcomeFn::PositiveRate => Outcome::Bool(y_pred),
        }
    }

    /// Computes outcomes for parallel label/prediction slices.
    ///
    /// # Panics
    /// Panics when the slices differ in length.
    pub fn compute(self, y_true: &[bool], y_pred: &[bool]) -> Vec<Outcome> {
        assert_eq!(
            y_true.len(),
            y_pred.len(),
            "labels and predictions must be parallel"
        );
        y_true
            .iter()
            .zip(y_pred)
            .map(|(&t, &p)| self.outcome(t, p))
            .collect()
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            OutcomeFn::Fpr => "FPR",
            OutcomeFn::Fnr => "FNR",
            OutcomeFn::Tpr => "TPR",
            OutcomeFn::Tnr => "TNR",
            OutcomeFn::ErrorRate => "error",
            OutcomeFn::Accuracy => "accuracy",
            OutcomeFn::PositiveRate => "positive-rate",
        }
    }
}

/// Outcomes for ranking tasks (the "rates related to rankings" of §III-B,
/// ref. 24): whether an instance is exposed in the top-`k` of a ranking.
/// `None` ranks (unranked instances) map to `⊥`.
///
/// The mean of these outcomes over a subgroup is its top-`k` exposure rate;
/// its divergence reveals subgroups systematically under- or over-exposed.
///
/// # Panics
/// Panics when `k == 0` or a rank of 0 appears (ranks are 1-based).
pub fn topk_exposure_outcomes(ranks: &[Option<u32>], k: u32) -> Vec<Outcome> {
    assert!(k > 0, "top-k requires k >= 1");
    ranks
        .iter()
        .map(|r| match r {
            Some(0) => panic!("ranks are 1-based"),
            Some(rank) => Outcome::Bool(*rank <= k),
            None => Outcome::Undefined,
        })
        .collect()
}

/// Discounted-exposure outcomes for ranking tasks: each ranked instance
/// contributes `1 / log₂(1 + rank)` (the standard position-bias discount),
/// unranked instances are `⊥`. Divergence of the mean reveals subgroups
/// pushed towards the bottom of rankings.
///
/// # Panics
/// Panics when a rank of 0 appears (ranks are 1-based).
pub fn discounted_exposure_outcomes(ranks: &[Option<u32>]) -> Vec<Outcome> {
    ranks
        .iter()
        .map(|r| match r {
            Some(0) => panic!("ranks are 1-based"),
            Some(rank) => Outcome::Real(1.0 / f64::from(rank + 1).log2()),
            None => Outcome::Undefined,
        })
        .collect()
}

/// Outcomes from a real-valued quantity (e.g. income); `NaN` maps to `⊥`.
pub fn real_outcomes(values: &[f64]) -> Vec<Outcome> {
    values
        .iter()
        .map(|&v| {
            if v.is_nan() {
                Outcome::Undefined
            } else {
                Outcome::Real(v)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_stats::StatAccum;

    /// Confusion-matrix fixture: 2 TP, 3 FP, 4 TN, 1 FN.
    fn fixture() -> (Vec<bool>, Vec<bool>) {
        let mut y_true = Vec::new();
        let mut y_pred = Vec::new();
        for _ in 0..2 {
            y_true.push(true);
            y_pred.push(true);
        }
        for _ in 0..3 {
            y_true.push(false);
            y_pred.push(true);
        }
        for _ in 0..4 {
            y_true.push(false);
            y_pred.push(false);
        }
        y_true.push(true);
        y_pred.push(false);
        (y_true, y_pred)
    }

    fn rate(f: OutcomeFn) -> f64 {
        let (yt, yp) = fixture();
        StatAccum::from_outcomes(&f.compute(&yt, &yp))
            .statistic()
            .unwrap()
    }

    #[test]
    fn rates_match_confusion_matrix() {
        assert!((rate(OutcomeFn::Fpr) - 3.0 / 7.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::Tnr) - 4.0 / 7.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::Fnr) - 1.0 / 3.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::Tpr) - 2.0 / 3.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::ErrorRate) - 4.0 / 10.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::Accuracy) - 6.0 / 10.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::PositiveRate) - 5.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn complementary_pairs() {
        assert!((rate(OutcomeFn::Fpr) + rate(OutcomeFn::Tnr) - 1.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::Fnr) + rate(OutcomeFn::Tpr) - 1.0).abs() < 1e-12);
        assert!((rate(OutcomeFn::ErrorRate) + rate(OutcomeFn::Accuracy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fpr_undefined_on_positives() {
        assert_eq!(OutcomeFn::Fpr.outcome(true, true), Outcome::Undefined);
        assert_eq!(OutcomeFn::Fpr.outcome(true, false), Outcome::Undefined);
        assert_eq!(OutcomeFn::Fpr.outcome(false, true), Outcome::Bool(true));
        assert_eq!(OutcomeFn::Fpr.outcome(false, false), Outcome::Bool(false));
    }

    #[test]
    #[should_panic(expected = "parallel")]
    fn length_mismatch_panics() {
        let _ = OutcomeFn::Fpr.compute(&[true], &[]);
    }

    #[test]
    fn real_outcomes_map_nan() {
        let o = real_outcomes(&[1.5, f64::NAN, -2.0]);
        assert_eq!(o[0], Outcome::Real(1.5));
        assert_eq!(o[1], Outcome::Undefined);
        assert_eq!(o[2], Outcome::Real(-2.0));
    }

    #[test]
    fn topk_exposure() {
        let ranks = [Some(1), Some(3), Some(10), None];
        let o = topk_exposure_outcomes(&ranks, 3);
        assert_eq!(o[0], Outcome::Bool(true));
        assert_eq!(o[1], Outcome::Bool(true));
        assert_eq!(o[2], Outcome::Bool(false));
        assert_eq!(o[3], Outcome::Undefined);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rank_rejected() {
        let _ = topk_exposure_outcomes(&[Some(0)], 3);
    }

    #[test]
    fn discounted_exposure_decays() {
        let o = discounted_exposure_outcomes(&[Some(1), Some(3), None]);
        // rank 1 → 1/log2(2) = 1; rank 3 → 1/log2(4) = 0.5.
        assert_eq!(o[0], Outcome::Real(1.0));
        assert_eq!(o[1], Outcome::Real(0.5));
        assert_eq!(o[2], Outcome::Undefined);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(OutcomeFn::Fpr.name(), "FPR");
        assert_eq!(OutcomeFn::ErrorRate.name(), "error");
    }
}
