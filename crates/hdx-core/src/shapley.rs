//! Shapley-value attribution of divergence to individual items.
//!
//! H-DivExplorer extends DivExplorer (ref. 5), whose analysis toolkit
//! attributes a subgroup's divergence to the items composing it: the
//! contribution of item `α` in itemset `I` is its Shapley value over the
//! coalition game whose value function is the divergence of each
//! sub-itemset,
//!
//! ```text
//! c_α(I) = Σ_{S ⊆ I∖{α}}  |S|!·(|I|−|S|−1)! / |I|!  ·  (Δ(S ∪ {α}) − Δ(S))
//! ```
//!
//! with `Δ(∅) = 0`. Because support is anti-monotone, every subset of a
//! frequent itemset was mined, so all the required divergences are already
//! in the report — no extra data passes needed.

use std::collections::HashMap;

use hdx_items::{ItemId, Itemset};

use crate::report::DivergenceReport;

/// Divergence lookup over a report's records (`Δ(∅) = 0`; records whose
/// divergence is undefined count as 0).
fn divergence_index(report: &DivergenceReport) -> HashMap<&Itemset, f64> {
    report
        .records
        .iter()
        .map(|r| (&r.itemset, r.divergence.unwrap_or(0.0)))
        .collect()
}

fn factorial(n: usize) -> f64 {
    (1..=n).map(|i| i as f64).product()
}

/// Shapley contributions of each item of `itemset` to its divergence.
///
/// Returns `None` when some subset of `itemset` is missing from the report
/// (i.e. `itemset` was not produced by this exploration).
pub fn item_contributions(
    report: &DivergenceReport,
    itemset: &Itemset,
) -> Option<Vec<(ItemId, f64)>> {
    let index = divergence_index(report);
    let items = itemset.items();
    let k = items.len();
    if k == 0 {
        return Some(Vec::new());
    }
    let lookup = |subset: &Itemset| -> Option<f64> {
        if subset.is_empty() {
            Some(0.0)
        } else {
            index.get(subset).copied()
        }
    };
    let k_fact = factorial(k);

    let mut out = Vec::with_capacity(k);
    for (pos, &alpha) in items.iter().enumerate() {
        let others: Vec<ItemId> = items
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, &id)| id)
            .collect();
        let mut contribution = 0.0;
        // Enumerate S ⊆ others by bitmask (itemsets are short).
        for mask in 0u32..(1 << others.len()) {
            let mut subset: Vec<ItemId> = Vec::with_capacity(others.len() + 1);
            for (bit, &item) in others.iter().enumerate() {
                if mask >> bit & 1 == 1 {
                    subset.push(item);
                }
            }
            let s_len = subset.len();
            let without = Itemset::from_sorted_unchecked({
                let mut v = subset.clone();
                v.sort_unstable();
                v
            });
            let with = Itemset::from_sorted_unchecked({
                let mut v = subset;
                v.push(alpha);
                v.sort_unstable();
                v
            });
            let weight = factorial(s_len) * factorial(k - s_len - 1) / k_fact;
            contribution += weight * (lookup(&with)? - lookup(&without)?);
        }
        out.push((alpha, contribution));
    }
    Some(out)
}

/// The *global* contribution of every item: its mean Shapley contribution
/// across all mined itemsets containing it (DivExplorer's global item
/// ranking). Returns pairs sorted by descending contribution.
pub fn global_item_contributions(report: &DivergenceReport) -> Vec<(ItemId, f64)> {
    let mut sums: HashMap<ItemId, (f64, usize)> = HashMap::new();
    for record in &report.records {
        let Some(contribs) = item_contributions(report, &record.itemset) else {
            continue;
        };
        for (item, c) in contribs {
            let entry = sums.entry(item).or_insert((0.0, 0));
            entry.0 += c;
            entry.1 += 1;
        }
    }
    let mut out: Vec<(ItemId, f64)> = sums
        .into_iter()
        .map(|(item, (sum, n))| (item, sum / n as f64))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite contributions"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::SubgroupRecord;
    use hdx_items::Itemset;

    /// Builds a report with prescribed divergences per itemset.
    fn report(entries: &[(&[u32], f64)]) -> DivergenceReport {
        let records = entries
            .iter()
            .map(|(items, div)| {
                let itemset =
                    Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect());
                SubgroupRecord {
                    label: format!("{items:?}"),
                    itemset,
                    support: 0.5,
                    statistic: Some(*div),
                    divergence: Some(*div),
                    t_value: 1.0,
                    p_value: 0.5,
                    accum: hdx_stats::StatAccum::new(),
                }
            })
            .collect();
        DivergenceReport {
            records,
            global_statistic: Some(0.0),
            n_rows: 100,
            ..DivergenceReport::empty()
        }
    }

    #[test]
    fn efficiency_contributions_sum_to_divergence() {
        let r = report(&[
            (&[0], 0.10),
            (&[1], 0.20),
            (&[2], -0.05),
            (&[0, 1], 0.50),
            (&[0, 2], 0.08),
            (&[1, 2], 0.12),
            (&[0, 1, 2], 0.60),
        ]);
        let target = Itemset::from_sorted_unchecked(vec![ItemId(0), ItemId(1), ItemId(2)]);
        let contribs = item_contributions(&r, &target).unwrap();
        let total: f64 = contribs.iter().map(|(_, c)| c).sum();
        assert!((total - 0.60).abs() < 1e-12, "Shapley efficiency");
        assert_eq!(contribs.len(), 3);
    }

    #[test]
    fn symmetric_items_get_equal_contributions() {
        // Items 0 and 1 are exchangeable in the value function.
        let r = report(&[(&[0], 0.1), (&[1], 0.1), (&[0, 1], 0.4)]);
        let target = Itemset::from_sorted_unchecked(vec![ItemId(0), ItemId(1)]);
        let contribs = item_contributions(&r, &target).unwrap();
        assert!((contribs[0].1 - contribs[1].1).abs() < 1e-12);
        assert!((contribs[0].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dummy_item_gets_zero() {
        // Item 2 never changes the divergence.
        let r = report(&[(&[0], 0.3), (&[2], 0.0), (&[0, 2], 0.3)]);
        let target = Itemset::from_sorted_unchecked(vec![ItemId(0), ItemId(2)]);
        let contribs = item_contributions(&r, &target).unwrap();
        let c2 = contribs.iter().find(|(i, _)| *i == ItemId(2)).unwrap().1;
        assert!(c2.abs() < 1e-12);
        let c0 = contribs.iter().find(|(i, _)| *i == ItemId(0)).unwrap().1;
        assert!((c0 - 0.3).abs() < 1e-12);
    }

    #[test]
    fn singleton_contribution_is_its_divergence() {
        let r = report(&[(&[7], 0.25)]);
        let target = Itemset::singleton(ItemId(7));
        let contribs = item_contributions(&r, &target).unwrap();
        assert_eq!(contribs.len(), 1);
        assert!((contribs[0].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn missing_subset_yields_none() {
        // {0,1} present but {1} missing → cannot attribute.
        let r = report(&[(&[0], 0.1), (&[0, 1], 0.4)]);
        let target = Itemset::from_sorted_unchecked(vec![ItemId(0), ItemId(1)]);
        assert!(item_contributions(&r, &target).is_none());
    }

    #[test]
    fn empty_itemset_has_no_contributions() {
        let r = report(&[(&[0], 0.1)]);
        assert_eq!(item_contributions(&r, &Itemset::empty()), Some(Vec::new()));
    }

    #[test]
    fn global_ranking_orders_by_mean_contribution() {
        let r = report(&[(&[0], 0.30), (&[1], 0.05), (&[0, 1], 0.40)]);
        let global = global_item_contributions(&r);
        assert_eq!(global.len(), 2);
        assert_eq!(global[0].0, ItemId(0), "item 0 drives divergence");
        assert!(global[0].1 > global[1].1);
    }
}
