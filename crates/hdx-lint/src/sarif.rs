//! SARIF 2.1.0 output.
//!
//! Renders the violation list as a minimal-but-valid SARIF log so editors
//! and code-scanning services can ingest `cargo lint` results directly
//! (`cargo lint --format sarif`). Only the fields consumers actually read
//! are emitted: one run, the tool driver with its rule table, and one
//! result per violation with a physical location.
//!
//! The module also carries a tiny JSON reader ([`parse`]) used by the
//! self-test to round-trip the SARIF output and check it agrees 1:1 with
//! the JSON report — hand-rolled, like everything in this crate, because
//! the linter must build with zero dependencies.

use crate::rules::{Violation, RULES};

/// Short rule descriptions for the SARIF rule table, indexed as [`RULES`].
const RULE_DESCRIPTIONS: &[&str] = &[
    "No `.unwrap()`/`.expect()`/`panic!` in library crates outside tests",
    "No `==`/`!=` against floating-point literals",
    "Every public item in a library crate has a doc comment",
    "No `std::process::exit` outside hdx-cli",
    "Every `unsafe` has a `// SAFETY:` comment and an UNSAFE_LEDGER.md row",
    "Every `Ordering::Relaxed` has an `// ORDERING:` justification",
    "Hot-path functions (hotpaths.toml) do not allocate",
    "Panic-free kernel modules avoid unchecked indexing and panics",
    "Per-crate doc coverage stays at or above the doc_ratchet.toml floor",
];

/// Renders violations as a SARIF 2.1.0 log.
pub fn render(violations: &[Violation]) -> String {
    assert_eq!(RULES.len(), RULE_DESCRIPTIONS.len());
    let mut s = String::with_capacity(4096);
    s.push_str("{\n  \"version\": \"2.1.0\",\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"runs\": [\n    {\n      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"hdx-lint\",\n");
    s.push_str("          \"informationUri\": \"https://github.com/h-divexplorer\",\n");
    s.push_str("          \"rules\": [\n");
    for (k, (rule, desc)) in RULES.iter().zip(RULE_DESCRIPTIONS).enumerate() {
        s.push_str("            {\"id\": \"");
        s.push_str(rule);
        s.push_str("\", \"shortDescription\": {\"text\": \"");
        s.push_str(&escape(desc));
        s.push_str("\"}}");
        if k + 1 < RULES.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("          ]\n        }\n      },\n      \"results\": [\n");
    for (k, v) in violations.iter().enumerate() {
        s.push_str("        {\"ruleId\": \"");
        s.push_str(v.rule);
        s.push_str("\", \"level\": \"error\", \"message\": {\"text\": \"");
        s.push_str(&escape(&v.message));
        s.push_str("\"}, \"locations\": [{\"physicalLocation\": ");
        s.push_str("{\"artifactLocation\": {\"uri\": \"");
        s.push_str(&escape(&v.file));
        s.push_str("\"}, \"region\": {\"startLine\": ");
        s.push_str(&v.line.to_string());
        s.push_str("}}}]}");
        if k + 1 < violations.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("      ]\n    }\n  ]\n}\n");
    s
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value (self-test only).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset.
pub fn parse(text: &str) -> Result<Json, String> {
    let chars: Vec<char> = text.chars().collect();
    let mut pos = 0usize;
    let value = parse_value(&chars, &mut pos)?;
    skip_ws(&chars, &mut pos);
    if pos != chars.len() {
        return Err(format!("trailing content at {pos}"));
    }
    Ok(value)
}

fn skip_ws(chars: &[char], pos: &mut usize) {
    while *pos < chars.len() && chars[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn parse_value(chars: &[char], pos: &mut usize) -> Result<Json, String> {
    skip_ws(chars, pos);
    match chars.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(Json::Object(members));
            }
            loop {
                skip_ws(chars, pos);
                let key = parse_string(chars, pos)?;
                skip_ws(chars, pos);
                if chars.get(*pos) != Some(&':') {
                    return Err(format!("expected `:` at {pos}"));
                }
                *pos += 1;
                let value = parse_value(chars, pos)?;
                members.push((key, value));
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(Json::Object(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at {pos}")),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(chars, pos);
            if chars.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(chars, pos)?);
                skip_ws(chars, pos);
                match chars.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at {pos}")),
                }
            }
        }
        Some('"') => Ok(Json::Str(parse_string(chars, pos)?)),
        Some('t') => keyword(chars, pos, "true", Json::Bool(true)),
        Some('f') => keyword(chars, pos, "false", Json::Bool(false)),
        Some('n') => keyword(chars, pos, "null", Json::Null),
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            *pos += 1;
            while *pos < chars.len()
                && matches!(chars[*pos], '0'..='9' | '.' | 'e' | 'E' | '+' | '-')
            {
                *pos += 1;
            }
            let text: String = chars[start..*pos].iter().collect();
            text.parse()
                .map(Json::Num)
                .map_err(|_| format!("bad number `{text}` at {start}"))
        }
        _ => Err(format!("unexpected character at {pos}")),
    }
}

fn keyword(chars: &[char], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    let end = *pos + word.len();
    if end <= chars.len() && chars[*pos..end].iter().collect::<String>() == word {
        *pos = end;
        Ok(value)
    } else {
        Err(format!("bad keyword at {pos}"))
    }
}

fn parse_string(chars: &[char], pos: &mut usize) -> Result<String, String> {
    if chars.get(*pos) != Some(&'"') {
        return Err(format!("expected string at {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = chars.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = chars.get(*pos).copied().ok_or("eof in escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex: String = chars
                            .get(*pos..*pos + 4)
                            .ok_or("eof in \\u escape")?
                            .iter()
                            .collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{other}`")),
                }
            }
            c => out.push(c),
        }
    }
    Err("eof in string".to_string())
}
