//! `hdx-lint`: workspace static-analysis pass for the H-DivExplorer repo.
//!
//! Enforces the project's reliability rules over every workspace crate
//! (see `crates/hdx-lint/README.md` and the "Static analysis" section of
//! `DESIGN.md` §13). Three tiers:
//!
//! **Lexical rules** (token stream, [`rules`]):
//!
//! 1. `no-unwrap`   — no `.unwrap()` / `.expect()` / `panic!` in library
//!    crates outside `#[cfg(test)]`.
//! 2. `no-float-eq` — no `==` / `!=` against float literals; comparisons go
//!    through `hdx_stats::approx`.
//! 3. `missing-docs` — all `pub` items in library crates are documented.
//! 4. `no-exit`     — no `std::process::exit` outside `hdx-cli`.
//!
//! **Semantic rules** (item tree + comment side-channel + manifests,
//! [`semantic`]):
//!
//! 5. `unsafe-audit`      — `// SAFETY:` comment + `UNSAFE_LEDGER.md` row
//!    for every `unsafe`.
//! 6. `atomics-ordering`  — `// ORDERING:` justification for every
//!    `Ordering::Relaxed`.
//! 7. `no-alloc-hot-path` — functions in `crates/hdx-lint/hotpaths.toml`
//!    do not allocate.
//! 8. `no-panic-path`     — `panic_free` files avoid unchecked indexing
//!    and panicking calls.
//! 9. `doc-coverage`      — per-crate coverage floors from
//!    `crates/hdx-lint/doc_ratchet.toml`.
//!
//! **Dynamic harness** (`cargo xtask sanitize`, [`sanitize`]): loom
//! interleaving models, Miri, ThreadSanitizer.
//!
//! Violations not covered by `crates/hdx-lint/allowlist.txt` fail the run
//! (exit code 1). `--format json|sarif` / `--output <path>` emit
//! machine-readable reports for CI and editors.
//!
//! Usage: `cargo lint` / `cargo xtask lint` / `cargo xtask sanitize` /
//! `cargo run -p hdx-lint --` with optional flags
//! `[--format text|json|sarif] [--output <path>] [--allowlist <path>]
//! [--root <dir>] [--strict] [--self-test]`.

mod ast;
mod lexer;
mod manifest;
mod rules;
mod sanitize;
mod sarif;
mod selftest;
mod semantic;

use rules::Violation;
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Library crates subject to rules 1–3. Binary/tooling crates (`hdx-cli`,
/// `hdx-bench`, `hdx-lint` itself) and the facade crate are exempt from
/// those but still checked for rule 4 and all semantic rules.
const LIB_CRATES: &[&str] = &[
    "hdx-core",
    "hdx-checkpoint",
    "hdx-obs",
    "hdx-governor",
    "hdx-mining",
    "hdx-items",
    "hdx-stats",
    "hdx-discretize",
    "hdx-data",
    "hdx-serve",
    "hdx-ingest",
];

/// One allowlist entry: `rule path [max=N]`.
#[derive(Debug)]
struct AllowEntry {
    rule: String,
    path: String,
    /// `None` allows any count in the file; `Some(n)` caps it (a ratchet:
    /// lower the cap as violations are burned down).
    max: Option<usize>,
    used: bool,
}

/// Output format for the violation report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

#[derive(Debug)]
struct Options {
    format: Format,
    output: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    root: Option<PathBuf>,
    self_test: bool,
    sanitize: bool,
    strict: bool,
}

/// The loaded manifests driving the semantic rules.
pub(crate) struct Manifests {
    pub(crate) hotpaths: manifest::Hotpaths,
    pub(crate) ledger: manifest::UnsafeLedger,
    pub(crate) ratchet: manifest::DocRatchet,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("hdx-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.self_test {
        return selftest::run();
    }

    let root = match workspace_root(opts.root.as_deref()) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("hdx-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if opts.sanitize {
        return ExitCode::from(sanitize::run(&root, opts.strict) as u8);
    }

    let allowlist_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| root.join("crates/hdx-lint/allowlist.txt"));
    let mut allowlist = match load_allowlist(&allowlist_path) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("hdx-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let manifests = match load_manifests(&root) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("hdx-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let files = collect_sources(&root);
    let mut violations = Vec::new();
    let mut doc_counts: BTreeMap<String, semantic::DocCounts> = BTreeMap::new();
    for file in &files {
        let Ok(src) = fs::read_to_string(file) else {
            eprintln!("hdx-lint: warning: cannot read {}", file.display());
            continue;
        };
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        check_file(&rel, &src, &manifests, &mut doc_counts, &mut violations);
    }
    semantic::rule_doc_coverage(
        &doc_counts,
        &manifests.ratchet,
        "crates/hdx-lint/doc_ratchet.toml",
        &mut violations,
    );

    let (reported, allowlisted) = apply_allowlist(violations, &mut allowlist);

    let report = match opts.format {
        Format::Sarif => sarif::render(&reported),
        _ => render_report(&reported, allowlisted, files.len(), allowlist.len()),
    };
    if let Some(path) = &opts.output {
        if let Err(e) = fs::write(path, &report) {
            eprintln!("hdx-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    match opts.format {
        Format::Json | Format::Sarif => println!("{report}"),
        Format::Text => print_text(&reported, allowlisted, files.len(), &allowlist),
    }

    if reported.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        format: Format::Text,
        output: None,
        allowlist: None,
        root: None,
        self_test: false,
        sanitize: false,
        strict: false,
    };
    let mut args = std::env::args().skip(1).peekable();
    // Accept a leading subcommand: `lint` (the default, so `cargo xtask
    // lint` works) or `sanitize` (the dynamic harness, `cargo xtask
    // sanitize`).
    match args.peek().map(String::as_str) {
        Some("lint") => {
            args.next();
        }
        Some("sanitize") => {
            opts.sanitize = true;
            args.next();
        }
        _ => {}
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                let v = args.next().ok_or("--format requires a value")?;
                opts.format = match v.as_str() {
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    "text" => Format::Text,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--output" => {
                opts.output = Some(PathBuf::from(
                    args.next().ok_or("--output requires a path")?,
                ));
            }
            "--allowlist" => {
                opts.allowlist = Some(PathBuf::from(
                    args.next().ok_or("--allowlist requires a path")?,
                ));
            }
            "--root" => {
                opts.root = Some(PathBuf::from(args.next().ok_or("--root requires a path")?));
            }
            "--strict" => opts.strict = true,
            "--self-test" => opts.self_test = true,
            "--help" | "-h" => {
                return Err(
                    "usage: hdx-lint [lint|sanitize] [--format text|json|sarif] \
                     [--output <path>] [--allowlist <path>] [--root <dir>] \
                     [--strict] [--self-test]"
                        .to_string(),
                );
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Loads the three semantic-rule manifests relative to the workspace root.
fn load_manifests(root: &Path) -> Result<Manifests, String> {
    Ok(Manifests {
        hotpaths: manifest::load_hotpaths(&root.join("crates/hdx-lint/hotpaths.toml"))?,
        ledger: manifest::load_unsafe_ledger(&root.join("UNSAFE_LEDGER.md"))?,
        ratchet: manifest::load_doc_ratchet(&root.join("crates/hdx-lint/doc_ratchet.toml"))?,
    })
}

/// Locates the workspace root: an explicit `--root`, else the grandparent of
/// this crate's manifest dir (compiled in), else the current directory —
/// whichever contains a `Cargo.toml` with a `[workspace]` table.
fn workspace_root(explicit: Option<&Path>) -> Result<PathBuf, String> {
    let mut candidates: Vec<PathBuf> = Vec::new();
    if let Some(p) = explicit {
        candidates.push(p.to_path_buf());
    }
    let manifest_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(p) = manifest_dir.parent().and_then(Path::parent) {
        candidates.push(p.to_path_buf());
    }
    if let Ok(cwd) = std::env::current_dir() {
        let mut dir = Some(cwd);
        while let Some(d) = dir {
            candidates.push(d.clone());
            dir = d.parent().map(Path::to_path_buf);
        }
    }
    for c in candidates {
        let manifest = c.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(c);
            }
        }
    }
    Err("cannot locate workspace root (pass --root)".to_string())
}

/// All `.rs` files under `crates/*/src` and the facade `src/`, sorted.
fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if let Ok(entries) = fs::read_dir(&crates_dir) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                walk_rs(&src, &mut files);
            }
        }
    }
    let facade = root.join("src");
    if facade.is_dir() {
        walk_rs(&facade, &mut files);
    }
    files.sort();
    files
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// The crate a workspace-relative path belongs to (`crates/<name>/...`),
/// or `"."` for the facade crate.
fn crate_of(rel: &str) -> &str {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(".")
}

/// Runs every applicable rule over one file. Doc-coverage is only tallied
/// here (per crate); the ratchet comparison happens once after all files.
pub(crate) fn check_file(
    rel: &str,
    src: &str,
    manifests: &Manifests,
    doc_counts: &mut BTreeMap<String, semantic::DocCounts>,
    out: &mut Vec<Violation>,
) {
    let krate = crate_of(rel);
    let is_lib = LIB_CRATES.contains(&krate);
    let exit_exempt = krate == "hdx-cli";

    let (toks, comments) = lexer::lex_with_comments(src);
    let mask = rules::test_mask(&toks);

    // Lexical rules.
    if is_lib {
        rules::rule_no_unwrap(&toks, &mask, rel, out);
        rules::rule_no_float_eq(&toks, &mask, rel, out);
        rules::rule_missing_docs(&toks, &mask, rel, out);
    }
    if !exit_exempt {
        rules::rule_no_exit(&toks, &mask, rel, out);
    }

    // Semantic rules (all crates, tooling included).
    let comment_index = semantic::CommentIndex::new(&comments);
    let tree = ast::parse(&toks);
    semantic::rule_unsafe_audit(&tree, &mask, &comment_index, &manifests.ledger, rel, out);
    semantic::rule_atomics_ordering(&toks, &mask, &comment_index, rel, out);
    if let Some(hotpath) = manifests.hotpaths.for_file(rel) {
        semantic::rule_no_alloc_hot_path(&toks, &tree, &mask, &comment_index, hotpath, rel, out);
        if hotpath.panic_free {
            semantic::rule_no_panic_path(&toks, &mask, &comment_index, rel, out);
        }
    }
    semantic::tally_doc_coverage(
        &toks,
        &mask,
        doc_counts.entry(krate.to_string()).or_default(),
    );
}

fn load_allowlist(path: &Path) -> Result<Vec<AllowEntry>, String> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
    };
    let mut entries = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(rule), Some(path)) = (parts.next(), parts.next()) else {
            return Err(format!(
                "allowlist line {}: expected `rule path [max=N]`",
                lineno + 1
            ));
        };
        if !rules::RULES.contains(&rule) {
            return Err(format!(
                "allowlist line {}: unknown rule `{rule}`",
                lineno + 1
            ));
        }
        let mut max = None;
        if let Some(extra) = parts.next() {
            let Some(n) = extra.strip_prefix("max=").and_then(|v| v.parse().ok()) else {
                return Err(format!(
                    "allowlist line {}: expected `max=N`, got `{extra}`",
                    lineno + 1
                ));
            };
            max = Some(n);
        }
        entries.push(AllowEntry {
            rule: rule.to_string(),
            path: path.to_string(),
            max,
            used: false,
        });
    }
    Ok(entries)
}

/// Splits violations into (reported, allowlisted-count). A `max=N` entry
/// suppresses up to `N` violations of its rule in its file; beyond the cap
/// *all* of them are reported (the ratchet tripped).
fn apply_allowlist(
    violations: Vec<Violation>,
    allowlist: &mut [AllowEntry],
) -> (Vec<Violation>, usize) {
    let mut grouped: BTreeMap<(String, String), Vec<Violation>> = BTreeMap::new();
    for v in violations {
        grouped
            .entry((v.rule.to_string(), v.file.clone()))
            .or_default()
            .push(v);
    }
    let mut reported = Vec::new();
    let mut allowed = 0usize;
    for ((rule, file), group) in grouped {
        let entry = allowlist
            .iter_mut()
            .find(|e| e.rule == rule && e.path == file);
        match entry {
            Some(e) => {
                e.used = true;
                match e.max {
                    Some(cap) if group.len() > cap => {
                        let found = group.len();
                        for mut v in group {
                            v.message = format!(
                                "{} [allowlist cap max={cap} exceeded: {found} in file]",
                                v.message
                            );
                            reported.push(v);
                        }
                    }
                    _ => allowed += group.len(),
                }
            }
            None => reported.extend(group),
        }
    }
    reported.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    (reported, allowed)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the machine-readable JSON report (hand-rolled: the linter is
/// deliberately dependency-free so it builds before the workspace does).
pub(crate) fn render_report(
    reported: &[Violation],
    allowlisted: usize,
    files_scanned: usize,
    allowlist_entries: usize,
) -> String {
    let mut out = String::from("{\n  \"tool\": \"hdx-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"allowlisted\": {allowlisted},\n"));
    out.push_str(&format!("  \"allowlist_entries\": {allowlist_entries},\n"));
    out.push_str(&format!("  \"ok\": {},\n", reported.is_empty()));
    out.push_str("  \"violations\": [");
    for (i, v) in reported.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            json_escape(v.rule),
            json_escape(&v.file),
            v.line,
            json_escape(&v.message)
        ));
    }
    if !reported.is_empty() {
        out.push('\n');
        out.push_str("  ");
    }
    out.push_str("]\n}\n");
    out
}

fn print_text(
    reported: &[Violation],
    allowlisted: usize,
    files_scanned: usize,
    allowlist: &[AllowEntry],
) {
    for v in reported {
        println!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message);
    }
    for e in allowlist.iter().filter(|e| !e.used) {
        println!(
            "note: unused allowlist entry `{} {}` (can be removed)",
            e.rule, e.path
        );
    }
    println!(
        "hdx-lint: {} file(s) scanned, {} violation(s), {} allowlisted",
        files_scanned,
        reported.len(),
        allowlisted
    );
}
