//! The lint rules.
//!
//! Every rule is a pure pass over the token stream of one file (see
//! [`crate::lexer`]), with a precomputed *test mask* excluding tokens that
//! belong to `#[cfg(test)]` items (or `#[test]` functions). Rules:
//!
//! * `no-unwrap` — no `.unwrap()`, `.expect(...)` or `panic!` in library
//!   crates outside test code.
//! * `no-float-eq` — no `==`/`!=` against a floating-point literal; use the
//!   epsilon helpers in `hdx_stats::approx`.
//! * `missing-docs` — every `pub` item in a library crate carries a doc
//!   comment (or `#[doc...]` attribute).
//! * `no-exit` — no `std::process::exit` outside `hdx-cli`.

use crate::lexer::{Tok, TokKind};

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Rule identifier (e.g. `no-unwrap`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

/// Rule identifiers, in reporting order. The first four are the lexical
/// rules; the rest are the semantic rules (see [`crate::semantic`]).
pub const RULES: &[&str] = &[
    "no-unwrap",
    "no-float-eq",
    "missing-docs",
    "no-exit",
    "unsafe-audit",
    "atomics-ordering",
    "no-alloc-hot-path",
    "no-panic-path",
    "doc-coverage",
];

/// Computes a mask marking tokens inside `#[cfg(test)]` / `#[test]` items.
///
/// When a test attribute is found, the attribute itself, any further
/// attributes/doc comments, and the following item (up to its closing brace
/// or terminating semicolon) are all masked. An *inner* test attribute
/// (`#![cfg(test)]`) masks the rest of its enclosing brace block — or the
/// rest of the file when it appears at the top level.
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth = depth.saturating_sub(1);
        }
        // Inner attribute `#![...]`: applies to the enclosing block/file.
        if toks[i].is_punct("#")
            && matches!(toks.get(i + 1), Some(t) if t.is_punct("!"))
            && matches!(toks.get(i + 2), Some(t) if t.is_punct("["))
        {
            let (attr_end, is_test) = scan_attribute(toks, i + 2);
            if is_test {
                // Mask from the attribute to the end of the enclosing block
                // (the token closing `depth`), or to EOF at the top level.
                let mut d = depth;
                let mut j = attr_end + 1;
                while j < toks.len() {
                    if toks[j].is_punct("{") {
                        d += 1;
                    } else if toks[j].is_punct("}") {
                        if d == depth && depth > 0 {
                            break;
                        }
                        d = d.saturating_sub(1);
                    }
                    j += 1;
                }
                for m in mask.iter_mut().take((j + 1).min(toks.len())).skip(i) {
                    *m = true;
                }
            }
            i = attr_end + 1;
            continue;
        }
        if !toks[i].is_punct("#") || !matches!(toks.get(i + 1), Some(t) if t.is_punct("[")) {
            i += 1;
            continue;
        }
        let attr_start = i;
        let (attr_end, is_test) = scan_attribute(toks, i + 1);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Mask this attribute, any trailing attributes / doc comments, and
        // then the item body.
        let mut j = attr_end + 1;
        loop {
            if matches!(toks.get(j), Some(t) if t.kind == TokKind::Doc) {
                j += 1;
            } else if matches!(toks.get(j), Some(t) if t.is_punct("#"))
                && matches!(toks.get(j + 1), Some(t) if t.is_punct("["))
            {
                let (end, _) = scan_attribute(toks, j + 1);
                j = end + 1;
            } else {
                break;
            }
        }
        // Item body: first balanced `{...}` block, or a `;` before any brace.
        let mut depth = 0usize;
        let mut seen_brace = false;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct("{") {
                depth += 1;
                seen_brace = true;
            } else if t.is_punct("}") {
                depth = depth.saturating_sub(1);
                if seen_brace && depth == 0 {
                    break;
                }
            } else if t.is_punct(";") && !seen_brace {
                break;
            }
            j += 1;
        }
        for m in mask
            .iter_mut()
            .take((j + 1).min(toks.len()))
            .skip(attr_start)
        {
            *m = true;
        }
        i = j + 1;
    }
    mask
}

/// Scans an attribute whose `[` is at `open`. Returns the index of the
/// matching `]` and whether the attribute marks test-only code
/// (`#[cfg(test)]`, `#[cfg(all(test, ...))]`, `#[test]`, ...).
///
/// A `test` predicate under a `not(...)` group does **not** count:
/// `#[cfg(not(test))]` is production-only code and must stay lintable.
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut first_ident: Option<&str> = None;
    // Parenthesis groups entered so far, each tagged with whether it is (or
    // sits inside) a `not(...)` group.
    let mut group_negated: Vec<bool> = Vec::new();
    let mut prev_ident_is_not = false;
    let mut j = open;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_punct("(") {
            let inherited = group_negated.last().copied().unwrap_or(false);
            group_negated.push(inherited || prev_ident_is_not);
            prev_ident_is_not = false;
        } else if t.is_punct(")") {
            group_negated.pop();
            prev_ident_is_not = false;
        } else if t.kind == TokKind::Ident {
            if first_ident.is_none() {
                first_ident = Some(&t.text);
            }
            if t.text == "test" && !group_negated.last().copied().unwrap_or(false) {
                has_test = true;
            }
            prev_ident_is_not = t.text == "not";
        } else {
            prev_ident_is_not = false;
        }
        j += 1;
    }
    let is_test = match first_ident {
        Some("cfg") => has_test,
        Some("test") => true,
        _ => false,
    };
    (j.min(toks.len().saturating_sub(1)), is_test)
}

/// `no-unwrap`: flags `.unwrap(`, `.expect(` and `panic!` outside tests.
pub fn rule_no_unwrap(toks: &[Tok], mask: &[bool], file: &str, out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || t.kind != TokKind::Ident {
            continue;
        }
        let prev_dot = i > 0 && toks[i - 1].is_punct(".");
        let next_paren = matches!(toks.get(i + 1), Some(n) if n.is_punct("("));
        match t.text.as_str() {
            "unwrap" | "expect" if prev_dot && next_paren => out.push(Violation {
                rule: "no-unwrap",
                file: file.to_string(),
                line: t.line,
                message: format!("`.{}(...)` in library crate (use a typed error)", t.text),
            }),
            "panic" if matches!(toks.get(i + 1), Some(n) if n.is_punct("!")) => {
                out.push(Violation {
                    rule: "no-unwrap",
                    file: file.to_string(),
                    line: t.line,
                    message: "`panic!` in library crate (use a typed error)".to_string(),
                });
            }
            _ => {}
        }
    }
}

/// `no-float-eq`: flags `==`/`!=` whose left or right operand is a
/// floating-point literal. `f64::INFINITY`-style constant comparisons are
/// intentionally not matched (exact unboundedness checks are sound).
pub fn rule_no_float_eq(toks: &[Tok], mask: &[bool], file: &str, out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !(t.is_punct("==") || t.is_punct("!=")) {
            continue;
        }
        let lhs_float = i > 0 && toks[i - 1].kind == TokKind::Float;
        let rhs_float = match toks.get(i + 1) {
            Some(n) if n.kind == TokKind::Float => true,
            Some(n) if n.is_punct("-") => {
                matches!(toks.get(i + 2), Some(m) if m.kind == TokKind::Float)
            }
            _ => false,
        };
        if lhs_float || rhs_float {
            out.push(Violation {
                rule: "no-float-eq",
                file: file.to_string(),
                line: t.line,
                message: format!(
                    "`{}` against a float literal (use `hdx_stats::approx`)",
                    t.text
                ),
            });
        }
    }
}

/// Item keywords that require documentation when `pub`.
const ITEM_KWS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "mod", "static", "union",
];

/// `missing-docs`: flags `pub` items in library crates without a preceding
/// doc comment or `#[doc ...]` attribute. `pub(crate)`/`pub(super)` items
/// and `pub use` re-exports are exempt; struct fields are not checked.
pub fn rule_missing_docs(toks: &[Tok], mask: &[bool], file: &str, out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("pub") {
            continue;
        }
        // `pub(crate)` / `pub(super)` / `pub(in ...)` are not public API.
        if matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            continue;
        }
        let Some((kind, name)) = item_after_pub(toks, i) else {
            continue;
        };
        if !is_documented(toks, i) {
            out.push(Violation {
                rule: "missing-docs",
                file: file.to_string(),
                line: t.line,
                message: format!("public {kind} `{name}` has no doc comment"),
            });
        }
    }
}

/// Identifies the item declared after a `pub` at index `i`:
/// `Some((kind, name))` for doc-requiring items, `None` otherwise
/// (e.g. `pub use`, struct fields).
pub(crate) fn item_after_pub(toks: &[Tok], i: usize) -> Option<(String, String)> {
    let mut j = i + 1;
    loop {
        let t = toks.get(j)?;
        match t.kind {
            TokKind::Str => {
                // ABI string after `extern`.
                j += 1;
            }
            TokKind::Ident => match t.text.as_str() {
                "async" | "unsafe" | "extern" | "default" => j += 1,
                "const" => {
                    // `pub const fn f` (modifier) vs `pub const NAME` (item).
                    if matches!(toks.get(j + 1), Some(n) if n.is_ident("fn")) {
                        j += 1;
                    } else {
                        let name = toks.get(j + 1)?.text.clone();
                        return Some(("const".to_string(), name));
                    }
                }
                kw if ITEM_KWS.contains(&kw) => {
                    let name = toks.get(j + 1)?.text.clone();
                    return Some((kw.to_string(), name));
                }
                _ => return None, // `pub use`, `pub field: T`, macro output...
            },
            _ => return None,
        }
    }
}

/// Walks backwards from the `pub` at index `i` over attributes and doc
/// comments; true when a doc comment or `#[doc ...]` attribute is found.
pub(crate) fn is_documented(toks: &[Tok], i: usize) -> bool {
    let mut k = i;
    while k > 0 {
        let prev = &toks[k - 1];
        if prev.kind == TokKind::Doc {
            // Outer docs (`///`, `/**`) document the following item; inner
            // docs (`//!`, `/*!`) document the *enclosing* module and leave
            // the next item undocumented.
            return prev.text.starts_with("///") || prev.text.starts_with("/**");
        }
        if prev.is_punct("]") {
            // Walk back to the matching `[`, noting a `doc` ident inside.
            let mut depth = 0usize;
            let mut m = k - 1;
            let mut saw_doc = false;
            loop {
                let t = &toks[m];
                if t.is_punct("]") {
                    depth += 1;
                } else if t.is_punct("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_ident("doc") {
                    saw_doc = true;
                }
                if m == 0 {
                    return false;
                }
                m -= 1;
            }
            if saw_doc {
                return true;
            }
            // Step over the `#` introducing the attribute.
            if m > 0 && toks[m - 1].is_punct("#") {
                k = m - 1;
            } else {
                return false;
            }
        } else {
            return false;
        }
    }
    false
}

/// `no-exit`: flags `process::exit` calls (any path ending in them).
pub fn rule_no_exit(toks: &[Tok], mask: &[bool], file: &str, out: &mut Vec<Violation>) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("exit") {
            continue;
        }
        if i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("process") {
            out.push(Violation {
                rule: "no-exit",
                file: file.to_string(),
                line: t.line,
                message: "`std::process::exit` outside hdx-cli (return an exit code instead)"
                    .to_string(),
            });
        }
    }
}
