//! A minimal Rust lexer for static analysis.
//!
//! Produces a flat token stream with line numbers. String/char literals,
//! comments and doc comments are lexed as single tokens so rule passes
//! never match text inside them (e.g. an `unwrap()` mentioned in a doc
//! example is *not* a violation). The lexer is deliberately small and
//! dependency-free: it does not parse, it only tokenizes, which is enough
//! for the lexical rules `hdx-lint` enforces.

/// Token classification, as coarse as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `pub`, `fn`, ...).
    Ident,
    /// Integer literal (including hex/octal/binary).
    Int,
    /// Floating-point literal (`1.0`, `1.`, `2e-5`, `1f64`).
    Float,
    /// String literal (normal, raw or byte).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Doc comment (`///`, `//!`, `/** */`, `/*! */`).
    Doc,
    /// Punctuation / operator, possibly multi-character (`==`, `::`, `->`).
    Punct,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Source text (operators store the full operator, e.g. `"=="`).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

impl Tok {
    /// True when the token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// True when the token is the identifier `id`.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// One plain (non-doc) comment, reported out-of-band so the token stream
/// stays comment-free for the lexical rules while the semantic rules can
/// still see justification markers (`// SAFETY:`, `// ORDERING:`, ...).
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub first_line: u32,
    /// 1-based line of the comment's last character (block comments span).
    pub last_line: u32,
    /// Full source text including the `//` / `/*` introducer.
    pub text: String,
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "::", "->", "=>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream plus the plain comments the stream
/// drops, with their line spans. Ordinary comments and whitespace never
/// become tokens; doc comments stay in the token stream (as
/// [`TokKind::Doc`]) and are *not* duplicated into the comment list.
pub fn lex_with_comments(src: &str) -> (Vec<Tok>, Vec<Comment>) {
    let chars: Vec<char> = src.chars().collect();
    let mut comments = Vec::new();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let n = chars.len();
    while i < n {
        let c = chars[i];

        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comments (and `///` / `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            // `///x` and `//!x` are doc comments; `////...` is a plain
            // comment per rustdoc, but treating it as doc is harmless here.
            if text.starts_with("///") || text.starts_with("//!") {
                toks.push(Tok {
                    kind: TokKind::Doc,
                    text,
                    line,
                });
            } else {
                comments.push(Comment {
                    first_line: line,
                    last_line: line,
                    text,
                });
            }
            continue;
        }

        // Block comments, nested, doc variants `/**` `/*!`.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            let text: String = chars[start..i.min(n)].iter().collect();
            if text.starts_with("/**") || text.starts_with("/*!") {
                toks.push(Tok {
                    kind: TokKind::Doc,
                    text,
                    line: start_line,
                });
            } else {
                comments.push(Comment {
                    first_line: start_line,
                    last_line: line,
                    text,
                });
            }
            continue;
        }

        // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#, c"..".
        if is_ident_start(c) {
            if let Some((len, lines)) = try_prefixed_string(&chars[i..]) {
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: String::new(),
                    line,
                });
                i += len;
                line += lines;
                continue;
            }
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Plain string literal.
        if c == '"' {
            let start_line = line;
            i += 1;
            while i < n {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            // `'\x'`-style escapes are always char literals; `'a'` is a char
            // when the quote closes right after one character; otherwise it
            // is a lifetime (`'a`, `'static`).
            if i + 1 < n && chars[i + 1] == '\\' {
                i += 2; // consume `'\`
                while i < n && chars[i] != '\'' {
                    i += 1;
                }
                i += 1; // closing quote
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else if i + 2 < n && chars[i + 2] == '\'' && chars[i + 1] != '\'' {
                i += 3;
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else {
                let start = i;
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: chars[start..i].iter().collect(),
                    line,
                });
            }
            continue;
        }

        // Numeric literal.
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            if c == '0' && i + 1 < n && matches!(chars[i + 1], 'x' | 'o' | 'b') {
                i += 2;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            } else {
                while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    i += 1;
                }
                // Fractional part: `.` belongs to the number unless it starts
                // `..` (range) or a method/field access (`1.max(2)`).
                if i < n && chars[i] == '.' {
                    let after = chars.get(i + 1).copied();
                    let part_of_number = match after {
                        Some(d) if d.is_ascii_digit() => true,
                        Some('.') => false,
                        Some(a) if is_ident_start(a) => false,
                        _ => true, // `1.` followed by whitespace/operator/EOF
                    };
                    if part_of_number {
                        is_float = true;
                        i += 1;
                        while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                            i += 1;
                        }
                    }
                }
                // Exponent.
                if i < n
                    && matches!(chars[i], 'e' | 'E')
                    && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit())
                        | matches!(
                            (chars.get(i + 1), chars.get(i + 2)),
                            (Some('+') | Some('-'), Some(d)) if d.is_ascii_digit()
                        )
                {
                    is_float = true;
                    i += 1;
                    if matches!(chars.get(i), Some('+') | Some('-')) {
                        i += 1;
                    }
                    while i < n && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        i += 1;
                    }
                }
                // Suffix (`f64`, `u32`, ...). An `f32`/`f64` suffix makes the
                // literal a float even without a dot (`1f64`).
                if i < n && is_ident_start(chars[i]) {
                    let sfx_start = i;
                    while i < n && is_ident_continue(chars[i]) {
                        i += 1;
                    }
                    let sfx: String = chars[sfx_start..i].iter().collect();
                    if sfx.starts_with("f32") || sfx.starts_with("f64") {
                        is_float = true;
                    }
                }
            }
            toks.push(Tok {
                kind: if is_float {
                    TokKind::Float
                } else {
                    TokKind::Int
                },
                text: chars[start..i].iter().collect(),
                line,
            });
            continue;
        }

        // Punctuation: greedy multi-char operators first.
        let mut matched = false;
        for op in MULTI_PUNCT {
            let oplen = op.len();
            if i + oplen <= n && chars[i..i + oplen].iter().collect::<String>() == **op {
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += oplen;
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok {
                kind: TokKind::Punct,
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    (toks, comments)
}

/// Recognizes a raw/byte/C string starting at `rest[0]` (an identifier
/// character). Returns `(consumed_chars, newlines)` when `rest` begins with
/// `r"`, `r#"`, `b"`, `br#"`, `c"` etc.; `None` means "lex as identifier".
fn try_prefixed_string(rest: &[char]) -> Option<(usize, u32)> {
    let mut j = 0usize;
    // Prefix letters: any of r/b/c combinations actually used in Rust.
    while j < rest.len() && j < 2 && matches!(rest[j], 'r' | 'b' | 'c') {
        j += 1;
    }
    if j == 0 {
        return None;
    }
    let raw = rest[..j].contains(&'r');
    let mut hashes = 0usize;
    if raw {
        while j < rest.len() && rest[j] == '#' {
            hashes += 1;
            j += 1;
        }
    }
    if j >= rest.len() || rest[j] != '"' {
        return None;
    }
    if !raw && hashes > 0 {
        return None;
    }
    j += 1;
    let mut lines = 0u32;
    while j < rest.len() {
        let c = rest[j];
        if c == '\n' {
            lines += 1;
            j += 1;
        } else if c == '\\' && !raw {
            j += 2;
        } else if c == '"' {
            if raw {
                // Need `hashes` trailing `#`.
                let mut k = 0usize;
                while k < hashes && j + 1 + k < rest.len() && rest[j + 1 + k] == '#' {
                    k += 1;
                }
                if k == hashes {
                    return Some((j + 1 + hashes, lines));
                }
                j += 1;
            } else {
                return Some((j + 1, lines));
            }
        } else {
            j += 1;
        }
    }
    Some((j, lines))
}
