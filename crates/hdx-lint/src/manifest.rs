//! Checked-in manifests driving the semantic rules.
//!
//! Three small files configure where the strictest rules apply and what the
//! ratchets currently allow:
//!
//! * `crates/hdx-lint/hotpaths.toml` — the functions locked to the
//!   zero-allocation invariant (`no-alloc-hot-path`) and the files whose
//!   whole non-test body must be panic-free (`no-panic-path`).
//! * `UNSAFE_LEDGER.md` (workspace root) — the audit ledger every `unsafe`
//!   site must be registered in (`unsafe-audit`).
//! * `crates/hdx-lint/doc_ratchet.toml` — per-crate documentation-coverage
//!   floors in percent (`doc-coverage`); floors only ever increase.
//!
//! The parsers are hand-rolled over a TOML/markdown subset, consistent with
//! the linter's no-dependency rule (it must build even when the workspace is
//! broken). Unknown keys are errors, not ignored — a typo in a manifest must
//! not silently disable a rule.

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;

/// One `[[hotpath]]` entry.
#[derive(Debug, Clone, Default)]
pub struct Hotpath {
    /// Workspace-relative source file.
    pub file: String,
    /// Function names (bare, or `::`-qualified path suffixes) locked to the
    /// zero-allocation invariant.
    pub functions: Vec<String>,
    /// When true, the file's whole non-test body is checked by
    /// `no-panic-path` (unchecked indexing / `expect` / `panic!`).
    pub panic_free: bool,
}

/// The parsed `hotpaths.toml`.
#[derive(Debug, Clone, Default)]
pub struct Hotpaths {
    /// All entries, in file order.
    pub entries: Vec<Hotpath>,
}

impl Hotpaths {
    /// The entry covering `file`, if any.
    pub fn for_file(&self, file: &str) -> Option<&Hotpath> {
        self.entries.iter().find(|e| e.file == file)
    }
}

/// Parses `hotpaths.toml` text. Accepts the subset:
/// `[[hotpath]]` headers, `key = "string"`, `key = true|false`, and
/// `key = [ "a", "b" ]` arrays (single- or multi-line).
pub fn parse_hotpaths(text: &str) -> Result<Hotpaths, String> {
    let mut entries: Vec<Hotpath> = Vec::new();
    for (key, value, lineno) in toml_subset_items(text, "hotpath")? {
        if key.is_empty() {
            entries.push(Hotpath::default());
            continue;
        }
        let Some(entry) = entries.last_mut() else {
            return Err(format!(
                "hotpaths.toml line {lineno}: key `{key}` before any [[hotpath]] header"
            ));
        };
        match (key.as_str(), value) {
            ("file", TomlValue::Str(s)) => entry.file = s,
            ("functions", TomlValue::Array(a)) => entry.functions = a,
            ("panic_free", TomlValue::Bool(b)) => entry.panic_free = b,
            (k, v) => {
                return Err(format!(
                    "hotpaths.toml line {lineno}: unexpected `{k}` = {v:?}"
                ))
            }
        }
    }
    for e in &entries {
        if e.file.is_empty() {
            return Err("hotpaths.toml: [[hotpath]] entry without `file`".to_string());
        }
    }
    Ok(Hotpaths { entries })
}

/// Loads and parses `hotpaths.toml`; a missing file is an empty manifest.
pub fn load_hotpaths(path: &Path) -> Result<Hotpaths, String> {
    match fs::read_to_string(path) {
        Ok(t) => parse_hotpaths(&t),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Hotpaths::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// The parsed `UNSAFE_LEDGER.md`: the set of files with at least one
/// registered `unsafe` site.
#[derive(Debug, Clone, Default)]
pub struct UnsafeLedger {
    /// Workspace-relative file paths appearing in ledger rows.
    pub files: Vec<String>,
}

impl UnsafeLedger {
    /// Whether `file` has a ledger entry.
    pub fn covers(&self, file: &str) -> bool {
        self.files.iter().any(|f| f == file)
    }
}

/// Parses the ledger: markdown-table rows whose first cell is a source path
/// (`| crates/x/src/y.rs | ... |`). Header/separator rows are skipped.
pub fn parse_unsafe_ledger(text: &str) -> UnsafeLedger {
    let mut files = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix('|') else {
            continue;
        };
        let first_cell = rest.split('|').next().unwrap_or("").trim();
        if first_cell.ends_with(".rs") {
            files.push(first_cell.to_string());
        }
    }
    UnsafeLedger { files }
}

/// Loads and parses `UNSAFE_LEDGER.md`; a missing ledger is empty.
pub fn load_unsafe_ledger(path: &Path) -> Result<UnsafeLedger, String> {
    match fs::read_to_string(path) {
        Ok(t) => Ok(parse_unsafe_ledger(&t)),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(UnsafeLedger::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// The parsed `doc_ratchet.toml`: crate name → (floor percent, source line).
#[derive(Debug, Clone, Default)]
pub struct DocRatchet {
    /// Coverage floors in percent, with the manifest line that set them
    /// (used as the violation's reporting location).
    pub floors: BTreeMap<String, (u32, u32)>,
}

/// Parses `doc_ratchet.toml`: lines of `crate-name = NN` (percent, 0–100).
pub fn parse_doc_ratchet(text: &str) -> Result<DocRatchet, String> {
    let mut floors = BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() || line.starts_with('[') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "doc_ratchet.toml line {lineno}: expected `crate = percent`"
            ));
        };
        let key = key.trim().trim_matches('"').to_string();
        let percent: u32 = value.trim().parse().map_err(|_| {
            format!(
                "doc_ratchet.toml line {lineno}: `{}` is not a percent",
                value.trim()
            )
        })?;
        if percent > 100 {
            return Err(format!("doc_ratchet.toml line {lineno}: {percent} > 100"));
        }
        if floors.insert(key.clone(), (percent, lineno)).is_some() {
            return Err(format!(
                "doc_ratchet.toml line {lineno}: duplicate entry for `{key}`"
            ));
        }
    }
    Ok(DocRatchet { floors })
}

/// Loads and parses `doc_ratchet.toml`; a missing file means no floors.
pub fn load_doc_ratchet(path: &Path) -> Result<DocRatchet, String> {
    match fs::read_to_string(path) {
        Ok(t) => parse_doc_ratchet(&t),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(DocRatchet::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// A value in the TOML subset.
#[derive(Debug)]
enum TomlValue {
    Str(String),
    Bool(bool),
    Array(Vec<String>),
    /// Marker yielded for an `[[array-of-tables]]` header (key is empty).
    Header,
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Streams `(key, value, lineno)` items from a TOML subset with
/// `[[header]]` array-of-table markers (yielded as empty-key
/// [`TomlValue::Header`] items). Multi-line arrays are joined.
fn toml_subset_items(text: &str, header: &str) -> Result<Vec<(String, TomlValue, u32)>, String> {
    let mut items = Vec::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = (idx + 1) as u32;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line == format!("[[{header}]]") {
            items.push((String::new(), TomlValue::Header, lineno));
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unexpected table header `{line}`"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = value`"));
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Join multi-line arrays until brackets balance.
        while value.starts_with('[') && !value.ends_with(']') {
            let Some((_, cont)) = lines.next() else {
                return Err(format!("line {lineno}: unterminated array"));
            };
            value.push(' ');
            value.push_str(strip_toml_comment(cont).trim());
        }
        let parsed = if value == "true" {
            TomlValue::Bool(true)
        } else if value == "false" {
            TomlValue::Bool(false)
        } else if let Some(inner) = value.strip_prefix('[') {
            let inner = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated array"))?;
            let mut elems = Vec::new();
            for piece in inner.split(',') {
                let piece = piece.trim();
                if piece.is_empty() {
                    continue;
                }
                let s = piece
                    .strip_prefix('"')
                    .and_then(|p| p.strip_suffix('"'))
                    .ok_or_else(|| {
                        format!("line {lineno}: array element `{piece}` is not a string")
                    })?;
                elems.push(s.to_string());
            }
            TomlValue::Array(elems)
        } else if let Some(s) = value.strip_prefix('"').and_then(|p| p.strip_suffix('"')) {
            TomlValue::Str(s.to_string())
        } else {
            return Err(format!("line {lineno}: unsupported value `{value}`"));
        };
        items.push((key, parsed, lineno));
    }
    Ok(items)
}
