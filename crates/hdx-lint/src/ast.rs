//! A lightweight item-tree parser over the token stream.
//!
//! The semantic rules need more structure than a flat token stream — "which
//! function does this token belong to", "what is the module path of this
//! `fn`" — but far less than a full grammar. This pass recovers exactly that
//! middle layer: a list of function items with their fully-qualified paths
//! (`module::Type::method`) and body token ranges, plus every `unsafe`
//! occurrence classified by construct. It deliberately does not build an
//! expression tree; the rules that need expression-level facts (indexing,
//! method calls) pattern-match tokens *within* a function's body range.
//!
//! The parser is a single forward pass with a scope stack. A `{` is
//! classified by the pending item declaration preceding it (`mod m {`,
//! `impl T {`, `fn f( ... ) {`); all other braces (match arms, struct
//! literals, closures, plain blocks) become anonymous scopes that only
//! matter for brace balancing.

use crate::lexer::{Tok, TokKind};

/// One function item recovered from the token stream.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`accum`).
    pub name: String,
    /// Fully-qualified path within the file: enclosing modules and impl
    /// types joined with `::` (`plane::OutcomePlanes::accum`). The crate
    /// segment is *not* included — the file path provides it.
    pub path: String,
    /// Token-index range of the body, **inclusive of both braces**.
    /// `None` for bodyless functions (trait method declarations).
    pub body: Option<(usize, usize)>,
}

/// What kind of construct an `unsafe` keyword introduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { ... }` block.
    Block,
    /// `unsafe fn ...`.
    Fn,
    /// `unsafe impl ...`.
    Impl,
    /// `unsafe trait ...`.
    Trait,
    /// Anything else (`unsafe extern`, attribute grammar, ...).
    Other,
}

/// One `unsafe` occurrence.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// 1-based line of the `unsafe` keyword.
    pub line: u32,
    /// Token index of the `unsafe` keyword.
    pub tok: usize,
    /// Construct kind.
    pub kind: UnsafeKind,
}

/// The recovered item tree of one file.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// All function items, in source order.
    pub functions: Vec<FnItem>,
    /// All `unsafe` occurrences, in source order.
    pub unsafes: Vec<UnsafeSite>,
}

/// A scope on the parse stack: what the enclosing `{` belongs to.
#[derive(Debug)]
enum Scope {
    /// `mod name {` or `impl Type {` — pushed a path segment to pop on `}`.
    Named,
    /// `fn name(...) { ... }` — body; closing brace finishes the item.
    Fn { index: usize },
    /// Any other brace (expression block, match arm, struct literal, ...).
    Anon,
}

/// A declaration seen but whose `{` has not arrived yet.
#[derive(Debug)]
enum Pending {
    Mod(String),
    Impl { toks: Vec<String> },
    Fn { index: usize },
}

/// Parses the token stream of one file into its [`ItemTree`].
pub fn parse(toks: &[Tok]) -> ItemTree {
    let mut tree = ItemTree::default();
    let mut stack: Vec<Scope> = Vec::new();
    let mut pending: Option<Pending> = None;
    let mut path: Vec<String> = Vec::new();

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "mod" => {
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending = Some(Pending::Mod(name.text.clone()));
                        i += 2;
                        continue;
                    }
                }
                "impl" => {
                    pending = Some(Pending::Impl { toks: Vec::new() });
                }
                "fn" => {
                    if let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let mut fn_path = path.clone();
                        fn_path.push(name.text.clone());
                        tree.functions.push(FnItem {
                            name: name.text.clone(),
                            path: fn_path.join("::"),
                            body: None,
                        });
                        pending = Some(Pending::Fn {
                            index: tree.functions.len() - 1,
                        });
                        i += 2;
                        continue;
                    }
                }
                "unsafe" => {
                    let kind = match toks.get(i + 1) {
                        Some(n) if n.is_punct("{") => UnsafeKind::Block,
                        Some(n) if n.is_ident("fn") => UnsafeKind::Fn,
                        Some(n) if n.is_ident("impl") => UnsafeKind::Impl,
                        Some(n) if n.is_ident("trait") => UnsafeKind::Trait,
                        _ => UnsafeKind::Other,
                    };
                    tree.unsafes.push(UnsafeSite {
                        line: t.line,
                        tok: i,
                        kind,
                    });
                }
                _ => {
                    if let Some(Pending::Impl { toks: acc }) = &mut pending {
                        acc.push(t.text.clone());
                    }
                }
            },
            TokKind::Punct => match t.text.as_str() {
                "{" => {
                    let scope = match pending.take() {
                        Some(Pending::Mod(name)) => {
                            path.push(name);
                            Scope::Named
                        }
                        Some(Pending::Impl { toks: acc }) => {
                            path.push(impl_type_name(&acc));
                            Scope::Named
                        }
                        Some(Pending::Fn { index }) => {
                            tree.functions[index].body = Some((i, i));
                            Scope::Fn { index }
                        }
                        None => Scope::Anon,
                    };
                    stack.push(scope);
                }
                "}" => match stack.pop() {
                    Some(Scope::Named) => {
                        path.pop();
                    }
                    Some(Scope::Fn { index }) => {
                        if let Some((lo, _)) = tree.functions[index].body {
                            tree.functions[index].body = Some((lo, i));
                        }
                    }
                    _ => {}
                },
                ";" => {
                    // `mod m;`, trait method declarations, `impl Trait for T;`
                    // (negative impls) — the pending declaration has no body.
                    pending = None;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
    tree
}

/// Extracts the self-type name from the identifiers of an `impl` header:
/// `impl Foo` → `Foo`; `impl Trait for Foo` → `Foo`; modifiers, generics
/// and path qualifiers are skipped. Falls back to `"impl"` when no
/// identifier is found (e.g. `impl (A, B)`).
fn impl_type_name(idents: &[String]) -> String {
    let after_for: Vec<&String> = match idents.iter().position(|s| s == "for") {
        Some(p) => idents[p + 1..].iter().collect(),
        None => idents.iter().collect(),
    };
    after_for
        .iter()
        .find(|s| {
            !matches!(
                s.as_str(),
                "const" | "unsafe" | "dyn" | "mut" | "where" | "r#" | "crate" | "super" | "self"
            )
        })
        .map(|s| s.to_string())
        .unwrap_or_else(|| "impl".to_string())
}
