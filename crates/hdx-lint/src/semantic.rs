//! The semantic rules (tier 2 of the analyzer — see DESIGN.md §13).
//!
//! These rules consume the item tree ([`crate::ast`]) and the comment
//! side-channel ([`crate::lexer::lex_with_comments`]) on top of the token
//! stream, and are configured by the checked-in manifests
//! ([`crate::manifest`]):
//!
//! * `unsafe-audit` — every `unsafe` needs a `// SAFETY:` justification
//!   comment *and* a row in `UNSAFE_LEDGER.md` for its file.
//! * `atomics-ordering` — every `Ordering::Relaxed` needs an
//!   `// ORDERING:` justification comment (or an allowlist entry).
//! * `no-alloc-hot-path` — functions listed in `hotpaths.toml` may not
//!   allocate (`.push`/`.collect`/`format!`/`vec!`/`Box::new`/...) unless
//!   the site carries an `// ALLOC:` justification.
//! * `no-panic-path` — files marked `panic_free` may not use unchecked
//!   indexing/slicing, `.unwrap`/`.expect`, or panicking macros; a
//!   pre-verified bound can be justified with `// BOUND:`.
//! * `doc-coverage` — per-crate documentation coverage of public items may
//!   not drop below the `doc_ratchet.toml` floor.
//!
//! Justification comments are *plain* comments (`// SAFETY: ...`), never doc
//! comments: they address the maintainer reading the code, not the API user.
//! A marker justifies the tokens on its own line(s) and on the lines of the
//! contiguous comment block's immediate successor — i.e. write the comment
//! directly above (or at the end of) the line it justifies.

use crate::ast::{self, ItemTree};
use crate::lexer::{Comment, Tok, TokKind};
use crate::manifest::{DocRatchet, Hotpath, UnsafeLedger};
use crate::rules::Violation;

/// Per-line index of the plain comments of one file, answering "is the token
/// at line L justified by marker M?".
#[derive(Debug, Default)]
pub struct CommentIndex {
    /// Line → comment text (joined when multiple comments share a line; a
    /// block comment contributes its text to every line it spans).
    lines: std::collections::BTreeMap<u32, String>,
}

impl CommentIndex {
    /// Builds the index from the lexer's comment side-channel.
    pub fn new(comments: &[Comment]) -> Self {
        let mut lines = std::collections::BTreeMap::new();
        for c in comments {
            for line in c.first_line..=c.last_line {
                let slot: &mut String = lines.entry(line).or_default();
                slot.push_str(&c.text);
                slot.push('\n');
            }
        }
        Self { lines }
    }

    /// Whether a token at `line` is justified by a comment containing
    /// `marker`: on the same line, or in the contiguous comment block ending
    /// on the line directly above.
    pub fn justified(&self, line: u32, marker: &str) -> bool {
        if self.contains(line, marker) {
            return true;
        }
        let mut l = line.saturating_sub(1);
        while l > 0 && self.lines.contains_key(&l) {
            if self.contains(l, marker) {
                return true;
            }
            l -= 1;
        }
        false
    }

    fn contains(&self, line: u32, marker: &str) -> bool {
        self.lines.get(&line).is_some_and(|t| t.contains(marker))
    }
}

/// `unsafe-audit`: every `unsafe` (block/fn/impl/trait) outside tests needs
/// a `// SAFETY:` comment and a ledger row for its file.
pub fn rule_unsafe_audit(
    tree: &ItemTree,
    mask: &[bool],
    comments: &CommentIndex,
    ledger: &UnsafeLedger,
    file: &str,
    out: &mut Vec<Violation>,
) {
    for site in &tree.unsafes {
        if mask.get(site.tok).copied().unwrap_or(false) {
            continue;
        }
        let what = match site.kind {
            ast::UnsafeKind::Block => "`unsafe` block",
            ast::UnsafeKind::Fn => "`unsafe fn`",
            ast::UnsafeKind::Impl => "`unsafe impl`",
            ast::UnsafeKind::Trait => "`unsafe trait`",
            ast::UnsafeKind::Other => "`unsafe`",
        };
        if !comments.justified(site.line, "SAFETY:") {
            out.push(Violation {
                rule: "unsafe-audit",
                file: file.to_string(),
                line: site.line,
                message: format!("{what} without a `// SAFETY:` justification comment"),
            });
        }
        if !ledger.covers(file) {
            out.push(Violation {
                rule: "unsafe-audit",
                file: file.to_string(),
                line: site.line,
                message: format!("{what} in a file with no UNSAFE_LEDGER.md entry"),
            });
        }
    }
}

/// `atomics-ordering`: every `Ordering::Relaxed` token triple outside tests
/// needs an `// ORDERING:` justification comment.
///
/// `std::cmp::Ordering` has no `Relaxed` variant, so the triple match cannot
/// confuse comparison code; fully-qualified `atomic::Ordering::Relaxed`
/// paths contain the same triple and are matched too.
pub fn rule_atomics_ordering(
    toks: &[Tok],
    mask: &[bool],
    comments: &CommentIndex,
    file: &str,
    out: &mut Vec<Violation>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("Relaxed") {
            continue;
        }
        let is_ordering = i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("Ordering");
        if !is_ordering {
            continue;
        }
        if !comments.justified(t.line, "ORDERING:") {
            out.push(Violation {
                rule: "atomics-ordering",
                file: file.to_string(),
                line: t.line,
                message: "`Ordering::Relaxed` without an `// ORDERING:` justification \
                          (why is relaxed memory ordering sufficient here?)"
                    .to_string(),
            });
        }
    }
}

/// Allocating constructs flagged inside hot-path functions: `(needle kind,
/// message)`. Method calls are matched as `.name(`; macros as `name!`;
/// `Box::new` / `String::from` as qualified-path calls.
const ALLOC_METHODS: &[&str] = &["push", "collect", "to_vec", "to_string", "to_owned"];
const ALLOC_MACROS: &[&str] = &["format", "vec"];
const ALLOC_PATHS: &[(&str, &str)] = &[("Box", "new"), ("String", "from"), ("Vec", "new")];

/// `no-alloc-hot-path`: functions listed in `hotpaths.toml` must not
/// allocate. Scratch-pool operations with pre-reserved capacity can be
/// justified with an `// ALLOC:` comment.
pub fn rule_no_alloc_hot_path(
    toks: &[Tok],
    tree: &ItemTree,
    mask: &[bool],
    comments: &CommentIndex,
    hotpath: &Hotpath,
    file: &str,
    out: &mut Vec<Violation>,
) {
    for func in &tree.functions {
        let listed = hotpath
            .functions
            .iter()
            .any(|f| *f == func.name || *f == func.path || func.path.ends_with(&format!("::{f}")));
        if !listed {
            continue;
        }
        let Some((lo, hi)) = func.body else { continue };
        for i in lo..=hi.min(toks.len().saturating_sub(1)) {
            if mask[i] {
                continue;
            }
            let t = &toks[i];
            if t.kind != TokKind::Ident {
                continue;
            }
            let next_is = |p: &str| matches!(toks.get(i + 1), Some(n) if n.is_punct(p));
            let prev_is = |p: &str| i > lo && toks[i - 1].is_punct(p);
            let hit = if ALLOC_METHODS.contains(&t.text.as_str()) {
                prev_is(".") && (next_is("(") || next_is("::"))
            } else if ALLOC_MACROS.contains(&t.text.as_str()) {
                next_is("!")
            } else {
                ALLOC_PATHS.iter().any(|(ty, m)| {
                    t.is_ident(ty)
                        && next_is("::")
                        && matches!(toks.get(i + 2), Some(n) if n.is_ident(m))
                })
            };
            if hit && !comments.justified(t.line, "ALLOC:") {
                out.push(Violation {
                    rule: "no-alloc-hot-path",
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "allocation (`{}`) in hot-path fn `{}` (use the per-depth scratch \
                         pool, or justify with `// ALLOC:`)",
                        t.text, func.path
                    ),
                });
            }
        }
    }
}

/// Panicking macros flagged by `no-panic-path`.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// `no-panic-path`: in files marked `panic_free` in `hotpaths.toml`, the
/// non-test body may not use `.unwrap()`/`.expect()`, panicking macros, or
/// unchecked indexing/slicing (`xs[i]`, `&xs[a..b]`). `assert!`-family
/// guards are allowed — they *are* the pre-verification mechanism. An index
/// whose bound is established elsewhere can be justified with `// BOUND:`.
pub fn rule_no_panic_path(
    toks: &[Tok],
    mask: &[bool],
    comments: &CommentIndex,
    file: &str,
    out: &mut Vec<Violation>,
) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] {
            continue;
        }
        let (line, what): (u32, String) = match t.kind {
            TokKind::Ident => {
                let next_is = |p: &str| matches!(toks.get(i + 1), Some(n) if n.is_punct(p));
                let prev_is = |p: &str| i > 0 && toks[i - 1].is_punct(p);
                match t.text.as_str() {
                    "unwrap" | "expect" if prev_is(".") && next_is("(") => {
                        (t.line, format!("`.{}(...)`", t.text))
                    }
                    m if PANIC_MACROS.contains(&m) && next_is("!") => (t.line, format!("`{m}!`")),
                    _ => continue,
                }
            }
            TokKind::Punct if t.text == "[" => {
                // Indexing/slicing: `[` directly after an expression tail
                // (identifier, `)`, `]`). Type positions, array literals and
                // attributes are preceded by other punctuation — or by a
                // keyword (`&mut [u64]`, `for x in [..]`, `return [..]`),
                // which tokenizes as an identifier but cannot be indexed.
                const KEYWORDS: &[&str] = &[
                    "let", "mut", "ref", "dyn", "in", "return", "break", "else", "match", "move",
                ];
                let is_index = i > 0
                    && (toks[i - 1].kind == TokKind::Ident
                        && !KEYWORDS.contains(&toks[i - 1].text.as_str())
                        || toks[i - 1].is_punct(")")
                        || toks[i - 1].is_punct("]"));
                if !is_index {
                    continue;
                }
                (t.line, "unchecked indexing/slicing `[...]`".to_string())
            }
            _ => continue,
        };
        if comments.justified(line, "BOUND:") {
            continue;
        }
        out.push(Violation {
            rule: "no-panic-path",
            file: file.to_string(),
            line,
            message: format!(
                "{what} in a panic-free kernel module (pre-verify the bound and use \
                 `get`/iterators/`split_at`, or justify with `// BOUND:`)"
            ),
        });
    }
}

/// Documentation-coverage counts for one crate.
#[derive(Debug, Default, Clone, Copy)]
pub struct DocCounts {
    /// Public items required to be documented.
    pub total: usize,
    /// Of those, items carrying a doc comment or `#[doc]` attribute.
    pub documented: usize,
}

impl DocCounts {
    /// Coverage in percent; an itemless crate counts as fully covered.
    pub fn percent(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            self.documented as f64 * 100.0 / self.total as f64
        }
    }
}

/// Tallies documentable public items of one file into `counts` (the same
/// item definition as the `missing-docs` rule: `pub` fns/structs/enums/
/// traits/types/mods/statics/consts/unions, excluding `pub(crate)` and
/// re-exports).
pub fn tally_doc_coverage(toks: &[Tok], mask: &[bool], counts: &mut DocCounts) {
    for (i, t) in toks.iter().enumerate() {
        if mask[i] || !t.is_ident("pub") {
            continue;
        }
        if matches!(toks.get(i + 1), Some(n) if n.is_punct("(")) {
            continue;
        }
        if crate::rules::item_after_pub(toks, i).is_none() {
            continue;
        }
        counts.total += 1;
        if crate::rules::is_documented(toks, i) {
            counts.documented += 1;
        }
    }
}

/// `doc-coverage`: compares per-crate coverage against the ratchet floors.
/// Reported at the floor's own line in `doc_ratchet.toml` so the violation
/// points at the ratchet being broken.
pub fn rule_doc_coverage(
    per_crate: &std::collections::BTreeMap<String, DocCounts>,
    ratchet: &DocRatchet,
    ratchet_file: &str,
    out: &mut Vec<Violation>,
) {
    for (krate, &(floor, lineno)) in &ratchet.floors {
        let counts = per_crate.get(krate).copied().unwrap_or_default();
        let pct = counts.percent();
        if pct + 1e-9 < f64::from(floor) {
            out.push(Violation {
                rule: "doc-coverage",
                file: ratchet_file.to_string(),
                line: lineno,
                message: format!(
                    "doc coverage of `{krate}` is {pct:.1}% ({}/{} public items), below \
                     the ratchet floor of {floor}%",
                    counts.documented, counts.total
                ),
            });
        }
    }
}
