//! The dynamic-analysis harness: `cargo xtask sanitize`.
//!
//! Tier 3 of the analyzer (see DESIGN.md §13). Where the lexical and
//! semantic rules prove properties of the *source*, this harness runs the
//! concurrency- and UB-sensitive test subsets under dynamic checkers:
//!
//! * **loom** — the `hdx-loom` exhaustive-interleaving models for
//!   `CancelToken`, governor counter merging and the `hdx-obs` buffer
//!   hand-off, compiled with `--cfg hdx_loom`. Needs only stable Rust, so
//!   it always runs.
//! * **miri** — the kernel property tests under Miri's UB checker. Needs
//!   the nightly `miri` component; skipped (with a note) when absent.
//! * **tsan** — governor/obs concurrency tests under ThreadSanitizer.
//!   Needs nightly + `rust-src` (for `-Zbuild-std`); skipped when absent.
//!
//! Skips are ordinary on dev machines without the nightly components; CI
//! installs them and passes `--strict`, which turns any skip into a
//! failure so the dynamic tiers can never silently stop running.

use std::path::Path;
use std::process::Command;

/// Outcome of one harness step.
enum Outcome {
    Pass,
    Fail,
    Skip(String),
}

/// One harness step and its result.
struct Step {
    name: &'static str,
    outcome: Outcome,
}

/// Runs the sanitize harness rooted at `root`. Returns the process exit
/// code: 0 when every step passed (or was skipped, unless `strict`).
pub fn run(root: &Path, strict: bool) -> i32 {
    let mut steps: Vec<Step> = Vec::new();

    // -- loom: always available (stable Rust + first-party hdx-loom). -----
    // The obs models drive the real recorder, which only exists under the
    // crate's `obs` feature (the test target declares required-features).
    let loom_steps: [(&str, &'static str, &[&str]); 2] = [
        ("hdx-governor", "loom (hdx-governor models)", &[]),
        ("hdx-obs", "loom (hdx-obs models)", &["--features", "obs"]),
    ];
    for (pkg, name, extra) in loom_steps {
        eprintln!("sanitize: running {name} ...");
        let mut args = vec!["test", "-p", pkg];
        args.extend_from_slice(extra);
        args.extend_from_slice(&["--test", "loom_models", "--quiet"]);
        let ok = run_cargo(
            root,
            &args,
            &[
                ("RUSTFLAGS", "--cfg hdx_loom"),
                ("CARGO_TARGET_DIR", "target/sanitize-loom"),
            ],
        );
        steps.push(Step {
            name,
            outcome: if ok { Outcome::Pass } else { Outcome::Fail },
        });
    }

    // -- miri: kernel property tests under the UB checker. ----------------
    if probe(root, "cargo", &["+nightly", "miri", "--version"]) {
        eprintln!("sanitize: running miri (kernel tests) ...");
        let ok = run_cargo(
            root,
            &[
                "+nightly",
                "miri",
                "test",
                "-p",
                "hdx-stats",
                "--lib",
                "--quiet",
            ],
            &[
                ("PROPTEST_CASES", "8"),
                ("MIRIFLAGS", "-Zmiri-strict-provenance"),
            ],
        ) && run_cargo(
            root,
            &[
                "+nightly",
                "miri",
                "test",
                "--test",
                "property_kernel",
                "--quiet",
            ],
            &[
                ("PROPTEST_CASES", "4"),
                ("MIRIFLAGS", "-Zmiri-strict-provenance"),
            ],
        );
        steps.push(Step {
            name: "miri (kernel tests)",
            outcome: if ok { Outcome::Pass } else { Outcome::Fail },
        });
    } else {
        steps.push(Step {
            name: "miri (kernel tests)",
            outcome: Outcome::Skip(
                "nightly `miri` component not installed \
                 (rustup component add --toolchain nightly miri)"
                    .to_string(),
            ),
        });
    }

    // -- tsan: concurrency tests under ThreadSanitizer. -------------------
    match tsan_target(root) {
        Ok(triple) => {
            eprintln!("sanitize: running tsan (governor/obs tests) ...");
            let ok = run_cargo(
                root,
                &[
                    "+nightly",
                    "test",
                    "-Zbuild-std",
                    "--target",
                    &triple,
                    "-p",
                    "hdx-obs",
                    "--lib",
                    "--quiet",
                ],
                &[
                    ("RUSTFLAGS", "-Zsanitizer=thread"),
                    ("CARGO_TARGET_DIR", "target/sanitize-tsan"),
                ],
            ) && run_cargo(
                root,
                &[
                    "+nightly",
                    "test",
                    "-Zbuild-std",
                    "--target",
                    &triple,
                    "--test",
                    "governor",
                    "--quiet",
                ],
                &[
                    ("RUSTFLAGS", "-Zsanitizer=thread"),
                    ("CARGO_TARGET_DIR", "target/sanitize-tsan"),
                    ("PROPTEST_CASES", "8"),
                ],
            );
            steps.push(Step {
                name: "tsan (governor/obs tests)",
                outcome: if ok { Outcome::Pass } else { Outcome::Fail },
            });
        }
        Err(why) => {
            steps.push(Step {
                name: "tsan (governor/obs tests)",
                outcome: Outcome::Skip(why),
            });
        }
    }

    // -- summary. ----------------------------------------------------------
    let mut failed = 0usize;
    let mut skipped = 0usize;
    eprintln!("\nsanitize summary:");
    for s in &steps {
        match &s.outcome {
            Outcome::Pass => eprintln!("  PASS  {}", s.name),
            Outcome::Fail => {
                failed += 1;
                eprintln!("  FAIL  {}", s.name);
            }
            Outcome::Skip(why) => {
                skipped += 1;
                eprintln!("  SKIP  {} — {}", s.name, why);
            }
        }
    }
    if failed > 0 {
        eprintln!("sanitize: {failed} step(s) failed");
        return 1;
    }
    if skipped > 0 && strict {
        eprintln!("sanitize: {skipped} step(s) skipped under --strict");
        return 1;
    }
    eprintln!(
        "sanitize: ok ({} passed, {} skipped)",
        steps.len() - skipped,
        skipped
    );
    0
}

/// Runs `cargo <args>` in `root` with extra environment, streaming output.
fn run_cargo(root: &Path, args: &[&str], env: &[(&str, &str)]) -> bool {
    let mut cmd = Command::new("cargo");
    cmd.args(args).current_dir(root);
    for (k, v) in env {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(status) => status.success(),
        Err(e) => {
            eprintln!("sanitize: failed to spawn cargo: {e}");
            false
        }
    }
}

/// Whether `prog args` runs successfully (detection probe; output dropped).
fn probe(root: &Path, prog: &str, args: &[&str]) -> bool {
    Command::new(prog)
        .args(args)
        .current_dir(root)
        .output()
        .map(|o| o.status.success())
        .is_ok_and(|ok| ok)
}

/// Resolves the TSan prerequisites: nightly toolchain with the `rust-src`
/// component (for `-Zbuild-std`) and the host target triple. Returns the
/// triple on success, a skip reason otherwise.
fn tsan_target(root: &Path) -> Result<String, String> {
    let components = Command::new("rustup")
        .args(["component", "list", "--toolchain", "nightly"])
        .current_dir(root)
        .output()
        .map_err(|e| format!("rustup unavailable: {e}"))?;
    if !components.status.success() {
        return Err("nightly toolchain not installed".to_string());
    }
    let listing = String::from_utf8_lossy(&components.stdout).into_owned();
    let has_src = listing
        .lines()
        .any(|l| l.starts_with("rust-src") && l.contains("(installed)"));
    if !has_src {
        return Err("nightly `rust-src` component not installed \
             (rustup component add --toolchain nightly rust-src)"
            .to_string());
    }
    let rustc = Command::new("rustc")
        .args(["-vV"])
        .current_dir(root)
        .output()
        .map_err(|e| format!("rustc unavailable: {e}"))?;
    String::from_utf8_lossy(&rustc.stdout)
        .lines()
        .find_map(|l| l.strip_prefix("host: ").map(str::to_string))
        .ok_or_else(|| "cannot determine host triple".to_string())
}
