//! Built-in self-test (`hdx-lint --self-test`).
//!
//! Runs the *real* rule dispatch ([`crate::check_file`]) over embedded
//! fixture snippets with deliberately planted violations, plus negative
//! fixtures that must stay clean. Every rule has at least one
//! true-positive and one true-negative fixture, so the self-test guards
//! the analyzer itself: a lexer or masking regression that silently stops
//! reporting would otherwise look like a green run. The fixtures also pin
//! the manifest semantics — deleting a `// SAFETY:` comment, a ledger row
//! or a justification marker from real code fails lint exactly like the
//! corresponding TP fixtures here fail.
//!
//! Beyond the per-file fixtures, two cross-cutting checks run: the
//! doc-coverage ratchet against synthetic per-crate tallies, and a SARIF
//! round-trip proving `--format sarif` agrees 1:1 with the JSON report.

use crate::rules::Violation;
use crate::semantic::DocCounts;
use crate::{manifest, sarif, semantic, Manifests};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Fixture {
    name: &'static str,
    /// Pretend workspace-relative path (controls which rules apply).
    path: &'static str,
    src: &'static str,
    /// Expected `(rule, line)` pairs, in any order.
    expect: &'static [(&'static str, u32)],
}

/// Hotpath manifest used by the fixtures (also exercises the TOML parser).
const FIXTURE_HOTPATHS: &str = "\
# fixture manifest\n\
[[hotpath]]\n\
file = \"crates/hdx-bench/src/hot.rs\"\n\
functions = [\"dfs\", \"Planes::accum\"]\n\
panic_free = false\n\
\n\
[[hotpath]]\n\
file = \"crates/hdx-bench/src/kernel.rs\"\n\
functions = []\n\
panic_free = true\n";

/// Unsafe ledger used by the fixtures.
const FIXTURE_LEDGER: &str = "\
| File | Construct | Justification |\n\
|------|-----------|---------------|\n\
| crates/hdx-bench/src/unsafe_ok.rs | unsafe fn | fixture |\n\
| crates/hdx-bench/src/unsafe_no_safety.rs | unsafe fn | fixture |\n";

const FIXTURES: &[Fixture] = &[
    // ---- lexical rules (tier 1) ----------------------------------------
    Fixture {
        name: "planted unwrap/expect/panic in a library crate",
        path: "crates/hdx-mining/src/planted.rs",
        src: "//! Module docs.\n\
              /// Docs.\n\
              pub fn f(x: Option<u32>) -> u32 {\n\
              \x20   let y = x.unwrap();\n\
              \x20   let z = x.expect(\"msg\");\n\
              \x20   if y > z { panic!(\"boom\"); }\n\
              \x20   y\n\
              }\n",
        expect: &[("no-unwrap", 4), ("no-unwrap", 5), ("no-unwrap", 6)],
    },
    Fixture {
        name: "planted float == in hdx-stats",
        path: "crates/hdx-stats/src/planted.rs",
        src: "/// Docs.\n\
              pub fn g(t: f64) -> bool {\n\
              \x20   if t == 0.0 { return true; }\n\
              \x20   t != 1.5e-3\n\
              }\n",
        expect: &[("no-float-eq", 3), ("no-float-eq", 4)],
    },
    Fixture {
        name: "planted undocumented pub items",
        path: "crates/hdx-core/src/planted.rs",
        src: "//! Module docs.\n\
              pub fn naked() {}\n\
              /// Documented.\n\
              pub struct Ok1;\n\
              #[derive(Debug)]\n\
              pub struct Naked2;\n\
              pub(crate) fn internal() {}\n",
        expect: &[("missing-docs", 2), ("missing-docs", 6)],
    },
    Fixture {
        name: "planted process::exit in a non-cli crate",
        path: "crates/hdx-data/src/planted.rs",
        src: "/// Docs.\n\
              pub fn h() {\n\
              \x20   std::process::exit(1);\n\
              }\n",
        expect: &[("no-exit", 3)],
    },
    Fixture {
        name: "test code, doc examples and unwrap_or are exempt",
        path: "crates/hdx-items/src/clean.rs",
        src: "//! Module docs with `x.unwrap()` in prose.\n\
              /// ```\n\
              /// let v = Some(1).unwrap();\n\
              /// ```\n\
              pub fn k(x: Option<f64>) -> f64 {\n\
              \x20   x.unwrap_or(0.0)\n\
              }\n\
              #[cfg(test)]\n\
              mod tests {\n\
              \x20   #[test]\n\
              \x20   fn t() {\n\
              \x20       let v: Option<f64> = Some(0.0);\n\
              \x20       assert!(v.unwrap() == 0.0);\n\
              \x20       panic!(\"fine in tests\");\n\
              \x20   }\n\
              }\n",
        expect: &[],
    },
    Fixture {
        name: "infinity comparisons and non-literal float == are not flagged",
        path: "crates/hdx-items/src/clean2.rs",
        src: "/// Docs.\n\
              pub fn unbounded(lo: f64, hi: f64) -> bool {\n\
              \x20   lo == f64::NEG_INFINITY && hi == f64::INFINITY\n\
              }\n",
        expect: &[],
    },
    Fixture {
        name: "cfg(test) fn followed by more code keeps masking scoped",
        path: "crates/hdx-items/src/clean3.rs",
        src: "#[cfg(test)]\n\
              fn helper() { let _ = Some(1).unwrap(); }\n\
              /// Docs.\n\
              pub fn live(x: Option<u32>) -> u32 { x.unwrap() }\n",
        expect: &[("no-unwrap", 4)],
    },
    Fixture {
        name: "exit is allowed in hdx-cli",
        path: "crates/hdx-cli/src/clean.rs",
        src: "fn bail() { std::process::exit(2); }\n",
        expect: &[],
    },
    // ---- lexer / mask regressions --------------------------------------
    Fixture {
        name: "cfg(not(test)) is production code and stays lintable",
        path: "crates/hdx-items/src/not_test.rs",
        src: "/// Docs.\n\
              #[cfg(not(test))]\n\
              pub fn live(x: Option<u32>) -> u32 { x.unwrap() }\n",
        expect: &[("no-unwrap", 3)],
    },
    Fixture {
        name: "inner #![cfg(test)] masks the whole file",
        path: "crates/hdx-items/src/inner_test.rs",
        src: "#![cfg(test)]\n\
              fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n\
              fn more() { panic!(\"still test-only\"); }\n",
        expect: &[],
    },
    Fixture {
        name: "nested test module with a brace-unbalanced raw string",
        path: "crates/hdx-items/src/nested_raw.rs",
        src: "/// Docs.\n\
              pub fn live(x: Option<u32>) -> u32 { x.unwrap() }\n\
              #[cfg(test)]\n\
              mod tests {\n\
              \x20   mod inner {\n\
              \x20       #[test]\n\
              \x20       fn t() {\n\
              \x20           let s = r#\"unbalanced { brace\"#;\n\
              \x20           let _ = (s, Some(1).unwrap());\n\
              \x20       }\n\
              \x20   }\n\
              }\n",
        expect: &[("no-unwrap", 2)],
    },
    // ---- unsafe-audit ---------------------------------------------------
    Fixture {
        name: "unsafe without SAFETY comment or ledger row: two violations",
        path: "crates/hdx-bench/src/unsafe_tp.rs",
        src: "pub fn f(p: *const u64) -> u64 {\n\
              \x20   unsafe { *p }\n\
              }\n",
        expect: &[("unsafe-audit", 2), ("unsafe-audit", 2)],
    },
    Fixture {
        name: "ledger row present but SAFETY comment deleted still fails",
        path: "crates/hdx-bench/src/unsafe_no_safety.rs",
        src: "pub unsafe fn raw(p: *const u64) -> u64 { *p }\n",
        expect: &[("unsafe-audit", 1)],
    },
    Fixture {
        name: "SAFETY comment present but ledger row deleted still fails",
        path: "crates/hdx-bench/src/unsafe_no_ledger.rs",
        src: "// SAFETY: fixture — caller guarantees `p` is valid.\n\
              pub unsafe fn raw(p: *const u64) -> u64 { *p }\n",
        expect: &[("unsafe-audit", 2)],
    },
    Fixture {
        name: "unsafe with SAFETY comment and ledger row is clean",
        path: "crates/hdx-bench/src/unsafe_ok.rs",
        src: "// SAFETY: fixture — caller guarantees `p` is valid\n\
              // for the duration of the call.\n\
              pub unsafe fn raw(p: *const u64) -> u64 { *p }\n",
        expect: &[],
    },
    Fixture {
        name: "unsafe inside #[cfg(test)] is exempt from the audit",
        path: "crates/hdx-bench/src/unsafe_test_only.rs",
        src: "pub fn normal() {}\n\
              #[cfg(test)]\n\
              mod tests {\n\
              \x20   fn t(p: *const u64) -> u64 { unsafe { *p } }\n\
              }\n",
        expect: &[],
    },
    // ---- atomics-ordering ----------------------------------------------
    Fixture {
        name: "bare Ordering::Relaxed needs an ORDERING justification",
        path: "crates/hdx-bench/src/relaxed_tp.rs",
        src: "use std::sync::atomic::{AtomicU64, Ordering};\n\
              pub fn load(a: &AtomicU64) -> u64 {\n\
              \x20   a.load(Ordering::Relaxed)\n\
              }\n",
        expect: &[("atomics-ordering", 3)],
    },
    Fixture {
        name: "justified Relaxed, SeqCst and cmp::Ordering are clean",
        path: "crates/hdx-bench/src/relaxed_tn.rs",
        src: "use std::sync::atomic::{AtomicU64, Ordering};\n\
              pub fn load(a: &AtomicU64) -> u64 {\n\
              \x20   // ORDERING: monotone counter, no cross-thread invariant.\n\
              \x20   a.load(Ordering::Relaxed)\n\
              }\n\
              pub fn strict(a: &AtomicU64) -> u64 { a.load(Ordering::SeqCst) }\n\
              pub fn cmp(x: u32, y: u32) -> std::cmp::Ordering { x.cmp(&y) }\n",
        expect: &[],
    },
    // ---- no-alloc-hot-path ---------------------------------------------
    Fixture {
        name: "allocation in a manifest-listed hot function",
        path: "crates/hdx-bench/src/hot.rs",
        src: "pub fn dfs(out: &mut Vec<u32>) {\n\
              \x20   out.push(1);\n\
              \x20   let s = format!(\"x{}\", 1);\n\
              \x20   let b = Box::new(s);\n\
              \x20   drop(b);\n\
              }\n\
              pub fn cold() -> Vec<u32> {\n\
              \x20   (0..4).collect()\n\
              }\n",
        expect: &[
            ("no-alloc-hot-path", 2),
            ("no-alloc-hot-path", 3),
            ("no-alloc-hot-path", 4),
        ],
    },
    Fixture {
        name: "impl-qualified hot function; ALLOC justification is honored",
        path: "crates/hdx-bench/src/hot.rs",
        src: "pub struct Planes;\n\
              impl Planes {\n\
              \x20   pub fn accum(&self, out: &mut Vec<u32>) {\n\
              \x20       // ALLOC: scratch pool, capacity reserved at setup.\n\
              \x20       out.push(1);\n\
              \x20       out.iter().for_each(|_| {});\n\
              \x20   }\n\
              }\n",
        expect: &[],
    },
    // ---- no-panic-path --------------------------------------------------
    Fixture {
        name: "unchecked indexing and unwrap in a panic-free kernel file",
        path: "crates/hdx-bench/src/kernel.rs",
        src: "pub fn k(xs: &[u64], i: usize) -> u64 {\n\
              \x20   let a = xs[i];\n\
              \x20   let b = xs.first().unwrap();\n\
              \x20   if a > *b { unreachable!(); }\n\
              \x20   a\n\
              }\n",
        expect: &[
            ("no-panic-path", 2),
            ("no-panic-path", 3),
            ("no-panic-path", 4),
        ],
    },
    Fixture {
        name: "get/iterators, asserts, BOUND-justified index and tests are clean",
        path: "crates/hdx-bench/src/kernel.rs",
        src: "pub fn k(xs: &[u64], i: usize) -> u64 {\n\
              \x20   assert!(i < xs.len());\n\
              \x20   let a = xs.get(i).copied().unwrap_or(0);\n\
              \x20   // BOUND: i < xs.len() asserted above.\n\
              \x20   let b = xs[i];\n\
              \x20   let ty: [u64; 2] = [a, b];\n\
              \x20   ty.iter().sum()\n\
              }\n\
              #[cfg(test)]\n\
              mod tests {\n\
              \x20   #[test]\n\
              \x20   fn t() { let xs = [1u64]; assert_eq!(xs[0], 1); }\n\
              }\n",
        expect: &[],
    },
];

/// Runs all fixtures and cross-cutting checks; prints a PASS/FAIL line per
/// check.
pub fn run() -> ExitCode {
    let manifests = match fixture_manifests() {
        Ok(m) => m,
        Err(e) => {
            println!("FAIL fixture manifests: {e}");
            return ExitCode::from(1);
        }
    };
    let mut failures = 0usize;
    for fx in FIXTURES {
        let mut got: Vec<Violation> = Vec::new();
        let mut doc_counts = BTreeMap::new();
        crate::check_file(fx.path, fx.src, &manifests, &mut doc_counts, &mut got);
        let mut got_pairs: Vec<(&str, u32)> = got.iter().map(|v| (v.rule, v.line)).collect();
        let mut want: Vec<(&str, u32)> = fx.expect.to_vec();
        got_pairs.sort_unstable();
        want.sort_unstable();
        if got_pairs == want {
            println!("PASS {}", fx.name);
        } else {
            failures += 1;
            println!("FAIL {}", fx.name);
            println!("  expected: {want:?}");
            println!("  got:      {got_pairs:?}");
            for v in &got {
                println!("    {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
            }
        }
    }
    type ExtraCheck = fn() -> Result<(), String>;
    let extra: &[(&str, ExtraCheck)] = &[
        (
            "doc-coverage ratchet fires below the floor",
            check_doc_coverage,
        ),
        (
            "SARIF output round-trips and agrees with JSON",
            check_sarif_roundtrip,
        ),
    ];
    for (name, check) in extra {
        match check() {
            Ok(()) => println!("PASS {name}"),
            Err(e) => {
                failures += 1;
                println!("FAIL {name}");
                println!("  {e}");
            }
        }
    }
    let total = FIXTURES.len() + extra.len();
    if failures == 0 {
        println!("hdx-lint self-test: {total} check(s) passed");
        ExitCode::SUCCESS
    } else {
        println!("hdx-lint self-test: {failures} of {total} check(s) FAILED");
        ExitCode::from(1)
    }
}

/// Parses the embedded fixture manifests (this is itself a parser test).
fn fixture_manifests() -> Result<Manifests, String> {
    let hotpaths = manifest::parse_hotpaths(FIXTURE_HOTPATHS)?;
    if hotpaths.entries.len() != 2 {
        return Err(format!(
            "expected 2 hotpath entries, parsed {}",
            hotpaths.entries.len()
        ));
    }
    let ledger = manifest::parse_unsafe_ledger(FIXTURE_LEDGER);
    if ledger.files.len() != 2 {
        return Err(format!(
            "expected 2 ledger files, parsed {:?}",
            ledger.files
        ));
    }
    Ok(Manifests {
        hotpaths,
        ledger,
        ratchet: manifest::DocRatchet::default(),
    })
}

/// The doc-coverage ratchet: a crate below its floor is flagged at the
/// manifest line; a crate at/above it is not.
fn check_doc_coverage() -> Result<(), String> {
    let ratchet = manifest::parse_doc_ratchet("# floors\nhdx-bench = 90\nhdx-cli = 50\n")?;
    let mut per_crate: BTreeMap<String, DocCounts> = BTreeMap::new();
    // 50% coverage for both crates: hdx-bench (floor 90) must trip,
    // hdx-cli (floor 50) must not.
    for krate in ["hdx-bench", "hdx-cli"] {
        per_crate.insert(
            krate.to_string(),
            DocCounts {
                total: 4,
                documented: 2,
            },
        );
    }
    let mut out = Vec::new();
    semantic::rule_doc_coverage(&per_crate, &ratchet, "doc_ratchet.toml", &mut out);
    let got: Vec<(&str, u32)> = out.iter().map(|v| (v.rule, v.line)).collect();
    if got != [("doc-coverage", 2)] {
        return Err(format!("expected [(doc-coverage, 2)], got {got:?}"));
    }
    if !out[0].message.contains("50.0%") || !out[0].message.contains("90%") {
        return Err(format!("unexpected message: {}", out[0].message));
    }
    Ok(())
}

/// Renders a violation list as both JSON and SARIF, parses both back with
/// the same reader, and checks the SARIF log is structurally valid 2.1.0
/// and agrees with the JSON report result-for-result.
fn check_sarif_roundtrip() -> Result<(), String> {
    let violations = vec![
        Violation {
            rule: "no-unwrap",
            file: "crates/hdx-mining/src/x.rs".to_string(),
            line: 42,
            message: "`.unwrap()` with \"quotes\" and\nnewline".to_string(),
        },
        Violation {
            rule: "atomics-ordering",
            file: "crates/hdx-governor/src/lib.rs".to_string(),
            line: 7,
            message: "`Ordering::Relaxed` without an `// ORDERING:` justification".to_string(),
        },
    ];

    let sarif_doc = sarif::parse(&sarif::render(&violations))
        .map_err(|e| format!("SARIF does not parse: {e}"))?;
    let json_doc = sarif::parse(&crate::render_report(&violations, 0, 2, 0))
        .map_err(|e| format!("JSON report does not parse: {e}"))?;

    // Structural SARIF 2.1.0 checks.
    if sarif_doc.get("version").and_then(|v| v.as_str()) != Some("2.1.0") {
        return Err("missing/wrong SARIF version".to_string());
    }
    if sarif_doc
        .get("$schema")
        .and_then(|v| v.as_str())
        .is_none_or(|s| !s.contains("sarif-2.1.0"))
    {
        return Err("missing $schema".to_string());
    }
    let runs = sarif_doc
        .get("runs")
        .and_then(|v| v.as_array())
        .ok_or("missing runs")?;
    let run = runs.first().ok_or("empty runs")?;
    let driver = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .ok_or("missing tool.driver")?;
    if driver.get("name").and_then(|v| v.as_str()) != Some("hdx-lint") {
        return Err("missing driver name".to_string());
    }
    let rule_table = driver
        .get("rules")
        .and_then(|v| v.as_array())
        .ok_or("missing driver.rules")?;
    if rule_table.len() != crate::rules::RULES.len() {
        return Err(format!(
            "rule table has {} entries, expected {}",
            rule_table.len(),
            crate::rules::RULES.len()
        ));
    }
    let results = run
        .get("results")
        .and_then(|v| v.as_array())
        .ok_or("missing results")?;

    // 1:1 agreement with the JSON report.
    let json_violations = json_doc
        .get("violations")
        .and_then(|v| v.as_array())
        .ok_or("missing violations in JSON report")?;
    if results.len() != json_violations.len() {
        return Err(format!(
            "{} SARIF results vs {} JSON violations",
            results.len(),
            json_violations.len()
        ));
    }
    for (r, j) in results.iter().zip(json_violations) {
        let rule = r.get("ruleId").and_then(|v| v.as_str());
        let message = r
            .get("message")
            .and_then(|m| m.get("text"))
            .and_then(|v| v.as_str());
        let loc = r
            .get("locations")
            .and_then(|v| v.as_array())
            .and_then(|a| a.first())
            .and_then(|l| l.get("physicalLocation"))
            .ok_or("missing physicalLocation")?;
        let uri = loc
            .get("artifactLocation")
            .and_then(|a| a.get("uri"))
            .and_then(|v| v.as_str());
        let line = loc
            .get("region")
            .and_then(|reg| reg.get("startLine"))
            .and_then(|v| v.as_num());
        if rule != j.get("rule").and_then(|v| v.as_str()) {
            return Err(format!("ruleId mismatch: {rule:?}"));
        }
        if uri != j.get("file").and_then(|v| v.as_str()) {
            return Err(format!("uri mismatch: {uri:?}"));
        }
        if line != j.get("line").and_then(|v| v.as_num()) {
            return Err(format!("startLine mismatch: {line:?}"));
        }
        if message != j.get("message").and_then(|v| v.as_str()) {
            return Err(format!("message mismatch: {message:?}"));
        }
    }
    Ok(())
}
