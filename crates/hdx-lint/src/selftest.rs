//! Built-in self-test (`hdx-lint --self-test`).
//!
//! Runs the rule passes over embedded fixture snippets with deliberately
//! planted violations — an `unwrap()` in "hdx-mining", a float `==` in
//! "hdx-stats", an undocumented `pub fn`, a `process::exit` — and negative
//! fixtures that must stay clean. This guards the analyzer itself: a lexer
//! or masking regression that silently stops reporting would otherwise look
//! like a green run.

use crate::lexer;
use crate::rules::{self, Violation};
use std::process::ExitCode;

struct Fixture {
    name: &'static str,
    /// Pretend workspace-relative path (controls which rules apply).
    path: &'static str,
    src: &'static str,
    /// Expected `(rule, line)` pairs, in any order.
    expect: &'static [(&'static str, u32)],
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "planted unwrap/expect/panic in a library crate",
        path: "crates/hdx-mining/src/planted.rs",
        src: "//! Module docs.\n\
              /// Docs.\n\
              pub fn f(x: Option<u32>) -> u32 {\n\
              \x20   let y = x.unwrap();\n\
              \x20   let z = x.expect(\"msg\");\n\
              \x20   if y > z { panic!(\"boom\"); }\n\
              \x20   y\n\
              }\n",
        expect: &[("no-unwrap", 4), ("no-unwrap", 5), ("no-unwrap", 6)],
    },
    Fixture {
        name: "planted float == in hdx-stats",
        path: "crates/hdx-stats/src/planted.rs",
        src: "/// Docs.\n\
              pub fn g(t: f64) -> bool {\n\
              \x20   if t == 0.0 { return true; }\n\
              \x20   t != 1.5e-3\n\
              }\n",
        expect: &[("no-float-eq", 3), ("no-float-eq", 4)],
    },
    Fixture {
        name: "planted undocumented pub items",
        path: "crates/hdx-core/src/planted.rs",
        src: "//! Module docs.\n\
              pub fn naked() {}\n\
              /// Documented.\n\
              pub struct Ok1;\n\
              #[derive(Debug)]\n\
              pub struct Naked2;\n\
              pub(crate) fn internal() {}\n",
        expect: &[("missing-docs", 2), ("missing-docs", 6)],
    },
    Fixture {
        name: "planted process::exit in a non-cli crate",
        path: "crates/hdx-data/src/planted.rs",
        src: "/// Docs.\n\
              pub fn h() {\n\
              \x20   std::process::exit(1);\n\
              }\n",
        expect: &[("no-exit", 3)],
    },
    Fixture {
        name: "test code, doc examples and unwrap_or are exempt",
        path: "crates/hdx-items/src/clean.rs",
        src: "//! Module docs with `x.unwrap()` in prose.\n\
              /// ```\n\
              /// let v = Some(1).unwrap();\n\
              /// ```\n\
              pub fn k(x: Option<f64>) -> f64 {\n\
              \x20   x.unwrap_or(0.0)\n\
              }\n\
              #[cfg(test)]\n\
              mod tests {\n\
              \x20   #[test]\n\
              \x20   fn t() {\n\
              \x20       let v: Option<f64> = Some(0.0);\n\
              \x20       assert!(v.unwrap() == 0.0);\n\
              \x20       panic!(\"fine in tests\");\n\
              \x20   }\n\
              }\n",
        expect: &[],
    },
    Fixture {
        name: "infinity comparisons and non-literal float == are not flagged",
        path: "crates/hdx-items/src/clean2.rs",
        src: "/// Docs.\n\
              pub fn unbounded(lo: f64, hi: f64) -> bool {\n\
              \x20   lo == f64::NEG_INFINITY && hi == f64::INFINITY\n\
              }\n",
        expect: &[],
    },
    Fixture {
        name: "cfg(test) fn followed by more code keeps masking scoped",
        path: "crates/hdx-items/src/clean3.rs",
        src: "#[cfg(test)]\n\
              fn helper() { let _ = Some(1).unwrap(); }\n\
              /// Docs.\n\
              pub fn live(x: Option<u32>) -> u32 { x.unwrap() }\n",
        expect: &[("no-unwrap", 4)],
    },
    Fixture {
        name: "exit is allowed in hdx-cli",
        path: "crates/hdx-cli/src/clean.rs",
        src: "fn bail() { std::process::exit(2); }\n",
        expect: &[],
    },
];

/// Runs all fixtures; prints a PASS/FAIL line per fixture.
pub fn run() -> ExitCode {
    let mut failures = 0usize;
    for fx in FIXTURES {
        let mut got: Vec<Violation> = Vec::new();
        check_fixture(fx.path, fx.src, &mut got);
        let mut got_pairs: Vec<(&str, u32)> = got.iter().map(|v| (v.rule, v.line)).collect();
        let mut want: Vec<(&str, u32)> = fx.expect.to_vec();
        got_pairs.sort_unstable();
        want.sort_unstable();
        if got_pairs == want {
            println!("PASS {}", fx.name);
        } else {
            failures += 1;
            println!("FAIL {}", fx.name);
            println!("  expected: {want:?}");
            println!("  got:      {got_pairs:?}");
            for v in &got {
                println!("    {}:{} [{}] {}", v.file, v.line, v.rule, v.message);
            }
        }
    }
    if failures == 0 {
        println!("hdx-lint self-test: {} fixture(s) passed", FIXTURES.len());
        ExitCode::SUCCESS
    } else {
        println!("hdx-lint self-test: {failures} fixture(s) FAILED");
        ExitCode::from(1)
    }
}

/// Mirrors `main::check_file`'s rule dispatch for a fixture path.
fn check_fixture(rel: &str, src: &str, out: &mut Vec<Violation>) {
    let toks = lexer::lex(src);
    let mask = rules::test_mask(&toks);
    let krate = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or(".");
    let is_lib = matches!(
        krate,
        "hdx-core" | "hdx-mining" | "hdx-items" | "hdx-stats" | "hdx-discretize" | "hdx-data"
    );
    if is_lib {
        rules::rule_no_unwrap(&toks, &mask, rel, out);
        rules::rule_no_float_eq(&toks, &mask, rel, out);
        rules::rule_missing_docs(&toks, &mask, rel, out);
    }
    if krate != "hdx-cli" {
        rules::rule_no_exit(&toks, &mask, rel, out);
    }
}
