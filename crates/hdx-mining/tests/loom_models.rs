//! hdx-loom models of the work-stealing deque behind the parallel vertical
//! miner, run by `cargo xtask sanitize`:
//!
//! ```text
//! RUSTFLAGS="--cfg hdx_loom" cargo test -p hdx-mining --test loom_models
//! ```
//!
//! Under `--cfg hdx_loom` the crate's `sync` facade swaps its atomics for
//! the modeled twins, so these tests drive the *real* [`WorkDeque`]
//! push/pop/steal code through every interleaving of its atomic operations.
//! Built as an empty test crate without the cfg.
#![cfg(hdx_loom)]

use hdx_mining::sched::{Steal, WorkDeque};
use std::sync::Arc;

/// Drains a thief's view of the deque, retrying on lost races.
fn steal_all(deque: &WorkDeque) -> Vec<usize> {
    let mut got = Vec::new();
    loop {
        match deque.steal() {
            Steal::Stolen(item) => got.push(item),
            Steal::Retry => {}
            Steal::Empty => return got,
        }
    }
}

#[test]
fn concurrent_push_and_steal_never_lose_or_duplicate() {
    hdx_loom::model(|| {
        let deque = Arc::new(WorkDeque::new(2));
        let victim = Arc::clone(&deque);
        let thief = hdx_loom::thread::spawn(move || steal_all(&victim));
        deque.push(10);
        deque.push(11);
        let mut seen = thief.join().expect("thief panicked");
        // Whatever the thief missed is still in the deque for the owner.
        while let Some(item) = deque.pop() {
            seen.push(item);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![10, 11], "an item was lost or duplicated");
    });
}

#[test]
fn last_item_goes_to_exactly_one_of_owner_and_thief() {
    hdx_loom::model(|| {
        let deque = Arc::new(WorkDeque::new(1));
        deque.push(7);
        let victim = Arc::clone(&deque);
        let thief = hdx_loom::thread::spawn(move || loop {
            match victim.steal() {
                Steal::Stolen(item) => return Some(item),
                Steal::Retry => {}
                Steal::Empty => return None,
            }
        });
        let popped = deque.pop();
        let stolen = thief.join().expect("thief panicked");
        match (popped, stolen) {
            (Some(7), None) | (None, Some(7)) => {}
            other => panic!("last item claimed {other:?}, want exactly once"),
        }
        assert_eq!(deque.pop(), None, "deque must stay empty after the race");
    });
}

#[test]
fn two_thieves_claim_disjoint_items() {
    hdx_loom::model(|| {
        let deque = Arc::new(WorkDeque::new(2));
        deque.push(1);
        deque.push(2);
        let v1 = Arc::clone(&deque);
        let v2 = Arc::clone(&deque);
        // One steal attempt each keeps the interleaving space tractable; a
        // lost race (`Retry`) leaves the item for the owner's drain below.
        let one_attempt = |victim: Arc<WorkDeque>| {
            move || match victim.steal() {
                Steal::Stolen(item) => Some(item),
                Steal::Retry | Steal::Empty => None,
            }
        };
        let t1 = hdx_loom::thread::spawn(one_attempt(v1));
        let t2 = hdx_loom::thread::spawn(one_attempt(v2));
        let mut seen: Vec<usize> = [t1.join(), t2.join()]
            .into_iter()
            .flat_map(|r| r.expect("thief panicked"))
            .collect();
        while let Some(item) = deque.pop() {
            seen.push(item);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 2], "thieves overlapped or dropped an item");
    });
}
