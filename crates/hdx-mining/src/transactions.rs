//! Transaction encoding: rows → sorted item-id lists (+ outcome payloads).

use std::collections::{HashMap, HashSet};

use hdx_data::{AttributeKind, DataFrame, NULL_CODE};
use hdx_items::{HierarchySet, ItemCatalog, ItemId, Predicate};
use hdx_stats::{Outcome, StatAccum};

/// An encoded transaction database: per row, the sorted ids of the items the
/// row satisfies, plus the row's outcome.
///
/// *Base* encoding uses only hierarchy leaves (one item per attribute, the
/// classic DivExplorer / Slice Finder / SliceLine setting). *Generalized*
/// encoding adds every ancestor of the matching leaf (Srikant–Agrawal
/// extended transactions), enabling generalized itemset mining.
#[derive(Debug, Clone)]
pub struct Transactions {
    rows: Vec<Vec<ItemId>>,
    outcomes: Vec<Outcome>,
}

impl Transactions {
    /// Encodes with leaf items only.
    pub fn encode_base(
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
    ) -> Self {
        Self::encode(df, catalog, hierarchies, outcomes, false)
    }

    /// Encodes with leaf items plus all their hierarchy ancestors.
    pub fn encode_generalized(
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
    ) -> Self {
        Self::encode(df, catalog, hierarchies, outcomes, true)
    }

    fn encode(
        df: &DataFrame,
        catalog: &ItemCatalog,
        hierarchies: &HierarchySet,
        outcomes: &[Outcome],
        generalized: bool,
    ) -> Self {
        assert_eq!(outcomes.len(), df.n_rows(), "outcomes not parallel to rows");
        let n = df.n_rows();
        let mut rows: Vec<Vec<ItemId>> = vec![Vec::new(); n];

        for hierarchy in hierarchies.iter() {
            let attr = hierarchy.attr();
            // Chain of items to add per matching leaf.
            let chain: HashMap<ItemId, Vec<ItemId>> = hierarchy
                .leaves()
                .into_iter()
                .map(|leaf| {
                    let items = if generalized {
                        hierarchy.self_and_ancestors(leaf)
                    } else {
                        vec![leaf]
                    };
                    (leaf, items)
                })
                .collect();

            match df.schema().kind(attr) {
                AttributeKind::Categorical => {
                    // code → leaf lookup.
                    let mut by_code: HashMap<u32, ItemId> = HashMap::new();
                    for leaf in hierarchy.leaves() {
                        if let Predicate::CatEq(code) = catalog.item(leaf).predicate() {
                            by_code.insert(*code, leaf);
                        }
                    }
                    let codes = df.categorical(attr).codes();
                    for (row, &code) in codes.iter().enumerate() {
                        if code == NULL_CODE {
                            continue;
                        }
                        if let Some(leaf) = by_code.get(&code) {
                            rows[row].extend_from_slice(&chain[leaf]);
                        }
                    }
                }
                AttributeKind::Continuous => {
                    // Leaves are disjoint (lo, hi] intervals; sort by hi and
                    // binary-search each value.
                    let mut leaves: Vec<(f64, f64, ItemId)> = hierarchy
                        .leaves()
                        .into_iter()
                        .filter_map(|leaf| {
                            catalog.item(leaf).interval().map(|j| (j.lo, j.hi, leaf))
                        })
                        .collect();
                    leaves.sort_by(|a, b| a.1.total_cmp(&b.1));
                    let values = df.continuous(attr).values();
                    for (row, &v) in values.iter().enumerate() {
                        if v.is_nan() {
                            continue;
                        }
                        // First leaf with hi >= v.
                        let pos = leaves.partition_point(|&(_, hi, _)| hi < v);
                        if let Some(&(lo, hi, leaf)) = leaves.get(pos) {
                            if v > lo && v <= hi {
                                rows[row].extend_from_slice(&chain[&leaf]);
                            }
                        }
                    }
                }
            }
        }
        for items in &mut rows {
            items.sort_unstable();
            items.dedup();
        }
        Self {
            rows,
            outcomes: outcomes.to_vec(),
        }
    }

    /// Builds transactions directly from item lists (tests, ablations).
    ///
    /// # Panics
    /// Panics when rows and outcomes lengths differ.
    pub fn from_rows(rows: Vec<Vec<ItemId>>, outcomes: Vec<Outcome>) -> Self {
        assert_eq!(rows.len(), outcomes.len(), "rows/outcomes length mismatch");
        let mut rows = rows;
        for items in &mut rows {
            items.sort_unstable();
            items.dedup();
        }
        Self { rows, outcomes }
    }

    /// Number of transactions (dataset rows).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// The item list of row `row` (sorted, unique).
    #[inline]
    pub fn items(&self, row: usize) -> &[ItemId] {
        &self.rows[row]
    }

    /// The outcome of row `row`.
    #[inline]
    pub fn outcome(&self, row: usize) -> Outcome {
        self.outcomes[row]
    }

    /// All outcomes.
    #[inline]
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// Statistic accumulator over the whole database (the global `f(D)`).
    pub fn global_accum(&self) -> StatAccum {
        StatAccum::from_outcomes(&self.outcomes)
    }

    /// Per-item statistics over the database: for each distinct item, the
    /// accumulator of the rows containing it (the single-item "L1" pass used
    /// by polarity pruning, §V-C).
    pub fn item_stats(&self) -> Vec<(ItemId, StatAccum)> {
        let table_len = self.max_item_id().map_or(0, |i| i.index() + 1);
        let mut accums: Vec<StatAccum> = vec![StatAccum::new(); table_len];
        for (row, items) in self.rows.iter().enumerate() {
            let outcome = self.outcomes[row];
            for &item in items {
                accums[item.index()].push(outcome);
            }
        }
        accums
            .into_iter()
            .enumerate()
            .filter(|(_, acc)| acc.count() > 0)
            .map(|(i, acc)| (ItemId(i as u32), acc))
            .collect()
    }

    /// The distinct items appearing in any transaction, ascending.
    pub fn distinct_items(&self) -> Vec<ItemId> {
        let table_len = self.max_item_id().map_or(0, |i| i.index() + 1);
        let mut present = vec![false; table_len];
        for row in &self.rows {
            for &item in row {
                present[item.index()] = true;
            }
        }
        present
            .into_iter()
            .enumerate()
            .filter(|&(_, p)| p)
            .map(|(i, _)| ItemId(i as u32))
            .collect()
    }

    /// The largest item id in any transaction, or `None` when no row has
    /// items. Sizes the miners' dense `ItemId`-indexed tables.
    pub fn max_item_id(&self) -> Option<ItemId> {
        // Rows are sorted, so each row's maximum is its last element.
        self.rows.iter().filter_map(|r| r.last()).copied().max()
    }

    /// A copy keeping only the items in `allowed` (used by polarity
    /// pruning).
    pub fn restrict(&self, allowed: &HashSet<ItemId>) -> Self {
        Self {
            rows: self
                .rows
                .iter()
                .map(|items| {
                    items
                        .iter()
                        .copied()
                        .filter(|i| allowed.contains(i))
                        .collect()
                })
                .collect(),
            outcomes: self.outcomes.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::{Interval, Item, ItemHierarchy};

    fn setup() -> (DataFrame, ItemCatalog, HierarchySet, Vec<Outcome>) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let s = b.add_categorical("s").unwrap();
        for (v, lvl) in [
            (Some(10.0), Some("a")),
            (Some(30.0), Some("b")),
            (Some(60.0), Some("a")),
            (None, Some("b")),
            (Some(90.0), None),
        ] {
            b.push_row(vec![
                v.map_or(Value::Null, Value::Num),
                lvl.map_or(Value::Null, |l| Value::Cat(l.into())),
            ])
            .unwrap();
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let mut hx = ItemHierarchy::new(x);
        let le50 = catalog.intern(Item::range(x, Interval::at_most(50.0), "x"));
        let gt50 = catalog.intern(Item::range(x, Interval::greater_than(50.0), "x"));
        let le20 = catalog.intern(Item::range(x, Interval::at_most(20.0), "x"));
        let m2050 = catalog.intern(Item::range(x, Interval::new(20.0, 50.0), "x"));
        hx.add_root(le50);
        hx.add_root(gt50);
        hx.add_child(le50, le20);
        hx.add_child(le50, m2050);
        let col = df.categorical(s).clone();
        let cat_items: Vec<ItemId> = (0..col.n_levels() as u32)
            .map(|c| catalog.intern(Item::cat_eq(s, c, "s", col.level(c))))
            .collect();
        let mut hs = HierarchySet::new();
        hs.push(hx);
        hs.push(ItemHierarchy::flat(s, cat_items));
        let outcomes = vec![
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Undefined,
            Outcome::Bool(true),
            Outcome::Bool(false),
        ];
        (df, catalog, hs, outcomes)
    }

    #[test]
    fn base_encoding_one_item_per_attr() {
        let (df, catalog, hs, outcomes) = setup();
        let t = Transactions::encode_base(&df, &catalog, &hs, &outcomes);
        assert_eq!(t.n_rows(), 5);
        // Row 0: x=10 → leaf x<=20; s=a.
        let labels: Vec<&str> = t.items(0).iter().map(|&i| catalog.label(i)).collect();
        assert!(labels.contains(&"x<=20"));
        assert!(labels.contains(&"s=a"));
        assert_eq!(labels.len(), 2);
        // Row 2: x=60 → leaf x>50 (an unrefined root is its own leaf).
        let labels2: Vec<&str> = t.items(2).iter().map(|&i| catalog.label(i)).collect();
        assert!(labels2.contains(&"x>50"));
        // Row 3: null x → only categorical item.
        assert_eq!(t.items(3).len(), 1);
        // Row 4: null s → only continuous item.
        let labels4: Vec<&str> = t.items(4).iter().map(|&i| catalog.label(i)).collect();
        assert_eq!(labels4, vec!["x>50"]);
    }

    #[test]
    fn generalized_encoding_adds_ancestors() {
        let (df, catalog, hs, outcomes) = setup();
        let t = Transactions::encode_generalized(&df, &catalog, &hs, &outcomes);
        // Row 0: x=10 → x<=20 and its ancestor x<=50.
        let labels: Vec<&str> = t.items(0).iter().map(|&i| catalog.label(i)).collect();
        assert!(labels.contains(&"x<=20"));
        assert!(labels.contains(&"x<=50"));
        assert!(labels.contains(&"s=a"));
        assert_eq!(labels.len(), 3);
        // Items are sorted and unique.
        let ids = t.items(0);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn global_accum_covers_all_rows() {
        let (df, catalog, hs, outcomes) = setup();
        let t = Transactions::encode_base(&df, &catalog, &hs, &outcomes);
        let g = t.global_accum();
        assert_eq!(g.count(), 5);
        assert_eq!(g.valid_count(), 4);
        assert_eq!(g.statistic(), Some(0.5));
    }

    #[test]
    fn restrict_drops_items() {
        let (df, catalog, hs, outcomes) = setup();
        let t = Transactions::encode_generalized(&df, &catalog, &hs, &outcomes);
        let keep: HashSet<ItemId> = catalog
            .ids()
            .filter(|&i| catalog.label(i).starts_with("s="))
            .collect();
        let r = t.restrict(&keep);
        assert_eq!(r.n_rows(), t.n_rows());
        for row in 0..r.n_rows() {
            assert!(r
                .items(row)
                .iter()
                .all(|&i| catalog.label(i).starts_with("s=")));
        }
        assert_eq!(r.outcomes(), t.outcomes());
    }

    #[test]
    fn item_stats_match_manual_count() {
        let (df, catalog, hs, outcomes) = setup();
        let t = Transactions::encode_base(&df, &catalog, &hs, &outcomes);
        let stats = t.item_stats();
        // s=a appears in rows 0 and 2 → outcomes Bool(true), Undefined.
        let sa = catalog.find_by_label("s=a").unwrap();
        let (_, acc) = stats.iter().find(|&&(i, _)| i == sa).unwrap();
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.valid_count(), 1);
        assert_eq!(acc.statistic(), Some(1.0));
        // Sorted by item id.
        assert!(stats.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn distinct_items_sorted() {
        let (df, catalog, hs, outcomes) = setup();
        let t = Transactions::encode_generalized(&df, &catalog, &hs, &outcomes);
        let d = t.distinct_items();
        assert!(d.windows(2).all(|w| w[0] < w[1]));
        // x(20,50] appears (row 1), all others too except none missing.
        assert!(d.len() >= 5);
    }

    #[test]
    fn from_rows_normalises() {
        let rows = vec![vec![ItemId(3), ItemId(1), ItemId(3)]];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true)]);
        assert_eq!(t.items(0), &[ItemId(1), ItemId(3)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_rows_checks_lengths() {
        let _ = Transactions::from_rows(vec![vec![]], vec![]);
    }
}
