//! FP-Growth (Han–Pei–Yin) with per-node statistic accumulation, extended to
//! generalized transactions in the style of FP-tax.
//!
//! Each FP-tree node accumulates the [`StatAccum`] of every transaction
//! routed through it, so conditional pattern bases propagate full statistics
//! exactly like counts — FP-Growth's accumulators are additive tree merges
//! and never iterate rows, which is why this miner needs no cover-bitset
//! kernel. Its hot structures are dense instead: item frequencies and ranks
//! are `ItemId`-indexed arrays (not hash maps), and the per-attribute filter
//! applied when extracting conditional bases uses a precomputed attribute
//! table plus an [`AttrSet`] mask rather than catalog lookups. Generalized
//! transactions put an item *and its ancestors* on the same path; that
//! filter keeps ancestor/descendant (and any same-attribute) pairs out of
//! mined itemsets.

use hdx_checkpoint::{Checkpointer, MiningProgress};
use hdx_governor::{fail_point, Governor};
use hdx_items::{ItemCatalog, ItemId, Itemset};
use hdx_stats::StatAccum;

use crate::attrs::AttrSet;
use crate::checkpoint::{progress_snapshot, restore_itemset};
use crate::result::{FrequentItemset, MiningResult};
use crate::transactions::Transactions;
use crate::MiningConfig;

/// Approximate heap bytes of one FP-tree node, charged against the
/// governor's candidate-byte budget as trees are built.
const FP_NODE_BYTES: u64 = std::mem::size_of::<FpNode>() as u64;

/// Rank sentinel for items below the frequency threshold.
const NO_RANK: u32 = u32::MAX;

struct FpNode {
    item: ItemId,
    parent: usize,
    accum: StatAccum,
    children: Vec<(ItemId, usize)>,
}

struct FpTree {
    /// Arena; index 0 is the root (dummy item).
    nodes: Vec<FpNode>,
    /// Frequent items in descending (count, then ascending id) order, each
    /// with the indices of its nodes.
    header: Vec<(ItemId, Vec<usize>)>,
}

impl FpTree {
    /// Builds a tree from weighted paths, keeping only items whose summed
    /// count reaches `min_count`. `n_items` bounds every item id in `paths`
    /// and sizes the dense frequency/rank tables.
    ///
    /// Polls the governor per path; when it trips mid-build the returned
    /// tree is *partial* (undercounted accumulators) and must not be mined —
    /// callers check [`Governor::is_tripped`] before mining.
    fn build(
        paths: &[(Vec<ItemId>, StatAccum)],
        min_count: u64,
        n_items: usize,
        governor: &Governor,
    ) -> FpTree {
        // Pass 1: item frequencies into a dense id-indexed table.
        let mut freq: Vec<u64> = vec![0; n_items];
        for (items, accum) in paths {
            for &item in items {
                freq[item.index()] += accum.count();
            }
        }
        let mut order: Vec<(ItemId, u64)> = freq
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= min_count)
            .map(|(i, &c)| (ItemId(i as u32), c))
            .collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut rank: Vec<u32> = vec![NO_RANK; n_items];
        for (r, &(item, _)) in order.iter().enumerate() {
            rank[item.index()] = r as u32;
        }

        let mut tree = FpTree {
            nodes: vec![FpNode {
                item: ItemId(u32::MAX),
                parent: 0,
                accum: StatAccum::new(),
                children: Vec::new(),
            }],
            header: order.iter().map(|&(item, _)| (item, Vec::new())).collect(),
        };

        // Pass 2: insert paths.
        let mut sorted_items: Vec<ItemId> = Vec::new();
        for (items, accum) in paths {
            if !governor.keep_going() {
                return tree;
            }
            sorted_items.clear();
            sorted_items.extend(items.iter().copied().filter(|i| rank[i.index()] != NO_RANK));
            sorted_items.sort_by_key(|i| rank[i.index()]);
            let mut cur = 0usize;
            for &item in &sorted_items {
                let next = match tree.nodes[cur].children.iter().find(|&&(ci, _)| ci == item) {
                    Some(&(_, idx)) => idx,
                    None => {
                        if !governor.record_candidate_bytes(FP_NODE_BYTES) {
                            return tree;
                        }
                        let idx = tree.nodes.len();
                        tree.nodes.push(FpNode {
                            item,
                            parent: cur,
                            accum: StatAccum::new(),
                            children: Vec::new(),
                        });
                        tree.nodes[cur].children.push((item, idx));
                        tree.header[rank[item.index()] as usize].1.push(idx);
                        idx
                    }
                };
                tree.nodes[next].accum.merge(accum);
                cur = next;
            }
        }
        tree
    }

    fn is_empty(&self) -> bool {
        self.header.is_empty()
    }

    /// The path of items from `node`'s parent up to (excluding) the root.
    fn prefix_path(&self, node: usize) -> Vec<ItemId> {
        let mut path = Vec::new();
        let mut cur = self.nodes[node].parent;
        while cur != 0 {
            path.push(self.nodes[cur].item);
            cur = self.nodes[cur].parent;
        }
        path
    }
}

/// Mines all frequent itemsets via FP-Growth.
pub fn fpgrowth(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    fpgrowth_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`fpgrowth`] under a [`Governor`]. Tree construction charges node bytes
/// against the candidate-byte budget; a tree whose build was interrupted is
/// never mined (its accumulators would be undercounted), so every emitted
/// itemset is exact and a truncated result is a subset of the unbounded one.
pub fn fpgrowth_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    fpgrowth_run(transactions, catalog, config, governor, None, None)
}

/// The shared FP-Growth driver behind [`fpgrowth_governed`] and
/// [`crate::mine_governed_ckpt`]: the bottom-up header traversal of the
/// *initial* tree is driven here so a checkpoint boundary can be recorded
/// after each fully-mined header subtree (cursor = subtrees completed);
/// resume rebuilds the deterministic tree and skips the first `cursor`
/// entries.
pub(crate) fn fpgrowth_run(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
    mut ckpt: Option<&mut Checkpointer>,
    resume: Option<&MiningProgress>,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);

    fail_point!("mining::fpgrowth");

    let n_items = transactions
        .max_item_id()
        .map_or(0, |i| i.index() + 1)
        .max(catalog.len());
    let attr_table: Vec<u16> = catalog.attr_table().iter().map(|a| a.0).collect();

    let paths: Vec<(Vec<ItemId>, StatAccum)> = (0..n)
        .map(|row| {
            let mut acc = StatAccum::new();
            acc.push(transactions.outcome(row));
            (transactions.items(row).to_vec(), acc)
        })
        .collect();
    let tree = FpTree::build(&paths, min_count, n_items, governor);

    let mut out = match resume {
        Some(progress) => progress.emitted.iter().map(restore_itemset).collect(),
        None => Vec::new(),
    };
    // A tree interrupted mid-build has undercounted accumulators — skip
    // mining entirely (the empty result is trivially a valid subset).
    if !governor.is_tripped() {
        let ctx = MineCtx {
            attr_table: &attr_table,
            min_count,
            max_len: config.max_len,
            n_items,
            governor,
        };
        let mut suffix: Vec<ItemId> = Vec::new();
        let mut suffix_attrs = AttrSet::new();
        // Drive the initial tree's bottom-up header traversal here (instead
        // of inside `mine_tree`) so each fully-mined top-level subtree is a
        // checkpoint boundary.
        let total = tree.header.len();
        let done = resume.map_or(0, |p| (p.cursor as usize).min(total));
        for processed in done..total {
            let entry = total - 1 - processed;
            if !governor.keep_going()
                || !mine_header_entry(&ctx, &tree, entry, &mut suffix, &mut suffix_attrs, &mut out)
            {
                break;
            }
            // A trip inside the recursion leaves this subtree partially
            // mined; only a clean completion is a boundary.
            if governor.is_tripped() {
                break;
            }
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.at_boundary(progress_snapshot(
                    "fpgrowth",
                    (processed + 1) as u64,
                    n,
                    &out,
                    &[],
                    governor,
                ));
            }
        }
    }

    MiningResult::complete(out, n, transactions.global_accum()).governed_by(governor)
}

/// Read-only recursion context for [`mine_tree`].
struct MineCtx<'a> {
    /// Raw attribute id per item id (dense, from the catalog).
    attr_table: &'a [u16],
    min_count: u64,
    max_len: Option<usize>,
    /// Dense table size for conditional-tree builds.
    n_items: usize,
    governor: &'a Governor,
}

fn mine_tree(
    ctx: &MineCtx<'_>,
    tree: &FpTree,
    suffix: &mut Vec<ItemId>,
    suffix_attrs: &mut AttrSet,
    out: &mut Vec<FrequentItemset>,
) {
    // Least-frequent first (classic bottom-up header traversal).
    for entry in (0..tree.header.len()).rev() {
        if !ctx.governor.keep_going()
            || !mine_header_entry(ctx, tree, entry, suffix, suffix_attrs, out)
        {
            return;
        }
    }
}

/// Mines the subtree of one header entry of `tree` (emission + conditional
/// recursion). Returns `false` when the governor refused further work so
/// callers stop traversing; `true` covers both "mined" and "pruned".
fn mine_header_entry(
    ctx: &MineCtx<'_>,
    tree: &FpTree,
    entry: usize,
    suffix: &mut Vec<ItemId>,
    suffix_attrs: &mut AttrSet,
    out: &mut Vec<FrequentItemset>,
) -> bool {
    let (item, node_indices) = &tree.header[entry];
    let attr = ctx.attr_table[item.index()];
    debug_assert!(
        !suffix_attrs.contains(attr),
        "conditional base filtering must exclude suffix attributes"
    );
    let mut accum = StatAccum::new();
    for &idx in node_indices {
        accum.merge(&tree.nodes[idx].accum);
    }
    hdx_obs::counter_add!(MineCandidatesGenerated, 1);
    if accum.count() < ctx.min_count {
        hdx_obs::counter_add!(MineCandidatesPrunedSupport, 1);
        return true;
    }
    // Charge before emitting: a refused charge emits nothing, so every
    // emitted itemset keeps its exact accumulator.
    if !ctx.governor.record_itemsets(1) {
        return false;
    }
    let mut itemset_items: Vec<ItemId> = suffix.clone();
    itemset_items.push(*item);
    itemset_items.sort_unstable();
    out.push(FrequentItemset {
        itemset: Itemset::from_sorted_unchecked(itemset_items),
        accum,
    });

    if ctx.max_len.is_some_and(|m| suffix.len() + 1 >= m) {
        return true;
    }

    // Conditional pattern base, filtered by attribute.
    let mut paths: Vec<(Vec<ItemId>, StatAccum)> = Vec::new();
    for &idx in node_indices {
        let mut path = tree.prefix_path(idx);
        path.retain(|&p| {
            let pa = ctx.attr_table[p.index()];
            let keep = pa != attr && !suffix_attrs.contains(pa);
            if !keep {
                hdx_obs::counter_add!(MineCandidatesPrunedAttr, 1);
            }
            keep
        });
        if !path.is_empty() {
            paths.push((path, tree.nodes[idx].accum));
        }
    }
    if paths.is_empty() {
        return true;
    }
    let cond = FpTree::build(&paths, ctx.min_count, ctx.n_items, ctx.governor);
    // Never mine a conditional tree whose build was interrupted.
    if ctx.governor.is_tripped() {
        return false;
    }
    if cond.is_empty() {
        return true;
    }
    suffix.push(*item);
    suffix_attrs.insert(attr);
    mine_tree(ctx, &cond, suffix, suffix_attrs, out);
    suffix.pop();
    suffix_attrs.remove(attr);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_stats::Outcome;
    use std::collections::HashSet;

    use hdx_items::Item;

    fn catalog3() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "0")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "0")),
            c.intern(Item::cat_eq(AttrId(2), 0, "c", "0")),
        ];
        (c, ids)
    }

    #[test]
    fn matches_hand_computed_counts() {
        let (catalog, ids) = catalog3();
        let rows = vec![
            vec![ids[0], ids[1], ids[2]],
            vec![ids[0], ids[1]],
            vec![ids[0], ids[2]],
            vec![ids[1], ids[2]],
            vec![ids[0]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 5]);
        let r = fpgrowth(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.4,
                ..MiningConfig::default()
            },
        );
        // min_count = 2. Counts: a=4, b=3, c=3, ab=2, ac=2, bc=2, abc=1.
        let count = |items: &[ItemId]| {
            r.find(&Itemset::from_sorted_unchecked(items.to_vec()))
                .map(|fi| fi.accum.count())
        };
        assert_eq!(count(&[ids[0]]), Some(4));
        assert_eq!(count(&[ids[1]]), Some(3));
        assert_eq!(count(&[ids[0], ids[1]]), Some(2));
        assert_eq!(count(&[ids[1], ids[2]]), Some(2));
        assert_eq!(count(&ids), None, "abc has support 1 < 2");
        assert_eq!(r.itemsets.len(), 6);
    }

    #[test]
    fn statistics_propagate_through_conditional_trees() {
        let (catalog, ids) = catalog3();
        let rows = vec![
            vec![ids[0], ids[1]],
            vec![ids[0], ids[1]],
            vec![ids[0]],
            vec![ids[1]],
        ];
        let outcomes = vec![
            Outcome::Real(1.0),
            Outcome::Real(3.0),
            Outcome::Real(100.0),
            Outcome::Undefined,
        ];
        let t = Transactions::from_rows(rows, outcomes);
        let r = fpgrowth(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.25,
                ..MiningConfig::default()
            },
        );
        let ab = r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]))
            .unwrap();
        assert_eq!(ab.accum.count(), 2);
        assert_eq!(ab.accum.statistic(), Some(2.0));
        let b = r.find(&Itemset::singleton(ids[1])).unwrap();
        assert_eq!(b.accum.count(), 3);
        assert_eq!(b.accum.valid_count(), 2);
    }

    #[test]
    fn ancestor_descendant_pairs_excluded() {
        // Same-attribute items on one path (generalized transactions).
        let mut c = ItemCatalog::new();
        let parent = c.intern(Item::cat_eq(AttrId(0), 0, "x", "coarse"));
        let child = c.intern(Item::cat_eq(AttrId(0), 1, "x", "fine"));
        let other = c.intern(Item::cat_eq(AttrId(1), 0, "y", "v"));
        let rows = vec![vec![parent, child, other]; 3];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(false); 3]);
        let r = fpgrowth(
            &t,
            &c,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![parent, child]))
            .is_none());
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![parent, other]))
            .is_some());
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![child, other]))
            .is_some());
        // Each frequent itemset has distinct attributes.
        for fi in &r.itemsets {
            let attrs: HashSet<AttrId> = fi.itemset.items().iter().map(|&i| c.attr_of(i)).collect();
            assert_eq!(attrs.len(), fi.itemset.len());
        }
    }

    #[test]
    fn empty_database_yields_nothing() {
        let (catalog, _) = catalog3();
        let t = Transactions::from_rows(vec![], vec![]);
        let r = fpgrowth(&t, &catalog, &MiningConfig::default());
        assert!(r.itemsets.is_empty());
        assert_eq!(r.termination, hdx_governor::Termination::Complete);
    }

    #[test]
    fn itemset_budget_truncates_to_exact_subset() {
        use hdx_governor::{Governor, RunBudget, Termination};
        let (catalog, ids) = catalog3();
        let rows = vec![
            vec![ids[0], ids[1], ids[2]],
            vec![ids[0], ids[1]],
            vec![ids[0], ids[2]],
            vec![ids[1], ids[2]],
            vec![ids[0]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 5]);
        let config = MiningConfig {
            min_support: 0.4,
            ..MiningConfig::default()
        };
        let full = fpgrowth(&t, &catalog, &config);
        assert_eq!(full.itemsets.len(), 6);

        let governor = Governor::new(RunBudget::unbounded().with_max_itemsets(2));
        let partial = fpgrowth_governed(&t, &catalog, &config, &governor);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert_eq!(partial.itemsets.len(), 2);
        for fi in &partial.itemsets {
            let reference = full.find(&fi.itemset).expect("subset of unbounded run");
            assert_eq!(reference.accum.count(), fi.accum.count());
        }
    }

    #[test]
    fn node_budget_interrupting_build_yields_empty_not_wrong() {
        use hdx_governor::{Governor, RunBudget, Termination};
        let (catalog, ids) = catalog3();
        let rows = vec![vec![ids[0], ids[1], ids[2]]; 8];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 8]);
        // Budget below one FP-node: the initial build trips immediately and
        // the (partial, undercounted) tree must never be mined.
        let governor = Governor::new(RunBudget::unbounded().with_max_candidate_bytes(1));
        let r = fpgrowth_governed(&t, &catalog, &MiningConfig::default(), &governor);
        assert_eq!(r.termination, Termination::BudgetExhausted);
        assert!(r.itemsets.is_empty());
    }
}
