//! Checkpoint/resume integration: conversions between mining types and the
//! plain-data snapshots of [`hdx_checkpoint`], plus the checkpointed mining
//! entry point.
//!
//! The miners checkpoint at **work boundaries** — after a completed Apriori
//! level, after a fully-explored first-level subtree of the depth-first
//! miners — because those are the only points where "emitted so far" plus a
//! small cursor reproduces the interrupted traversal exactly. All three
//! miners are deterministic, so a resumed run emits the same itemsets in the
//! same order as an uninterrupted one.
//!
//! [`MiningAlgorithm::VerticalParallel`] has no stable boundary order across
//! thread interleavings; under a checkpointer it dispatches to the serial
//! vertical miner (same result set, deterministic order).

use hdx_checkpoint::{
    AccumSnapshot, CheckpointError, Checkpointer, CounterSnapshot, ItemsetSnapshot, MiningProgress,
};
use hdx_governor::Governor;
use hdx_items::{ItemCatalog, ItemId, Itemset};
use hdx_stats::StatAccum;

use crate::result::{FrequentItemset, MiningResult};
use crate::transactions::Transactions;
use crate::{MiningAlgorithm, MiningConfig};

/// Snapshots one emitted itemset into plain data (exact: raw accumulator
/// sums, not derived statistics).
pub fn snapshot_itemset(fi: &FrequentItemset) -> ItemsetSnapshot {
    let (n, n_valid, sum, sum_sq) = fi.accum.raw_parts();
    ItemsetSnapshot {
        items: fi.itemset.items().iter().map(|i| i.0).collect(),
        accum: AccumSnapshot {
            n,
            n_valid,
            sum,
            sum_sq,
        },
    }
}

/// Rebuilds an emitted itemset from its snapshot, bit for bit.
pub fn restore_itemset(snap: &ItemsetSnapshot) -> FrequentItemset {
    FrequentItemset {
        itemset: Itemset::from_sorted_unchecked(snap.items.iter().map(|&i| ItemId(i)).collect()),
        accum: StatAccum::from_sums(
            snap.accum.n,
            snap.accum.n_valid,
            snap.accum.sum,
            snap.accum.sum_sq,
        ),
    }
}

/// Builds the boundary progress snapshot the miners hand to the
/// [`Checkpointer`].
pub(crate) fn progress_snapshot(
    algorithm: &str,
    cursor: u64,
    n_rows: usize,
    out: &[FrequentItemset],
    frontier: &[Itemset],
    governor: &Governor,
) -> MiningProgress {
    let c = governor.counters();
    MiningProgress {
        algorithm: algorithm.to_string(),
        cursor,
        n_rows: n_rows as u64,
        emitted: out.iter().map(snapshot_itemset).collect(),
        frontier: frontier
            .iter()
            .map(|its| its.items().iter().map(|i| i.0).collect())
            .collect(),
        counters: CounterSnapshot {
            itemsets: c.itemsets,
            candidate_bytes: c.candidate_bytes,
            tree_nodes: c.tree_nodes,
        },
    }
}

/// The stable progress-algorithm label for `algorithm` under checkpointing
/// (the parallel vertical miner checkpoints as the serial one).
pub fn checkpoint_algorithm(algorithm: MiningAlgorithm) -> &'static str {
    match algorithm {
        MiningAlgorithm::Apriori => "apriori",
        MiningAlgorithm::FpGrowth => "fpgrowth",
        MiningAlgorithm::Vertical | MiningAlgorithm::VerticalParallel => "vertical",
    }
}

/// Checks that a loaded [`MiningProgress`] belongs to this run before it is
/// resumed: same algorithm (modulo the parallel→serial mapping) and the same
/// transaction count.
///
/// # Errors
/// [`CheckpointError::Corrupt`] naming the disagreeing field.
pub fn validate_resume(
    progress: &MiningProgress,
    config: &MiningConfig,
    transactions: &Transactions,
) -> Result<(), CheckpointError> {
    let expected = checkpoint_algorithm(config.algorithm);
    if progress.algorithm != expected {
        return Err(CheckpointError::Corrupt {
            message: format!(
                "checkpoint mined with '{}', this run uses '{expected}'",
                progress.algorithm
            ),
        });
    }
    if progress.n_rows != transactions.n_rows() as u64 {
        return Err(CheckpointError::Corrupt {
            message: format!(
                "checkpoint covers {} rows, this dataset has {}",
                progress.n_rows,
                transactions.n_rows()
            ),
        });
    }
    Ok(())
}

/// [`mine_governed`](crate::mine_governed) with crash-safe checkpointing:
/// the selected miner records a boundary into `ckpt` after every completed
/// work unit and flushes a final checkpoint when it stops — normal
/// completion and governor trips alike.
///
/// `resume` restarts the traversal from a boundary previously captured by
/// this function (validate it with [`validate_resume`] first). The miners
/// are deterministic, so resuming reproduces exactly the itemsets an
/// uninterrupted run would have produced.
///
/// # Panics
/// Panics when `config.min_support` is outside `(0, 1]` (and, under
/// `debug-invariants`, when a complete non-resumed result violates a
/// lattice invariant).
pub fn mine_governed_ckpt(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
    ckpt: &mut Checkpointer,
    resume: Option<&MiningProgress>,
) -> MiningResult {
    assert!(
        config.min_support > 0.0 && config.min_support <= 1.0,
        "min_support must be in (0, 1]"
    );
    debug_assert!(
        resume.is_none_or(|p| validate_resume(p, config, transactions).is_ok()),
        "resume progress must be validated against this run"
    );
    hdx_obs::span!("mine_ckpt", str checkpoint_algorithm(config.algorithm));
    // Guarantee the run leaves a checkpoint even if it trips inside its
    // first work unit: stash the incoming progress (resume) or a
    // zero-progress snapshot (fresh run) for `finalize` to flush. A
    // cursor-0 checkpoint means "mining not yet started", so it resumes as
    // a fresh traversal — the governor counters were preloaded upstream.
    ckpt.seed(resume.cloned().unwrap_or_else(|| {
        progress_snapshot(
            checkpoint_algorithm(config.algorithm),
            0,
            transactions.n_rows(),
            &[],
            &[],
            governor,
        )
    }));
    let resume = resume.filter(|p| p.cursor > 0);
    let result = match config.algorithm {
        MiningAlgorithm::Apriori => {
            crate::apriori::apriori_run(transactions, catalog, config, governor, Some(ckpt), resume)
        }
        MiningAlgorithm::FpGrowth => crate::fpgrowth::fpgrowth_run(
            transactions,
            catalog,
            config,
            governor,
            Some(ckpt),
            resume,
        ),
        // No stable boundary order across thread interleavings: checkpointed
        // parallel mining runs the serial search (same result set).
        MiningAlgorithm::Vertical | MiningAlgorithm::VerticalParallel => {
            crate::vertical::vertical_run(
                transactions,
                catalog,
                config,
                governor,
                Some(ckpt),
                resume,
            )
        }
    };
    ckpt.finalize();
    #[cfg(feature = "obs")]
    governor.record_obs_snapshot(0);
    hdx_obs::counter_add!(MineItemsetsEmitted, result.itemsets.len() as u64);
    #[cfg(feature = "debug-invariants")]
    if resume.is_none() && result.termination.is_complete() && result.errors.is_empty() {
        crate::invariants::assert_result(&result, catalog, config.min_count(transactions.n_rows()));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::Item;
    use hdx_stats::Outcome;

    fn snapshot_round_trip_case(items: Vec<u32>, outcomes: &[Outcome]) {
        let mut accum = StatAccum::new();
        for &o in outcomes {
            accum.push(o);
        }
        let fi = FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect()),
            accum,
        };
        let restored = restore_itemset(&snapshot_itemset(&fi));
        assert_eq!(restored.itemset, fi.itemset);
        assert_eq!(restored.accum, fi.accum);
    }

    #[test]
    fn itemset_snapshots_are_exact() {
        snapshot_round_trip_case(vec![3], &[Outcome::Bool(true), Outcome::Undefined]);
        snapshot_round_trip_case(
            vec![0, 7, 19],
            &[Outcome::Real(0.1), Outcome::Real(-2.5), Outcome::Real(1e-9)],
        );
        snapshot_round_trip_case(vec![2, 5], &[]);
    }

    #[test]
    fn resume_validation_rejects_mismatches() {
        let mut catalog = ItemCatalog::new();
        let a = catalog.intern(Item::cat_eq(AttrId(0), 0, "a", "0"));
        let t = Transactions::from_rows(vec![vec![a]; 4], vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            algorithm: MiningAlgorithm::Vertical,
            ..MiningConfig::default()
        };
        let ok = MiningProgress {
            algorithm: "vertical".to_string(),
            cursor: 0,
            n_rows: 4,
            emitted: vec![],
            frontier: vec![],
            counters: CounterSnapshot::default(),
        };
        assert!(validate_resume(&ok, &config, &t).is_ok());
        // The parallel variant resumes serial-vertical checkpoints.
        let parallel = MiningConfig {
            algorithm: MiningAlgorithm::VerticalParallel,
            ..config
        };
        assert!(validate_resume(&ok, &parallel, &t).is_ok());

        let wrong_algo = MiningProgress {
            algorithm: "apriori".to_string(),
            ..ok.clone()
        };
        assert!(validate_resume(&wrong_algo, &config, &t).is_err());
        let wrong_rows = MiningProgress {
            n_rows: 5,
            ..ok.clone()
        };
        assert!(validate_resume(&wrong_rows, &config, &t).is_err());
    }
}
