//! Depth-first vertical miner (Eclat-style) with bitset tidsets.
//!
//! Enumerates frequent itemsets by extending a prefix with items of strictly
//! larger id and distinct attribute; each extension intersects the prefix's
//! cover with the item's cover. Simple, exact and fast on dense data — used
//! both as the default algorithm and as the oracle the other miners are
//! tested against.
//!
//! Both entry points come in governed flavours
//! ([`vertical_governed`]/[`vertical_parallel_governed`]) that poll a
//! [`Governor`] for deadlines, budgets and cancellation. A tripped governor
//! stops the search at emission granularity: every itemset already emitted
//! carries its exact accumulator, so a truncated result is always a subset of
//! the unbounded one. In the parallel variant a panicking worker is caught
//! and reported as [`MiningError::WorkerPanicked`](crate::MiningError) while
//! the remaining workers finish their share.

use hdx_governor::{fail_point, Governor};
use hdx_items::{Bitset, ItemCatalog, ItemId, Itemset};
use hdx_stats::{Outcome, StatAccum};

use crate::result::{FrequentItemset, MiningError, MiningResult};
use crate::transactions::Transactions;
use crate::MiningConfig;

/// Folds the outcomes of the rows in `cover` into a [`StatAccum`].
pub(crate) fn accum_over(cover: &Bitset, outcomes: &[Outcome]) -> StatAccum {
    let mut acc = StatAccum::new();
    for row in cover.iter_ones() {
        acc.push(outcomes[row]);
    }
    acc
}

/// Builds the per-item cover bitsets of a transaction database.
pub(crate) fn item_covers(transactions: &Transactions) -> Vec<(ItemId, Bitset)> {
    let n = transactions.n_rows();
    let items = transactions.distinct_items();
    let index: std::collections::HashMap<ItemId, usize> =
        items.iter().enumerate().map(|(p, &i)| (i, p)).collect();
    let mut covers: Vec<Bitset> = items.iter().map(|_| Bitset::new(n)).collect();
    for row in 0..n {
        for &item in transactions.items(row) {
            covers[index[&item]].set(row);
        }
    }
    items.into_iter().zip(covers).collect()
}

/// Approximate heap bytes of one cover bitset, charged per candidate
/// intersection against the governor's candidate-byte budget.
pub(crate) fn cover_bytes(n_rows: usize) -> u64 {
    (n_rows.div_ceil(8) as u64).max(8)
}

/// Read-only search context shared by the serial DFS and parallel workers.
struct DfsCtx<'a> {
    frequent: &'a [(ItemId, Bitset)],
    catalog: &'a ItemCatalog,
    outcomes: &'a [Outcome],
    min_count: u64,
    max_len: Option<usize>,
    governor: &'a Governor,
    cover_bytes: u64,
}

/// Depth-first extension of `prefix_items` with items from `start` onward.
/// Returns early (with whatever was emitted so far) once the governor trips.
fn dfs(
    ctx: &DfsCtx<'_>,
    prefix_items: &mut Vec<ItemId>,
    prefix_cover: Option<&Bitset>,
    start: usize,
    out: &mut Vec<FrequentItemset>,
) {
    for idx in start..ctx.frequent.len() {
        if !ctx.governor.keep_going() {
            return;
        }
        let (item, cover) = &ctx.frequent[idx];
        let attr = ctx.catalog.attr_of(*item);
        if prefix_items.iter().any(|&p| ctx.catalog.attr_of(p) == attr) {
            continue;
        }
        // Each candidate allocates one intersection bitset.
        if !ctx.governor.record_candidate_bytes(ctx.cover_bytes) {
            return;
        }
        let joint = match prefix_cover {
            None => cover.clone(),
            Some(pc) => pc.and(cover),
        };
        if (joint.count() as u64) < ctx.min_count {
            continue;
        }
        // Charge the emission *before* pushing: on a refused charge nothing
        // is emitted, so emitted itemsets always have exact accumulators.
        if !ctx.governor.record_itemsets(1) {
            return;
        }
        prefix_items.push(*item);
        out.push(FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(prefix_items.clone()),
            accum: accum_over(&joint, ctx.outcomes),
        });
        if ctx.max_len.is_none_or(|m| prefix_items.len() < m) {
            dfs(ctx, prefix_items, Some(&joint), idx + 1, out);
        }
        prefix_items.pop();
    }
}

/// Mines all frequent itemsets via depth-first vertical search.
pub fn vertical(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    vertical_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`vertical`] under a [`Governor`]: polls for deadline/budget/cancellation
/// and degrades to a partial (subset) result instead of running away.
pub fn vertical_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);

    fail_point!("mining::vertical");

    let frequent: Vec<(ItemId, Bitset)> = item_covers(transactions)
        .into_iter()
        .filter(|(_, c)| c.count() as u64 >= min_count)
        .collect();

    let ctx = DfsCtx {
        frequent: &frequent,
        catalog,
        outcomes: transactions.outcomes(),
        min_count,
        max_len: config.max_len,
        governor,
        cover_bytes: cover_bytes(n),
    };

    let mut out: Vec<FrequentItemset> = Vec::new();
    let mut prefix_items: Vec<ItemId> = Vec::new();
    dfs(&ctx, &mut prefix_items, None, 0, &mut out);

    MiningResult::complete(out, n, transactions.global_accum()).governed_by(governor)
}

/// Parallel variant of [`vertical`]: the depth-first subtrees rooted at each
/// frequent single item are independent, so they are distributed over
/// `available_parallelism` worker threads (std scoped threads — no extra
/// dependencies). Produces the same itemset multiset as [`vertical`], in a
/// different order.
pub fn vertical_parallel(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    vertical_parallel_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`vertical_parallel`] under a [`Governor`]. All workers share the
/// governor, so a tripped budget stops every subtree cooperatively. A worker
/// that panics is caught and folded into
/// [`MiningResult::errors`](crate::MiningResult) as
/// [`MiningError::WorkerPanicked`](crate::MiningError); the other workers
/// finish and their itemsets are kept.
pub fn vertical_parallel_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);

    let frequent: Vec<(ItemId, Bitset)> = item_covers(transactions)
        .into_iter()
        .filter(|(_, c)| c.count() as u64 >= min_count)
        .collect();

    let n_workers = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(frequent.len().max(1));

    let ctx = DfsCtx {
        frequent: &frequent,
        catalog,
        outcomes: transactions.outcomes(),
        min_count,
        max_len: config.max_len,
        governor,
        cover_bytes: cover_bytes(n),
    };

    let mut out: Vec<FrequentItemset> = Vec::new();
    let mut errors: Vec<MiningError> = Vec::new();
    std::thread::scope(|scope| {
        let ctx = &ctx;
        let handles: Vec<_> = (0..n_workers)
            .map(|worker| {
                scope.spawn(move || {
                    // Catch panics inside the worker so one crashing subtree
                    // degrades the run instead of killing it. The closure
                    // only reads shared state and writes a thread-local vec,
                    // so unwinding cannot leave broken invariants behind.
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        fail_point!("mining::vertical-worker");
                        let mut local: Vec<FrequentItemset> = Vec::new();
                        let mut prefix: Vec<ItemId> = Vec::new();
                        // Strided assignment of first-level subtrees balances
                        // the skewed subtree sizes (early items have the
                        // largest extension sets).
                        for idx in (worker..ctx.frequent.len()).step_by(n_workers) {
                            if !ctx.governor.keep_going() {
                                break;
                            }
                            let (item, cover) = &ctx.frequent[idx];
                            if !ctx.governor.record_itemsets(1) {
                                break;
                            }
                            prefix.push(*item);
                            local.push(FrequentItemset {
                                itemset: Itemset::singleton(*item),
                                accum: accum_over(cover, ctx.outcomes),
                            });
                            if ctx.max_len.is_none_or(|m| m > 1) {
                                dfs(ctx, &mut prefix, Some(cover), idx + 1, &mut local);
                            }
                            prefix.pop();
                        }
                        local
                    }))
                })
            })
            .collect();
        for (worker, handle) in handles.into_iter().enumerate() {
            // `join` cannot fail (the worker catches its own panics), but
            // fold a hypothetical failure into the same degraded path.
            match handle.join().unwrap_or_else(Err) {
                Ok(local) => out.extend(local),
                Err(payload) => errors.push(MiningError::WorkerPanicked {
                    worker,
                    message: panic_message(payload.as_ref()),
                }),
            }
        }
    });

    let mut result =
        MiningResult::complete(out, n, transactions.global_accum()).governed_by(governor);
    result.errors = errors;
    result
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_governor::{RunBudget, Termination};
    use hdx_items::Item;

    /// Catalog with items a0, a1 on attr 0 and b0, b1 on attr 1.
    fn catalog() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "0")),
            c.intern(Item::cat_eq(AttrId(0), 1, "a", "1")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "0")),
            c.intern(Item::cat_eq(AttrId(1), 1, "b", "1")),
        ];
        (c, ids)
    }

    #[test]
    fn known_small_database() {
        let (catalog, ids) = catalog();
        // 4 rows: {a0,b0}, {a0,b0}, {a0,b1}, {a1,b0}
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let outcomes = vec![
            Outcome::Bool(true),
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
        ];
        let t = Transactions::from_rows(rows, outcomes);
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        // min_count = 2: frequent = {a0}(3), {b0}(3), {a0,b0}(2).
        assert_eq!(r.itemsets.len(), 3);
        let joint = Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]);
        let fi = r.find(&joint).unwrap();
        assert_eq!(fi.accum.count(), 2);
        assert_eq!(fi.accum.statistic(), Some(1.0), "both joint rows are T");
        assert_eq!(r.global.statistic(), Some(0.5));
        assert_eq!(r.divergence(fi), Some(0.5));
        assert_eq!(r.termination, Termination::Complete);
        assert!(!r.is_partial());
    }

    #[test]
    fn same_attribute_items_never_combine() {
        let (catalog, ids) = catalog();
        // a0 and a1 co-occur in generalized-style rows.
        let rows = vec![vec![ids[0], ids[1], ids[2]]; 4];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.1,
                ..MiningConfig::default()
            },
        );
        for fi in &r.itemsets {
            let attrs: Vec<_> = fi
                .itemset
                .items()
                .iter()
                .map(|&i| catalog.attr_of(i))
                .collect();
            let mut dedup = attrs.clone();
            dedup.dedup();
            assert_eq!(attrs.len(), dedup.len(), "duplicate attribute in {fi:?}");
        }
        // {a0,a1} absent, {a0,b0} and {a1,b0} present.
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]))
            .is_none());
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]))
            .is_some());
    }

    #[test]
    fn empty_database() {
        let (catalog, _) = catalog();
        let t = Transactions::from_rows(vec![], vec![]);
        let r = vertical(&t, &catalog, &MiningConfig::default());
        assert!(r.itemsets.is_empty());
        assert_eq!(r.n_rows, 0);
        assert_eq!(r.termination, Termination::Complete);
    }

    #[test]
    fn support_threshold_is_inclusive() {
        let (catalog, ids) = catalog();
        let rows = vec![vec![ids[0]], vec![ids[0]], vec![ids[1]], vec![ids[1]]];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(false); 4]);
        // s = 0.5 → min_count = 2; both items have exactly 2.
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        assert_eq!(r.itemsets.len(), 2);
        // s = 0.51 → min_count = 3; nothing qualifies.
        let r2 = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.51,
                ..MiningConfig::default()
            },
        );
        assert!(r2.itemsets.is_empty());
    }

    #[test]
    fn itemset_budget_truncates_to_exact_subset() {
        let (catalog, ids) = catalog();
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            min_support: 0.25,
            ..MiningConfig::default()
        };
        let full = vertical(&t, &catalog, &config);
        assert!(full.itemsets.len() > 2);

        let governor = Governor::new(RunBudget::unbounded().with_max_itemsets(2));
        let partial = vertical_governed(&t, &catalog, &config, &governor);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert!(partial.is_partial());
        assert_eq!(partial.itemsets.len(), 2);
        assert_eq!(partial.counters.itemsets, 2);
        for fi in &partial.itemsets {
            let reference = full.find(&fi.itemset).expect("subset of unbounded run");
            assert_eq!(reference.accum.count(), fi.accum.count());
        }
    }

    #[test]
    fn parallel_budget_truncates_without_panicking() {
        let (catalog, ids) = catalog();
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            min_support: 0.25,
            ..MiningConfig::default()
        };
        let full = vertical(&t, &catalog, &config);
        let governor = Governor::new(RunBudget::unbounded().with_max_itemsets(1));
        let partial = vertical_parallel_governed(&t, &catalog, &config, &governor);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert!(partial.itemsets.len() <= full.itemsets.len());
        assert!(partial.errors.is_empty());
        for fi in &partial.itemsets {
            assert!(full.find(&fi.itemset).is_some());
        }
    }

    #[test]
    fn cancelled_token_stops_run_before_work() {
        let (catalog, ids) = catalog();
        let rows = vec![vec![ids[0], ids[2]]; 8];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 8]);
        let governor = Governor::unbounded();
        governor.cancel_token().cancel();
        let r = vertical_governed(&t, &catalog, &MiningConfig::default(), &governor);
        assert_eq!(r.termination, Termination::Cancelled);
    }
}
