//! Depth-first vertical miner (Eclat-style) with bitset tidsets.
//!
//! Enumerates frequent itemsets by extending a prefix with items of strictly
//! larger id and distinct attribute; each extension intersects the prefix's
//! cover with the item's cover. Simple, exact and fast on dense data — used
//! both as the default algorithm and as the oracle the other miners are
//! tested against.

use hdx_items::{Bitset, ItemCatalog, ItemId, Itemset};
use hdx_stats::{Outcome, StatAccum};

use crate::result::{FrequentItemset, MiningResult};
use crate::transactions::Transactions;
use crate::MiningConfig;

/// Folds the outcomes of the rows in `cover` into a [`StatAccum`].
pub(crate) fn accum_over(cover: &Bitset, outcomes: &[Outcome]) -> StatAccum {
    let mut acc = StatAccum::new();
    for row in cover.iter_ones() {
        acc.push(outcomes[row]);
    }
    acc
}

/// Builds the per-item cover bitsets of a transaction database.
pub(crate) fn item_covers(transactions: &Transactions) -> Vec<(ItemId, Bitset)> {
    let n = transactions.n_rows();
    let items = transactions.distinct_items();
    let index: std::collections::HashMap<ItemId, usize> =
        items.iter().enumerate().map(|(p, &i)| (i, p)).collect();
    let mut covers: Vec<Bitset> = items.iter().map(|_| Bitset::new(n)).collect();
    for row in 0..n {
        for &item in transactions.items(row) {
            covers[index[&item]].set(row);
        }
    }
    items.into_iter().zip(covers).collect()
}

/// Mines all frequent itemsets via depth-first vertical search.
pub fn vertical(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);
    let outcomes = transactions.outcomes();

    // Frequent single items with their covers, ascending id order.
    let frequent: Vec<(ItemId, Bitset)> = item_covers(transactions)
        .into_iter()
        .filter(|(_, c)| c.count() as u64 >= min_count)
        .collect();

    let mut out: Vec<FrequentItemset> = Vec::new();
    let mut prefix_items: Vec<ItemId> = Vec::new();

    // Depth-first extension. `start` indexes into `frequent`.
    #[allow(clippy::too_many_arguments)] // recursion context, not an API
    fn dfs(
        frequent: &[(ItemId, Bitset)],
        catalog: &ItemCatalog,
        outcomes: &[Outcome],
        min_count: u64,
        max_len: Option<usize>,
        prefix_items: &mut Vec<ItemId>,
        prefix_cover: Option<&Bitset>,
        start: usize,
        out: &mut Vec<FrequentItemset>,
    ) {
        for idx in start..frequent.len() {
            let (item, cover) = &frequent[idx];
            let attr = catalog.attr_of(*item);
            if prefix_items.iter().any(|&p| catalog.attr_of(p) == attr) {
                continue;
            }
            let joint = match prefix_cover {
                None => cover.clone(),
                Some(pc) => pc.and(cover),
            };
            if (joint.count() as u64) < min_count {
                continue;
            }
            prefix_items.push(*item);
            out.push(FrequentItemset {
                itemset: Itemset::from_sorted_unchecked(prefix_items.clone()),
                accum: accum_over(&joint, outcomes),
            });
            if max_len.is_none_or(|m| prefix_items.len() < m) {
                dfs(
                    frequent,
                    catalog,
                    outcomes,
                    min_count,
                    max_len,
                    prefix_items,
                    Some(&joint),
                    idx + 1,
                    out,
                );
            }
            prefix_items.pop();
        }
    }

    dfs(
        &frequent,
        catalog,
        outcomes,
        min_count,
        config.max_len,
        &mut prefix_items,
        None,
        0,
        &mut out,
    );

    MiningResult {
        itemsets: out,
        n_rows: n,
        global: transactions.global_accum(),
    }
}

/// Parallel variant of [`vertical`]: the depth-first subtrees rooted at each
/// frequent single item are independent, so they are distributed over
/// `available_parallelism` worker threads (std scoped threads — no extra
/// dependencies). Produces the same itemset multiset as [`vertical`], in a
/// different order.
pub fn vertical_parallel(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);
    let outcomes = transactions.outcomes();

    let frequent: Vec<(ItemId, Bitset)> = item_covers(transactions)
        .into_iter()
        .filter(|(_, c)| c.count() as u64 >= min_count)
        .collect();

    let n_workers = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
        .min(frequent.len().max(1));

    let mut out: Vec<FrequentItemset> = Vec::new();
    std::thread::scope(|scope| {
        let frequent = &frequent;
        let handles: Vec<_> = (0..n_workers)
            .map(|worker| {
                scope.spawn(move || {
                    let mut local: Vec<FrequentItemset> = Vec::new();
                    let mut prefix: Vec<ItemId> = Vec::new();
                    // Strided assignment of first-level subtrees balances
                    // the skewed subtree sizes (early items have the largest
                    // extension sets).
                    for idx in (worker..frequent.len()).step_by(n_workers) {
                        let (item, cover) = &frequent[idx];
                        prefix.push(*item);
                        local.push(FrequentItemset {
                            itemset: Itemset::singleton(*item),
                            accum: accum_over(cover, outcomes),
                        });
                        if config.max_len.is_none_or(|m| m > 1) {
                            dfs_worker(
                                frequent,
                                catalog,
                                outcomes,
                                min_count,
                                config.max_len,
                                &mut prefix,
                                cover,
                                idx + 1,
                                &mut local,
                            );
                        }
                        prefix.pop();
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => out.extend(local),
                // Re-raise the worker's panic on the caller thread.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    MiningResult {
        itemsets: out,
        n_rows: n,
        global: transactions.global_accum(),
    }
}

/// DFS body shared by the parallel workers (same recursion as [`vertical`]'s
/// inner `dfs`, with a mandatory prefix cover).
#[allow(clippy::too_many_arguments)] // recursion context, not an API
fn dfs_worker(
    frequent: &[(ItemId, Bitset)],
    catalog: &ItemCatalog,
    outcomes: &[Outcome],
    min_count: u64,
    max_len: Option<usize>,
    prefix_items: &mut Vec<ItemId>,
    prefix_cover: &Bitset,
    start: usize,
    out: &mut Vec<FrequentItemset>,
) {
    for idx in start..frequent.len() {
        let (item, cover) = &frequent[idx];
        let attr = catalog.attr_of(*item);
        if prefix_items.iter().any(|&p| catalog.attr_of(p) == attr) {
            continue;
        }
        let joint = prefix_cover.and(cover);
        if (joint.count() as u64) < min_count {
            continue;
        }
        prefix_items.push(*item);
        let mut sorted = prefix_items.clone();
        sorted.sort_unstable();
        out.push(FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(sorted),
            accum: accum_over(&joint, outcomes),
        });
        if max_len.is_none_or(|m| prefix_items.len() < m) {
            dfs_worker(
                frequent,
                catalog,
                outcomes,
                min_count,
                max_len,
                prefix_items,
                &joint,
                idx + 1,
                out,
            );
        }
        prefix_items.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::Item;

    /// Catalog with items a0, a1 on attr 0 and b0, b1 on attr 1.
    fn catalog() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "0")),
            c.intern(Item::cat_eq(AttrId(0), 1, "a", "1")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "0")),
            c.intern(Item::cat_eq(AttrId(1), 1, "b", "1")),
        ];
        (c, ids)
    }

    #[test]
    fn known_small_database() {
        let (catalog, ids) = catalog();
        // 4 rows: {a0,b0}, {a0,b0}, {a0,b1}, {a1,b0}
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let outcomes = vec![
            Outcome::Bool(true),
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
        ];
        let t = Transactions::from_rows(rows, outcomes);
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        // min_count = 2: frequent = {a0}(3), {b0}(3), {a0,b0}(2).
        assert_eq!(r.itemsets.len(), 3);
        let joint = Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]);
        let fi = r.find(&joint).unwrap();
        assert_eq!(fi.accum.count(), 2);
        assert_eq!(fi.accum.statistic(), Some(1.0), "both joint rows are T");
        assert_eq!(r.global.statistic(), Some(0.5));
        assert_eq!(r.divergence(fi), Some(0.5));
    }

    #[test]
    fn same_attribute_items_never_combine() {
        let (catalog, ids) = catalog();
        // a0 and a1 co-occur in generalized-style rows.
        let rows = vec![vec![ids[0], ids[1], ids[2]]; 4];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.1,
                ..MiningConfig::default()
            },
        );
        for fi in &r.itemsets {
            let attrs: Vec<_> = fi
                .itemset
                .items()
                .iter()
                .map(|&i| catalog.attr_of(i))
                .collect();
            let mut dedup = attrs.clone();
            dedup.dedup();
            assert_eq!(attrs.len(), dedup.len(), "duplicate attribute in {fi:?}");
        }
        // {a0,a1} absent, {a0,b0} and {a1,b0} present.
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]))
            .is_none());
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]))
            .is_some());
    }

    #[test]
    fn empty_database() {
        let (catalog, _) = catalog();
        let t = Transactions::from_rows(vec![], vec![]);
        let r = vertical(&t, &catalog, &MiningConfig::default());
        assert!(r.itemsets.is_empty());
        assert_eq!(r.n_rows, 0);
    }

    #[test]
    fn support_threshold_is_inclusive() {
        let (catalog, ids) = catalog();
        let rows = vec![vec![ids[0]], vec![ids[0]], vec![ids[1]], vec![ids[1]]];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(false); 4]);
        // s = 0.5 → min_count = 2; both items have exactly 2.
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        assert_eq!(r.itemsets.len(), 2);
        // s = 0.51 → min_count = 3; nothing qualifies.
        let r2 = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.51,
                ..MiningConfig::default()
            },
        );
        assert!(r2.itemsets.is_empty());
    }
}
