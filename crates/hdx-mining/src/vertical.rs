//! Depth-first vertical miner (Eclat-style) with bitset tidsets and
//! word-level statistic kernels.
//!
//! Enumerates frequent itemsets by extending a prefix with items of strictly
//! larger id and distinct attribute. The inner loop is engineered to be
//! allocation-free and word-parallel:
//!
//! * **count-first pruning** — a candidate's support is a fused
//!   [`Bitset::and_count`] against the prefix cover, so infrequent
//!   candidates never allocate anything;
//! * **kernel accumulators** — frequent candidates fold their
//!   [`StatAccum`] through [`OutcomePlanes`] (fused popcounts / masked
//!   sums over the cover words) instead of iterating rows;
//! * **scratch-bitset pool** — one reusable cover buffer per recursion
//!   depth, so even frequent candidates allocate nothing after setup; leaf
//!   candidates (which cannot recurse) skip materialisation entirely via the
//!   fused pair kernel;
//! * **dense attribute masks** — the one-item-per-attribute constraint is a
//!   precomputed per-item attribute table plus an [`AttrSet`] prefix mask,
//!   not a linear prefix scan through the catalog.
//!
//! Both entry points come in governed flavours
//! ([`vertical_governed`]/[`vertical_parallel_governed`]) that poll a
//! [`Governor`] for deadlines, budgets and cancellation. A tripped governor
//! stops the search at emission granularity: every itemset already emitted
//! carries its exact accumulator, so a truncated result is always a subset of
//! the unbounded one. Candidate bytes are charged only when a joint cover is
//! actually materialised — pruned and leaf candidates are free. In the
//! parallel variant a panicking worker is caught and reported as
//! [`MiningError::WorkerPanicked`](crate::MiningError) while the remaining
//! workers finish their share.

use hdx_checkpoint::{Checkpointer, MiningProgress};
use hdx_governor::{fail_point, Governor};
use hdx_items::{Bitset, ItemCatalog, ItemId, Itemset};
use hdx_stats::{Outcome, OutcomePlanes, StatAccum};

use crate::attrs::AttrSet;
use crate::checkpoint::{progress_snapshot, restore_itemset};
use crate::result::{FrequentItemset, MiningError, MiningResult};
use crate::transactions::Transactions;
use crate::MiningConfig;

/// Folds the outcomes of the rows in `cover` into a [`StatAccum`] one row at
/// a time.
///
/// This is the scalar *reference* path: the word-level kernels
/// ([`OutcomePlanes`]) are required to reproduce it bit for bit, which the
/// property tests in `tests/property_kernel.rs` and the bench harness's
/// scalar baseline both rely on. The miners themselves use the kernels.
pub fn accum_scalar(cover: &Bitset, outcomes: &[Outcome]) -> StatAccum {
    let mut acc = StatAccum::new();
    for row in cover.iter_ones() {
        acc.push(outcomes[row]);
    }
    acc
}

/// Builds the per-item cover bitsets of a transaction database, ascending by
/// item id. Items are located through a dense `ItemId`-indexed position
/// table rather than a hash map — this runs once per mining call.
pub(crate) fn item_covers(transactions: &Transactions) -> Vec<(ItemId, Bitset)> {
    let n = transactions.n_rows();
    let items = transactions.distinct_items();
    let table_len = items.last().map_or(0, |i| i.index() + 1);
    let mut pos: Vec<u32> = vec![u32::MAX; table_len];
    for (p, item) in items.iter().enumerate() {
        pos[item.index()] = p as u32;
    }
    let mut covers: Vec<Bitset> = items.iter().map(|_| Bitset::new(n)).collect();
    for row in 0..n {
        for &item in transactions.items(row) {
            covers[pos[item.index()] as usize].set(row);
        }
    }
    items.into_iter().zip(covers).collect()
}

/// Approximate heap bytes of one cover bitset, charged per *materialised*
/// candidate intersection against the governor's candidate-byte budget.
pub(crate) fn cover_bytes(n_rows: usize) -> u64 {
    (n_rows.div_ceil(8) as u64).max(8)
}

/// A frequent single item: its id, raw attribute, support and cover.
struct FreqItem {
    item: ItemId,
    attr: u16,
    count: u64,
    cover: Bitset,
}

/// The frequent single items of `transactions`, ascending by id, with their
/// attribute and support precomputed for the DFS inner loop.
fn frequent_items(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    min_count: u64,
) -> Vec<FreqItem> {
    item_covers(transactions)
        .into_iter()
        .filter_map(|(item, cover)| {
            let count = cover.count() as u64;
            (count >= min_count).then(|| FreqItem {
                item,
                attr: catalog.attr_of(item).0,
                count,
                cover,
            })
        })
        .collect()
}

/// One reusable cover buffer per attainable recursion depth: prefixes can
/// grow to `min(max_len, #distinct frequent attributes)` items, and a joint
/// cover is only materialised for prefixes that can still be extended, so
/// this pool is never exhausted.
fn scratch_pool(n_rows: usize, frequent: &[FreqItem], max_len: Option<usize>) -> Vec<Bitset> {
    let mut attrs: Vec<u16> = frequent.iter().map(|f| f.attr).collect();
    attrs.sort_unstable();
    attrs.dedup();
    let depth = max_len.unwrap_or(usize::MAX).min(attrs.len());
    (0..depth).map(|_| Bitset::new(n_rows)).collect()
}

/// Read-only search context shared by the serial DFS and parallel workers.
struct DfsCtx<'a> {
    frequent: &'a [FreqItem],
    planes: &'a OutcomePlanes,
    min_count: u64,
    max_len: Option<usize>,
    governor: &'a Governor,
    cover_bytes: u64,
}

/// Depth-first extension of `prefix_items` (whose rows are `prefix_cover`
/// and whose attributes are `prefix_attrs`) with items from `start` onward.
///
/// `scratch` holds one joint-cover buffer per remaining depth; the frequent
/// path writes into `scratch[0]` and recurses with the rest, so the whole
/// search allocates nothing beyond the cloned item lists of emitted
/// itemsets. Returns early (with whatever was emitted so far) once the
/// governor trips.
fn dfs(
    ctx: &DfsCtx<'_>,
    prefix_items: &mut Vec<ItemId>,
    prefix_attrs: &mut AttrSet,
    prefix_cover: &Bitset,
    start: usize,
    scratch: &mut [Bitset],
    out: &mut Vec<FrequentItemset>,
) {
    for (idx, cand) in ctx.frequent.iter().enumerate().skip(start) {
        if !ctx.governor.keep_going() {
            return;
        }
        hdx_obs::counter_add!(MineCandidatesGenerated, 1);
        if prefix_attrs.contains(cand.attr) {
            hdx_obs::counter_add!(MineCandidatesPrunedAttr, 1);
            continue;
        }
        // Count-first pruning: infrequent candidates cost one fused
        // AND+popcount and nothing else.
        let count = prefix_cover.and_count(&cand.cover) as u64;
        if count < ctx.min_count {
            hdx_obs::counter_add!(MineCandidatesPrunedSupport, 1);
            continue;
        }
        // Charge the emission *before* pushing: on a refused charge nothing
        // is emitted, so emitted itemsets always have exact accumulators and
        // the itemset counter always equals the number of emissions.
        if !ctx.governor.record_itemsets(1) {
            return;
        }
        // ALLOC: reusable prefix buffer — grows at most once per depth and
        // is popped on unwind, so the steady state allocates nothing.
        prefix_items.push(cand.item);
        let deeper =
            ctx.max_len.is_none_or(|m| prefix_items.len() < m) && idx + 1 < ctx.frequent.len();
        if deeper {
            if let Some((joint, rest)) = scratch.split_first_mut() {
                // Materialising the joint cover is the only per-candidate
                // byte cost; charge it now. On refusal, emit the
                // already-charged itemset through the fused pair kernel
                // (no materialisation) and unwind.
                if !ctx.governor.record_candidate_bytes(ctx.cover_bytes) {
                    // ALLOC: emission — the cloned item list is the
                    // documented per-result cost, charged to the governor.
                    out.push(FrequentItemset {
                        itemset: Itemset::from_sorted_unchecked(prefix_items.clone()),
                        accum: ctx.planes.accum_pair(
                            prefix_cover.words(),
                            cand.cover.words(),
                            count,
                        ),
                    });
                    prefix_items.pop();
                    return;
                }
                // Fused intersect-assign-accumulate: the joint cover is
                // written and folded into the accumulator in one blocked
                // pass, so each row block is consumed while cache-hot.
                let accum = ctx.planes.accum_assign_pair(
                    prefix_cover.words(),
                    cand.cover.words(),
                    joint.words_mut(),
                    count,
                );
                // ALLOC: emission — see above; the joint cover itself goes
                // into the pre-sized scratch pool, not a fresh allocation.
                out.push(FrequentItemset {
                    itemset: Itemset::from_sorted_unchecked(prefix_items.clone()),
                    accum,
                });
                prefix_attrs.insert(cand.attr);
                dfs(ctx, prefix_items, prefix_attrs, joint, idx + 1, rest, out);
                prefix_attrs.remove(cand.attr);
            } else {
                // Unreachable: the pool depth covers every attainable prefix
                // length. Degrade to a leaf emission rather than crash.
                debug_assert!(false, "scratch pool exhausted");
                // ALLOC: emission — degraded leaf path, same per-result cost.
                out.push(FrequentItemset {
                    itemset: Itemset::from_sorted_unchecked(prefix_items.clone()),
                    accum: ctx
                        .planes
                        .accum_pair(prefix_cover.words(), cand.cover.words(), count),
                });
            }
        } else {
            // Leaf candidate: fused pair kernel straight off the two parent
            // covers — no materialisation, no byte charge.
            // ALLOC: emission — the cloned item list is the documented
            // per-result cost, charged to the governor.
            out.push(FrequentItemset {
                itemset: Itemset::from_sorted_unchecked(prefix_items.clone()),
                accum: ctx
                    .planes
                    .accum_pair(prefix_cover.words(), cand.cover.words(), count),
            });
        }
        prefix_items.pop();
    }
}

/// Emits the frequent singleton at `idx` and explores its subtree. Shared by
/// the serial driver and the parallel workers (which stride over `idx`).
/// Returns `false` once the governor refuses further emissions.
fn explore_root(
    ctx: &DfsCtx<'_>,
    idx: usize,
    prefix_items: &mut Vec<ItemId>,
    prefix_attrs: &mut AttrSet,
    scratch: &mut [Bitset],
    out: &mut Vec<FrequentItemset>,
) -> bool {
    let Some(root) = ctx.frequent.get(idx) else {
        debug_assert!(false, "explore_root index beyond frequent items");
        return true;
    };
    if !ctx.governor.record_itemsets(1) {
        return false;
    }
    // ALLOC: emission of the singleton result, charged to the governor.
    out.push(FrequentItemset {
        itemset: Itemset::singleton(root.item),
        accum: ctx.planes.accum(root.cover.words(), root.count),
    });
    if ctx.max_len.is_none_or(|m| m > 1) && idx + 1 < ctx.frequent.len() {
        // ALLOC: reusable prefix buffer — grows at most once per depth.
        prefix_items.push(root.item);
        prefix_attrs.insert(root.attr);
        dfs(
            ctx,
            prefix_items,
            prefix_attrs,
            &root.cover,
            idx + 1,
            scratch,
            out,
        );
        prefix_attrs.remove(root.attr);
        prefix_items.pop();
    }
    true
}

/// Mines all frequent itemsets via depth-first vertical search.
pub fn vertical(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    vertical_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`vertical`] under a [`Governor`]: polls for deadline/budget/cancellation
/// and degrades to a partial (subset) result instead of running away.
pub fn vertical_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    vertical_run(transactions, catalog, config, governor, None, None)
}

/// The shared serial-DFS driver behind [`vertical_governed`] and
/// [`crate::mine_governed_ckpt`]: optionally records a checkpoint boundary
/// after each fully-explored first-level subtree (cursor = roots completed)
/// and optionally restarts from such a boundary. The frequent-item order is
/// a deterministic function of the transactions, so a resumed run continues
/// the exact traversal the interrupted one was on.
pub(crate) fn vertical_run(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
    mut ckpt: Option<&mut Checkpointer>,
    resume: Option<&MiningProgress>,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);

    fail_point!("mining::vertical");

    let frequent = frequent_items(transactions, catalog, min_count);
    let planes = OutcomePlanes::from_outcomes(transactions.outcomes());

    let ctx = DfsCtx {
        frequent: &frequent,
        planes: &planes,
        min_count,
        max_len: config.max_len,
        governor,
        cover_bytes: cover_bytes(n),
    };

    let mut scratch = scratch_pool(n, &frequent, config.max_len);
    hdx_obs::gauge_max!(MineScratchPoolBytes, scratch.len() as u64 * cover_bytes(n));
    let mut out: Vec<FrequentItemset> = match resume {
        Some(progress) => progress.emitted.iter().map(restore_itemset).collect(),
        None => Vec::new(),
    };
    let start = resume.map_or(0, |p| (p.cursor as usize).min(frequent.len()));
    let mut prefix_items: Vec<ItemId> = Vec::new();
    let mut prefix_attrs = AttrSet::new();
    for idx in start..frequent.len() {
        if !governor.keep_going()
            || !explore_root(
                &ctx,
                idx,
                &mut prefix_items,
                &mut prefix_attrs,
                &mut scratch,
                &mut out,
            )
        {
            break;
        }
        // `explore_root` returns true even when the DFS below it unwound on
        // a trip, so a tripped governor means this subtree may be partial —
        // only a clean completion is a boundary.
        if governor.is_tripped() {
            break;
        }
        if let Some(ck) = ckpt.as_deref_mut() {
            ck.at_boundary(progress_snapshot(
                "vertical",
                (idx + 1) as u64,
                n,
                &out,
                &[],
                governor,
            ));
        }
    }

    MiningResult::complete(out, n, transactions.global_accum()).governed_by(governor)
}

/// Parallel variant of [`vertical`]: the depth-first subtrees rooted at each
/// frequent single item are independent, so they are distributed over worker
/// threads ([`MiningConfig::threads`], default all cores; std scoped threads
/// — no extra dependencies) by the work-stealing scheduler in
/// [`crate::sched`]. Produces the same itemset multiset as [`vertical`], in
/// a different order.
pub fn vertical_parallel(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    vertical_parallel_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`vertical_parallel`] under a [`Governor`]. All workers share the
/// governor, so a tripped budget stops every subtree cooperatively. A worker
/// that panics is caught and folded into
/// [`MiningResult::errors`](crate::MiningResult) as
/// [`MiningError::WorkerPanicked`](crate::MiningError); the other workers
/// finish and their itemsets are kept.
pub fn vertical_parallel_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);

    let frequent = frequent_items(transactions, catalog, min_count);
    let planes = OutcomePlanes::from_outcomes(transactions.outcomes());

    let n_workers = config.n_workers(frequent.len());

    let ctx = DfsCtx {
        frequent: &frequent,
        planes: &planes,
        min_count,
        max_len: config.max_len,
        governor,
        cover_bytes: cover_bytes(n),
    };

    let sched = crate::sched::RootScheduler::new(n_workers, frequent.len());

    let mut out: Vec<FrequentItemset> = Vec::new();
    let mut errors: Vec<MiningError> = Vec::new();
    std::thread::scope(|scope| {
        let ctx = &ctx;
        let sched = &sched;
        let handles: Vec<_> = (0..n_workers)
            .map(|worker| {
                scope.spawn(move || {
                    // Catch panics inside the worker so one crashing subtree
                    // degrades the run instead of killing it. The closure
                    // only reads shared state and writes a thread-local vec,
                    // so unwinding cannot leave broken invariants behind
                    // (roots left in the panicking worker's deque are
                    // stolen by the survivors' exit sweeps).
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        fail_point!("mining::vertical-worker");
                        hdx_obs::span!("worker", int worker);
                        let mut local: Vec<FrequentItemset> = Vec::new();
                        let mut prefix: Vec<ItemId> = Vec::new();
                        let mut prefix_attrs = AttrSet::new();
                        let mut scratch = scratch_pool(n, ctx.frequent, ctx.max_len);
                        hdx_obs::gauge_max!(
                            MineScratchPoolBytes,
                            scratch.len() as u64 * cover_bytes(n)
                        );
                        // Work-stealing assignment of first-level subtrees:
                        // subtree sizes are heavily skewed (early items have
                        // the largest extension sets), so idle workers steal
                        // queued roots instead of waiting out a static
                        // stride.
                        while let Some(idx) = sched.next_root(worker) {
                            if !ctx.governor.keep_going()
                                || !explore_root(
                                    ctx,
                                    idx,
                                    &mut prefix,
                                    &mut prefix_attrs,
                                    &mut scratch,
                                    &mut local,
                                )
                            {
                                break;
                            }
                        }
                        local
                    }));
                    // Make this worker's recordings visible to the spawning
                    // thread's collect() — scoped threads count as finished
                    // before their TLS destructors run.
                    hdx_obs::flush_thread!();
                    result
                })
            })
            .collect();
        for (worker, handle) in handles.into_iter().enumerate() {
            // `join` cannot fail (the worker catches its own panics), but
            // fold a hypothetical failure into the same degraded path.
            match handle.join().unwrap_or_else(Err) {
                Ok(local) => out.extend(local),
                Err(payload) => errors.push(MiningError::WorkerPanicked {
                    worker,
                    message: panic_message(payload.as_ref()),
                }),
            }
        }
    });

    let mut result =
        MiningResult::complete(out, n, transactions.global_accum()).governed_by(governor);
    result.errors = errors;
    result
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_governor::{CancelReason, RunBudget, Termination};
    use hdx_items::Item;

    /// Catalog with items a0, a1 on attr 0 and b0, b1 on attr 1.
    fn catalog() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "0")),
            c.intern(Item::cat_eq(AttrId(0), 1, "a", "1")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "0")),
            c.intern(Item::cat_eq(AttrId(1), 1, "b", "1")),
        ];
        (c, ids)
    }

    #[test]
    fn known_small_database() {
        let (catalog, ids) = catalog();
        // 4 rows: {a0,b0}, {a0,b0}, {a0,b1}, {a1,b0}
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let outcomes = vec![
            Outcome::Bool(true),
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
        ];
        let t = Transactions::from_rows(rows, outcomes);
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        // min_count = 2: frequent = {a0}(3), {b0}(3), {a0,b0}(2).
        assert_eq!(r.itemsets.len(), 3);
        let joint = Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]);
        let fi = r.find(&joint).unwrap();
        assert_eq!(fi.accum.count(), 2);
        assert_eq!(fi.accum.statistic(), Some(1.0), "both joint rows are T");
        assert_eq!(r.global.statistic(), Some(0.5));
        assert_eq!(r.divergence(fi), Some(0.5));
        assert_eq!(r.termination, Termination::Complete);
        assert!(!r.is_partial());
    }

    #[test]
    fn same_attribute_items_never_combine() {
        let (catalog, ids) = catalog();
        // a0 and a1 co-occur in generalized-style rows.
        let rows = vec![vec![ids[0], ids[1], ids[2]]; 4];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.1,
                ..MiningConfig::default()
            },
        );
        for fi in &r.itemsets {
            let attrs: Vec<_> = fi
                .itemset
                .items()
                .iter()
                .map(|&i| catalog.attr_of(i))
                .collect();
            let mut dedup = attrs.clone();
            dedup.dedup();
            assert_eq!(attrs.len(), dedup.len(), "duplicate attribute in {fi:?}");
        }
        // {a0,a1} absent, {a0,b0} and {a1,b0} present.
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]))
            .is_none());
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[2]]))
            .is_some());
    }

    #[test]
    fn empty_database() {
        let (catalog, _) = catalog();
        let t = Transactions::from_rows(vec![], vec![]);
        let r = vertical(&t, &catalog, &MiningConfig::default());
        assert!(r.itemsets.is_empty());
        assert_eq!(r.n_rows, 0);
        assert_eq!(r.termination, Termination::Complete);
    }

    #[test]
    fn support_threshold_is_inclusive() {
        let (catalog, ids) = catalog();
        let rows = vec![vec![ids[0]], vec![ids[0]], vec![ids[1]], vec![ids[1]]];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(false); 4]);
        // s = 0.5 → min_count = 2; both items have exactly 2.
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        assert_eq!(r.itemsets.len(), 2);
        // s = 0.51 → min_count = 3; nothing qualifies.
        let r2 = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.51,
                ..MiningConfig::default()
            },
        );
        assert!(r2.itemsets.is_empty());
    }

    #[test]
    fn kernel_accumulators_match_scalar_reference() {
        let (catalog, ids) = catalog();
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
            vec![ids[0], ids[2]],
        ];
        // Mixed outcome kinds exercise the numeric kernel path end to end.
        let outcomes = vec![
            Outcome::Bool(true),
            Outcome::Real(2.5),
            Outcome::Undefined,
            Outcome::Bool(false),
            Outcome::Real(-1.0),
        ];
        let t = Transactions::from_rows(rows, outcomes.clone());
        let r = vertical(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.2,
                ..MiningConfig::default()
            },
        );
        assert!(!r.itemsets.is_empty());
        let covers = item_covers(&t);
        for fi in &r.itemsets {
            let mut joint = Bitset::all_set(t.n_rows());
            for &item in fi.itemset.items() {
                let (_, cover) = covers
                    .iter()
                    .find(|(i, _)| *i == item)
                    .expect("mined item has a cover");
                joint.and_assign(cover);
            }
            assert_eq!(fi.accum, accum_scalar(&joint, &outcomes), "{fi:?}");
        }
    }

    #[test]
    fn itemset_budget_truncates_to_exact_subset() {
        let (catalog, ids) = catalog();
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            min_support: 0.25,
            ..MiningConfig::default()
        };
        let full = vertical(&t, &catalog, &config);
        assert!(full.itemsets.len() > 2);

        let governor = Governor::new(RunBudget::unbounded().with_max_itemsets(2));
        let partial = vertical_governed(&t, &catalog, &config, &governor);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert!(partial.is_partial());
        assert_eq!(partial.itemsets.len(), 2);
        assert_eq!(partial.counters.itemsets, 2);
        for fi in &partial.itemsets {
            let reference = full.find(&fi.itemset).expect("subset of unbounded run");
            assert_eq!(reference.accum.count(), fi.accum.count());
        }
    }

    #[test]
    fn byte_budget_only_charges_materialised_covers() {
        let (catalog, ids) = catalog();
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            min_support: 0.25,
            ..MiningConfig::default()
        };
        // Unbounded run on 4 rows: singletons and leaves are free; only
        // extendable joint covers (8 bytes each) hit the byte counter.
        let governor = Governor::unbounded();
        let full = vertical_governed(&t, &catalog, &config, &governor);
        assert_eq!(full.termination, Termination::Complete);
        let bytes = governor.counters().candidate_bytes;
        assert!(
            bytes < full.itemsets.len() as u64 * cover_bytes(4),
            "leaf/singleton candidates must not be charged: {bytes}"
        );

        // A byte budget still truncates to an exact subset.
        let tight = Governor::new(RunBudget::unbounded().with_max_candidate_bytes(8));
        let partial = vertical_governed(&t, &catalog, &config, &tight);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert!(partial.itemsets.len() < full.itemsets.len());
        assert_eq!(
            partial.counters.itemsets,
            partial.itemsets.len() as u64,
            "itemset counter equals emissions even when the byte budget trips"
        );
        for fi in &partial.itemsets {
            let reference = full.find(&fi.itemset).expect("subset of unbounded run");
            assert_eq!(reference.accum, fi.accum);
        }
    }

    #[test]
    fn parallel_budget_truncates_without_panicking() {
        let (catalog, ids) = catalog();
        let rows = vec![
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[3]],
            vec![ids[1], ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            min_support: 0.25,
            ..MiningConfig::default()
        };
        let full = vertical(&t, &catalog, &config);
        let governor = Governor::new(RunBudget::unbounded().with_max_itemsets(1));
        let partial = vertical_parallel_governed(&t, &catalog, &config, &governor);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert!(partial.itemsets.len() <= full.itemsets.len());
        assert!(partial.errors.is_empty());
        for fi in &partial.itemsets {
            assert!(full.find(&fi.itemset).is_some());
        }
    }

    #[test]
    fn cancelled_token_stops_run_before_work() {
        let (catalog, ids) = catalog();
        let rows = vec![vec![ids[0], ids[2]]; 8];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 8]);
        let governor = Governor::unbounded();
        governor.cancel_token().cancel();
        let r = vertical_governed(&t, &catalog, &MiningConfig::default(), &governor);
        assert_eq!(r.termination, Termination::Cancelled(CancelReason::User));
    }
}
