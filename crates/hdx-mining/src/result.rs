//! Mining results: frequent itemsets with their accumulated statistics.

use hdx_governor::{Governor, RunCounters, Termination};
use hdx_items::{ItemCatalog, Itemset};
use hdx_stats::StatAccum;

/// One frequent itemset together with the statistics accumulated over its
/// support set during mining.
#[derive(Debug, Clone)]
pub struct FrequentItemset {
    /// The itemset.
    pub itemset: Itemset,
    /// Accumulated statistics (count, valid count, Σ, Σ²) over `D_I`.
    pub accum: StatAccum,
}

/// A non-fatal error absorbed during mining. The run degrades instead of
/// dying: the result still carries every itemset mined by the surviving
/// workers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MiningError {
    /// A worker thread of [`vertical_parallel`](crate::vertical_parallel)
    /// panicked; its share of the search space is missing from the result.
    WorkerPanicked {
        /// Index of the panicked worker.
        worker: usize,
        /// The panic payload, when it was a string.
        message: String,
    },
}

impl std::fmt::Display for MiningError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorkerPanicked { worker, message } => {
                write!(f, "mining worker {worker} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for MiningError {}

/// The output of one mining run.
#[derive(Debug, Clone)]
pub struct MiningResult {
    /// All frequent itemsets of length ≥ 1 (unordered).
    pub itemsets: Vec<FrequentItemset>,
    /// Number of transactions mined.
    pub n_rows: usize,
    /// Statistics of the whole database (the empty itemset / `f(D)`).
    pub global: StatAccum,
    /// How the run ended. Anything but [`Termination::Complete`] means
    /// `itemsets` is a (still exact) subset of the unbounded result.
    pub termination: Termination,
    /// Work charged against the run's budget.
    pub counters: RunCounters,
    /// Non-fatal errors absorbed during the run (e.g. worker panics).
    pub errors: Vec<MiningError>,
}

impl MiningResult {
    /// A result from an ungoverned (complete) run: `termination` is
    /// [`Termination::Complete`], counters zero, no errors.
    pub fn complete(itemsets: Vec<FrequentItemset>, n_rows: usize, global: StatAccum) -> Self {
        Self {
            itemsets,
            n_rows,
            global,
            termination: Termination::Complete,
            counters: RunCounters::default(),
            errors: Vec::new(),
        }
    }

    /// Stamps the governor's termination and counter snapshot onto `self`.
    #[must_use]
    pub fn governed_by(mut self, governor: &Governor) -> Self {
        self.termination = governor.termination();
        self.counters = governor.counters();
        self
    }

    /// `true` when the run was cut short (by budget, deadline, or
    /// cancellation) or absorbed a worker error.
    pub fn is_partial(&self) -> bool {
        self.termination.is_partial() || !self.errors.is_empty()
    }
    /// The support fraction of a frequent itemset.
    pub fn support(&self, fi: &FrequentItemset) -> f64 {
        fi.accum.count() as f64 / self.n_rows.max(1) as f64
    }

    /// The divergence of a frequent itemset from the global statistic.
    pub fn divergence(&self, fi: &FrequentItemset) -> Option<f64> {
        fi.accum.divergence(&self.global)
    }

    /// The Welch t-value of a frequent itemset's divergence.
    pub fn t_value(&self, fi: &FrequentItemset) -> f64 {
        fi.accum.t_value(&self.global)
    }

    /// Looks up a mined itemset.
    pub fn find(&self, itemset: &Itemset) -> Option<&FrequentItemset> {
        self.itemsets.iter().find(|fi| &fi.itemset == itemset)
    }

    /// The frequent itemset with the highest divergence (ties → first),
    /// optionally restricted by a predicate.
    pub fn max_divergence_by(
        &self,
        mut keep: impl FnMut(&FrequentItemset) -> bool,
    ) -> Option<(&FrequentItemset, f64)> {
        let mut best: Option<(&FrequentItemset, f64)> = None;
        for fi in &self.itemsets {
            if !keep(fi) {
                continue;
            }
            let Some(d) = self.divergence(fi) else {
                continue;
            };
            if best.is_none_or(|(_, bd)| d > bd) {
                best = Some((fi, d));
            }
        }
        best
    }

    /// The maximum divergence over all itemsets (`None` when empty).
    pub fn max_divergence(&self) -> Option<f64> {
        self.max_divergence_by(|_| true).map(|(_, d)| d)
    }

    /// The maximum |divergence| over all itemsets.
    pub fn max_abs_divergence(&self) -> Option<f64> {
        self.itemsets
            .iter()
            .filter_map(|fi| self.divergence(fi))
            .map(f64::abs)
            .fold(None, |acc: Option<f64>, d| {
                Some(acc.map_or(d, |a| a.max(d)))
            })
    }

    /// Itemsets sorted by descending divergence.
    pub fn ranked_by_divergence(&self) -> Vec<&FrequentItemset> {
        let mut v: Vec<(&FrequentItemset, f64)> = self
            .itemsets
            .iter()
            .filter_map(|fi| self.divergence(fi).map(|d| (fi, d)))
            .collect();
        v.sort_by(|(_, a), (_, b)| b.total_cmp(a));
        v.into_iter().map(|(fi, _)| fi).collect()
    }

    /// The *closed* frequent itemsets: those with no frequent superset of
    /// equal support. Closed itemsets losslessly summarise the support
    /// structure (every frequent itemset's support is recoverable as the
    /// maximum over closed supersets).
    pub fn closed(&self) -> Vec<&FrequentItemset> {
        self.itemsets
            .iter()
            .filter(|fi| {
                !self.itemsets.iter().any(|other| {
                    other.itemset.len() == fi.itemset.len() + 1
                        && other.accum.count() == fi.accum.count()
                        && other.itemset.is_superset_of(&fi.itemset)
                })
            })
            .collect()
    }

    /// The *maximal* frequent itemsets: those with no frequent superset at
    /// all (the border of the frequent lattice).
    pub fn maximal(&self) -> Vec<&FrequentItemset> {
        self.itemsets
            .iter()
            .filter(|fi| {
                !self.itemsets.iter().any(|other| {
                    other.itemset.len() == fi.itemset.len() + 1
                        && other.itemset.is_superset_of(&fi.itemset)
                })
            })
            .collect()
    }

    /// Renders the top `k` itemsets by divergence as an aligned text table.
    pub fn top_k_table(&self, k: usize, catalog: &ItemCatalog) -> String {
        let mut out = String::from("itemset | sup | f | div | t\n");
        for fi in self.ranked_by_divergence().into_iter().take(k) {
            out.push_str(&format!(
                "{} | {:.3} | {:.3} | {:+.3} | {:.1}\n",
                fi.itemset.display(catalog),
                self.support(fi),
                fi.accum.statistic().unwrap_or(f64::NAN),
                self.divergence(fi).unwrap_or(f64::NAN),
                self.t_value(fi),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::{Item, ItemId};
    use hdx_stats::Outcome;

    fn fi(items: &[u32], outcomes: &[Outcome]) -> FrequentItemset {
        FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect()),
            accum: StatAccum::from_outcomes(outcomes),
        }
    }

    fn result() -> MiningResult {
        let global = StatAccum::from_outcomes(&[
            Outcome::Bool(true),
            Outcome::Bool(false),
            Outcome::Bool(false),
            Outcome::Bool(false),
        ]); // f(D) = 0.25
        MiningResult::complete(
            vec![
                fi(&[0], &[Outcome::Bool(true), Outcome::Bool(true)]), // f=1, div=.75
                fi(&[1], &[Outcome::Bool(false), Outcome::Bool(false)]), // f=0, div=-.25
                fi(&[0, 1], &[Outcome::Bool(true)]),                   // f=1, div=.75
                fi(&[2], &[Outcome::Undefined]),                       // undefined
            ],
            4,
            global,
        )
    }

    #[test]
    fn support_and_divergence() {
        let r = result();
        assert_eq!(r.support(&r.itemsets[0]), 0.5);
        assert_eq!(r.divergence(&r.itemsets[0]), Some(0.75));
        assert_eq!(r.divergence(&r.itemsets[1]), Some(-0.25));
        assert_eq!(r.divergence(&r.itemsets[3]), None);
    }

    #[test]
    fn max_divergence_variants() {
        let r = result();
        assert_eq!(r.max_divergence(), Some(0.75));
        assert_eq!(r.max_abs_divergence(), Some(0.75));
        // Restrict to length-1 itemsets with negative divergence.
        let (best, d) = r
            .max_divergence_by(|fi| fi.itemset.len() == 1 && r.divergence(fi).unwrap_or(0.0) < 0.0)
            .unwrap();
        assert_eq!(best.itemset.items(), &[ItemId(1)]);
        assert_eq!(d, -0.25);
    }

    #[test]
    fn ranking_descends() {
        let r = result();
        let ranked = r.ranked_by_divergence();
        assert_eq!(ranked.len(), 3, "undefined-divergence itemset excluded");
        let divs: Vec<f64> = ranked.iter().map(|fi| r.divergence(fi).unwrap()).collect();
        assert!(divs.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn find_by_itemset() {
        let r = result();
        let target = Itemset::from_sorted_unchecked(vec![ItemId(0), ItemId(1)]);
        assert!(r.find(&target).is_some());
        let missing = Itemset::from_sorted_unchecked(vec![ItemId(9)]);
        assert!(r.find(&missing).is_none());
    }

    #[test]
    fn closed_and_maximal_selection() {
        // Lattice: a(3), b(2), ab(2). ab closed+maximal; b NOT closed
        // (ab has equal support); a closed but not maximal.
        let global = StatAccum::from_outcomes(&[Outcome::Bool(false); 3]);
        let mk = |items: &[u32], n: usize| FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect()),
            accum: StatAccum::from_outcomes(&vec![Outcome::Bool(true); n]),
        };
        let r = MiningResult::complete(vec![mk(&[0], 3), mk(&[1], 2), mk(&[0, 1], 2)], 3, global);
        let closed: Vec<Vec<u32>> = r
            .closed()
            .iter()
            .map(|fi| fi.itemset.items().iter().map(|i| i.0).collect())
            .collect();
        assert_eq!(closed, vec![vec![0], vec![0, 1]]);
        let maximal: Vec<Vec<u32>> = r
            .maximal()
            .iter()
            .map(|fi| fi.itemset.items().iter().map(|i| i.0).collect())
            .collect();
        assert_eq!(maximal, vec![vec![0, 1]]);
    }

    #[test]
    fn table_renders() {
        let r = result();
        let mut catalog = ItemCatalog::new();
        for (code, name) in [(0, "a"), (1, "b"), (2, "c")] {
            catalog.intern(Item::cat_eq(AttrId(code as u16), code, "attr", name));
        }
        let table = r.top_k_table(2, &catalog);
        assert!(table.contains("attr=a"));
        assert!(table.lines().count() <= 3);
    }
}
