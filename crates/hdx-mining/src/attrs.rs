//! A tiny set over raw attribute ids for the miners' inner loops.
//!
//! Every miner must enforce the one-item-per-attribute itemset constraint,
//! which previously meant either a linear scan over the prefix
//! (`prefix.iter().any(|p| catalog.attr_of(p) == attr)`) or a
//! `HashSet<AttrId>` — both measurable in the candidate loop. Attribute ids
//! are assigned densely from zero, so in practice they fit a single `u128`
//! membership mask; ids ≥ 128 spill to a small vector so correctness never
//! depends on the density assumption.

/// A set of raw attribute ids (`AttrId.0`) with O(1) membership for ids
/// below 128 and a linear-scan spill vector beyond.
#[derive(Debug, Default)]
pub(crate) struct AttrSet {
    /// Membership mask for attribute ids `0..128`.
    mask: u128,
    /// Attribute ids `>= 128`, unordered, no duplicates.
    spill: Vec<u16>,
}

impl AttrSet {
    /// An empty set.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Whether `attr` is a member.
    #[inline]
    pub(crate) fn contains(&self, attr: u16) -> bool {
        if attr < 128 {
            self.mask & (1u128 << attr) != 0
        } else {
            self.spill.contains(&attr)
        }
    }

    /// Inserts `attr` (idempotent).
    #[inline]
    pub(crate) fn insert(&mut self, attr: u16) {
        if attr < 128 {
            self.mask |= 1u128 << attr;
        } else if !self.spill.contains(&attr) {
            self.spill.push(attr);
        }
    }

    /// Removes `attr` (no-op when absent).
    #[inline]
    pub(crate) fn remove(&mut self, attr: u16) {
        if attr < 128 {
            self.mask &= !(1u128 << attr);
        } else {
            self.spill.retain(|&a| a != attr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_and_spill_paths() {
        let mut s = AttrSet::new();
        for attr in [0u16, 63, 127, 128, 500] {
            assert!(!s.contains(attr));
            s.insert(attr);
            assert!(s.contains(attr));
            s.insert(attr); // idempotent
            assert!(s.contains(attr));
        }
        s.remove(63);
        s.remove(500);
        assert!(!s.contains(63) && !s.contains(500));
        assert!(s.contains(0) && s.contains(127) && s.contains(128));
        s.remove(42); // absent: no-op
        assert!(!s.contains(42));
    }
}
