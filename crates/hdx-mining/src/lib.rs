//! # hdx-mining
//!
//! Frequent (generalized) itemset mining with integrated statistic
//! accumulation — the substrate behind DivExplorer and H-DivExplorer
//! (paper §III-C, §V-B, Algorithm 1).
//!
//! Three interchangeable miners produce identical result sets:
//!
//! * [`apriori`] — level-wise candidate generation (Agrawal–Srikant) with
//!   vertical bitset counting;
//! * [`fpgrowth`] — FP-tree recursion (Han–Pei–Yin) extended to generalized
//!   transactions in the style of FP-tax;
//! * [`vertical`] — depth-first tidset (Eclat-style) search, the fastest of
//!   the three on dense data and used as a cross-checking oracle in tests
//!   (plus [`vertical_parallel`], the same search fanned out over threads).
//!
//! All miners consume [`Transactions`]: per-row item lists which, in
//! *generalized* mode, contain each attribute's matching leaf item **plus all
//! of its hierarchy ancestors** (Srikant–Agrawal extended transactions).
//! Itemsets never contain two items of the same attribute, which subsumes
//! the classic "no item together with its ancestor" generalized-mining rule.
//!
//! Every frequent itemset carries a [`StatAccum`](hdx_stats::StatAccum)
//! folded in during counting, so support, the statistic `f`, divergence and
//! the Welch t-value all come out of the single mining pass — the paper's
//! "divergence at essentially no additional cost" property.
//!
//! ```
//! use hdx_data::AttrId;
//! use hdx_items::{Item, ItemCatalog};
//! use hdx_mining::{mine, MiningConfig, Transactions};
//! use hdx_stats::Outcome;
//!
//! let mut catalog = ItemCatalog::new();
//! let a = catalog.intern(Item::cat_eq(AttrId(0), 0, "color", "red"));
//! let b = catalog.intern(Item::cat_eq(AttrId(1), 0, "size", "xl"));
//! let rows = vec![vec![a, b], vec![a, b], vec![a], vec![b]];
//! let outcomes = vec![
//!     Outcome::Bool(true),
//!     Outcome::Bool(true),
//!     Outcome::Bool(false),
//!     Outcome::Bool(false),
//! ];
//! let transactions = Transactions::from_rows(rows, outcomes);
//!
//! let result = mine(&transactions, &catalog, &MiningConfig {
//!     min_support: 0.5,
//!     ..MiningConfig::default()
//! });
//! // {red, xl} is frequent (2 of 4 rows) and perfectly predicts the outcome.
//! let joint = result.itemsets.iter().find(|fi| fi.itemset.len() == 2).unwrap();
//! assert_eq!(joint.accum.count(), 2);
//! assert_eq!(joint.accum.statistic(), Some(1.0));
//! assert_eq!(result.divergence(joint), Some(0.5));
//! ```

/// Runtime validators for mining results (itemset validity, support
/// threshold, anti-monotonicity).
pub mod invariants;

/// Work-stealing scheduler behind [`vertical_parallel`]: injector cursor +
/// Chase–Lev-style per-worker deques over DFS subtree roots.
pub mod sched;

/// The atomics behind the work-stealing scheduler, swapped for the
/// `hdx-loom` modeled twins under `--cfg hdx_loom` so the models in
/// `tests/loom_models.rs` drive the *real* push/pop/steal code through
/// every interleaving (see DESIGN.md §13 and `cargo xtask sanitize`).
#[cfg(not(hdx_loom))]
pub(crate) mod sync {
    pub(crate) use std::sync::atomic;
}
/// `hdx-loom` twin of the `sync` facade (active under `--cfg hdx_loom`).
#[cfg(hdx_loom)]
pub(crate) mod sync {
    pub(crate) use hdx_loom::sync::atomic;
}

mod apriori;
mod attrs;
mod checkpoint;
mod fpgrowth;
mod result;
mod transactions;
mod vertical;

pub use apriori::{apriori, apriori_governed};
pub use checkpoint::{
    checkpoint_algorithm, mine_governed_ckpt, restore_itemset, snapshot_itemset, validate_resume,
};
pub use fpgrowth::{fpgrowth, fpgrowth_governed};
pub use result::{FrequentItemset, MiningError, MiningResult};
pub use transactions::Transactions;
pub use vertical::{
    accum_scalar, vertical, vertical_governed, vertical_parallel, vertical_parallel_governed,
};

// Re-exported so downstream crates can build budgets without depending on
// `hdx-governor` directly.
pub use hdx_governor::{CancelToken, Governor, RunBudget, RunCounters, Termination};

use hdx_items::ItemCatalog;

/// Which mining algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MiningAlgorithm {
    /// Level-wise Apriori with vertical bitset counting.
    Apriori,
    /// FP-Growth with per-node statistic accumulation.
    FpGrowth,
    /// Depth-first vertical (Eclat-style) search (default).
    #[default]
    Vertical,
    /// [`Vertical`](MiningAlgorithm::Vertical) with the first-level subtrees
    /// distributed over all available cores.
    VerticalParallel,
}

impl MiningAlgorithm {
    /// A stable lower-case label (used in telemetry spans and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Apriori => "apriori",
            Self::FpGrowth => "fpgrowth",
            Self::Vertical => "vertical",
            Self::VerticalParallel => "vertical_parallel",
        }
    }
}

/// Mining parameters.
#[derive(Debug, Clone, Copy)]
pub struct MiningConfig {
    /// Minimum support `s` as a fraction of the dataset.
    pub min_support: f64,
    /// Optional cap on itemset length (`None` = unbounded).
    pub max_len: Option<usize>,
    /// Algorithm choice.
    pub algorithm: MiningAlgorithm,
    /// Worker-thread count for [`MiningAlgorithm::VerticalParallel`]
    /// (`None` = all available cores; `Some(0)` is treated as 1). Always
    /// additionally clamped to the number of subtree roots — see
    /// [`MiningConfig::n_workers`]. Ignored by the serial algorithms.
    pub threads: Option<usize>,
}

impl Default for MiningConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            max_len: None,
            algorithm: MiningAlgorithm::default(),
            threads: None,
        }
    }
}

impl MiningConfig {
    /// The absolute row-count threshold implied by `min_support` for
    /// `n_rows` transactions: `sup(I) ≥ s  ⇔  count ≥ ⌈s·n⌉`.
    pub fn min_count(&self, n_rows: usize) -> u64 {
        (self.min_support * n_rows as f64).ceil().max(1.0) as u64
    }

    /// The worker-thread count a parallel mine over `n_roots` subtree roots
    /// will use: the [`threads`](Self::threads) override when set (floored
    /// at 1), else `std::thread::available_parallelism()`, in both cases
    /// clamped to `n_roots` (an idle worker with no root to claim is pure
    /// overhead).
    pub fn n_workers(&self, n_roots: usize) -> usize {
        let requested = self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
        });
        requested.clamp(1, n_roots.max(1))
    }
}

/// Mines all frequent itemsets of `transactions` under `config`.
///
/// Under the `debug-invariants` feature, every result is validated against
/// the mining-lattice invariants (see [`invariants`]) before it is returned.
///
/// # Panics
/// Panics when `config.min_support` is outside `(0, 1]` (and, under
/// `debug-invariants`, when the produced result violates an invariant).
pub fn mine(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    mine_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`mine`] under a [`Governor`]: the selected miner polls the governor for
/// deadline, budgets and cancellation, and degrades to a partial-but-exact
/// subset result (see [`MiningResult::termination`]) instead of running away.
///
/// Lattice invariants are only asserted for complete runs: a truncated
/// result legitimately violates anti-monotonicity of the *emitted* set (a
/// superset can be emitted before a sibling subset's subtree is reached).
///
/// # Panics
/// Panics when `config.min_support` is outside `(0, 1]` (and, under
/// `debug-invariants`, when a complete result violates an invariant).
pub fn mine_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    assert!(
        config.min_support > 0.0 && config.min_support <= 1.0,
        "min_support must be in (0, 1]"
    );
    hdx_obs::span!("mine", str config.algorithm.as_str());
    let result = match config.algorithm {
        MiningAlgorithm::Apriori => apriori_governed(transactions, catalog, config, governor),
        MiningAlgorithm::FpGrowth => fpgrowth_governed(transactions, catalog, config, governor),
        MiningAlgorithm::Vertical => vertical_governed(transactions, catalog, config, governor),
        MiningAlgorithm::VerticalParallel => {
            vertical_parallel_governed(transactions, catalog, config, governor)
        }
    };
    // End-of-stage budget sample (level 0): where consumption stood when the
    // selected miner returned.
    #[cfg(feature = "obs")]
    governor.record_obs_snapshot(0);
    hdx_obs::counter_add!(MineItemsetsEmitted, result.itemsets.len() as u64);
    #[cfg(feature = "debug-invariants")]
    if result.termination.is_complete() && result.errors.is_empty() {
        invariants::assert_result(&result, catalog, config.min_count(transactions.n_rows()));
    }
    result
}

#[cfg(test)]
mod cross_tests {
    //! Cross-algorithm equivalence tests: the three miners must produce the
    //! same itemsets with the same accumulators.

    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::{HierarchySet, Interval, Item, ItemHierarchy};
    use hdx_stats::Outcome;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    /// Random mixed frame with a hierarchy on the continuous attribute.
    fn random_setup(n: usize, seed: u64) -> (Transactions, Transactions, ItemCatalog) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let c = b.add_categorical("c").unwrap();
        let d = b.add_categorical("d").unwrap();
        let mut outcomes = Vec::with_capacity(n);
        for _ in 0..n {
            let xv: f64 = rng.random_range(0.0..100.0);
            let cv = ["a", "b", "c"][rng.random_range(0..3usize)];
            let dv = ["u", "v"][rng.random_range(0..2usize)];
            b.push_row(vec![
                Value::Num(xv),
                Value::Cat(cv.into()),
                Value::Cat(dv.into()),
            ])
            .unwrap();
            outcomes.push(if rng.random::<f64>() < 0.1 {
                Outcome::Undefined
            } else {
                Outcome::Bool(xv > 60.0 && rng.random::<f64>() < 0.8)
            });
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();

        // Two-level hierarchy on x: (≤50, >50), refined at 25 and 75.
        let mut hx = ItemHierarchy::new(x);
        let le50 = catalog.intern(Item::range(x, Interval::at_most(50.0), "x"));
        let gt50 = catalog.intern(Item::range(x, Interval::greater_than(50.0), "x"));
        let le25 = catalog.intern(Item::range(x, Interval::at_most(25.0), "x"));
        let m2550 = catalog.intern(Item::range(x, Interval::new(25.0, 50.0), "x"));
        let m5075 = catalog.intern(Item::range(x, Interval::new(50.0, 75.0), "x"));
        let gt75 = catalog.intern(Item::range(x, Interval::greater_than(75.0), "x"));
        hx.add_root(le50);
        hx.add_root(gt50);
        hx.add_child(le50, le25);
        hx.add_child(le50, m2550);
        hx.add_child(gt50, m5075);
        hx.add_child(gt50, gt75);

        let mut hierarchies = HierarchySet::new();
        hierarchies.push(hx);
        for (attr, name) in [(c, "c"), (d, "d")] {
            let col = df.categorical(attr).clone();
            let items: Vec<_> = (0..col.n_levels() as u32)
                .map(|code| catalog.intern(Item::cat_eq(attr, code, name, col.level(code))))
                .collect();
            hierarchies.push(ItemHierarchy::flat(attr, items));
        }
        let base = Transactions::encode_base(&df, &catalog, &hierarchies, &outcomes);
        let gen = Transactions::encode_generalized(&df, &catalog, &hierarchies, &outcomes);
        (base, gen, catalog)
    }

    fn sorted_result(r: &MiningResult) -> Vec<(Vec<u32>, u64, u64)> {
        let mut v: Vec<(Vec<u32>, u64, u64)> = r
            .itemsets
            .iter()
            .map(|fi| {
                (
                    fi.itemset.items().iter().map(|i| i.0).collect(),
                    fi.accum.count(),
                    fi.accum.valid_count(),
                )
            })
            .collect();
        v.sort();
        v
    }

    #[test]
    fn all_algorithms_agree_base() {
        let (base, _, catalog) = random_setup(400, 42);
        for support in [0.02, 0.05, 0.2] {
            let mk = |algorithm| MiningConfig {
                min_support: support,
                max_len: None,
                algorithm,
                threads: None,
            };
            let a = mine(&base, &catalog, &mk(MiningAlgorithm::Apriori));
            let f = mine(&base, &catalog, &mk(MiningAlgorithm::FpGrowth));
            let v = mine(&base, &catalog, &mk(MiningAlgorithm::Vertical));
            let vp = mine(&base, &catalog, &mk(MiningAlgorithm::VerticalParallel));
            assert_eq!(
                sorted_result(&a),
                sorted_result(&v),
                "apriori vs vertical, s={support}"
            );
            assert_eq!(
                sorted_result(&f),
                sorted_result(&v),
                "fpgrowth vs vertical, s={support}"
            );
            assert_eq!(
                sorted_result(&vp),
                sorted_result(&v),
                "parallel vs vertical, s={support}"
            );
            assert!(!a.itemsets.is_empty());
        }
    }

    #[test]
    fn all_algorithms_agree_generalized() {
        let (_, gen, catalog) = random_setup(400, 7);
        for support in [0.05, 0.1] {
            let mk = |algorithm| MiningConfig {
                min_support: support,
                max_len: None,
                algorithm,
                threads: None,
            };
            let a = mine(&gen, &catalog, &mk(MiningAlgorithm::Apriori));
            let f = mine(&gen, &catalog, &mk(MiningAlgorithm::FpGrowth));
            let v = mine(&gen, &catalog, &mk(MiningAlgorithm::Vertical));
            let vp = mine(&gen, &catalog, &mk(MiningAlgorithm::VerticalParallel));
            assert_eq!(
                sorted_result(&a),
                sorted_result(&v),
                "apriori vs vertical, s={support}"
            );
            assert_eq!(
                sorted_result(&f),
                sorted_result(&v),
                "fpgrowth vs vertical, s={support}"
            );
            assert_eq!(
                sorted_result(&vp),
                sorted_result(&v),
                "parallel vs vertical, s={support}"
            );
        }
    }

    #[test]
    fn generalized_results_superset_of_base() {
        let (base, gen, catalog) = random_setup(300, 99);
        let config = MiningConfig {
            min_support: 0.05,
            ..MiningConfig::default()
        };
        let b = mine(&base, &catalog, &config);
        let g = mine(&gen, &catalog, &config);
        let gset: std::collections::HashSet<_> =
            g.itemsets.iter().map(|fi| fi.itemset.clone()).collect();
        for fi in &b.itemsets {
            assert!(
                gset.contains(&fi.itemset),
                "base itemset missing from generalized mining"
            );
        }
        assert!(g.itemsets.len() > b.itemsets.len());
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let (base, _, catalog) = random_setup(300, 5);
        let config = MiningConfig {
            min_support: 0.02,
            max_len: Some(2),
            algorithm: MiningAlgorithm::Vertical,
            threads: None,
        };
        for algorithm in [
            MiningAlgorithm::Apriori,
            MiningAlgorithm::FpGrowth,
            MiningAlgorithm::Vertical,
            MiningAlgorithm::VerticalParallel,
        ] {
            let r = mine(
                &base,
                &catalog,
                &MiningConfig {
                    algorithm,
                    ..config
                },
            );
            assert!(r.itemsets.iter().all(|fi| fi.itemset.len() <= 2));
            assert!(r.itemsets.iter().any(|fi| fi.itemset.len() == 2));
        }
    }

    #[test]
    #[should_panic(expected = "min_support")]
    fn zero_support_rejected() {
        let (base, _, catalog) = random_setup(10, 1);
        let _ = mine(
            &base,
            &catalog,
            &MiningConfig {
                min_support: 0.0,
                ..MiningConfig::default()
            },
        );
    }
}
