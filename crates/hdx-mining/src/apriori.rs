//! Level-wise Apriori (Agrawal–Srikant) with vertical bitset counting and
//! integrated statistic accumulation.
//!
//! Candidate generation follows the classic join-and-prune scheme over the
//! previous level; support counting is a fused multi-way
//! [`Bitset::intersection_count`] over the member items' cover bitsets, so
//! infrequent candidates never materialise anything. Frequent candidates are
//! intersected into a single reusable scratch cover and folded through the
//! word-level [`OutcomePlanes`] kernel. The per-attribute constraint is
//! enforced at join time, which also implements the generalized-itemset rule
//! that an item never joins one of its own ancestors.

use std::collections::HashSet;

use hdx_checkpoint::{Checkpointer, MiningProgress};
use hdx_governor::{fail_point, Governor};
use hdx_items::{Bitset, ItemCatalog, ItemId, Itemset};
use hdx_stats::OutcomePlanes;

use crate::checkpoint::{progress_snapshot, restore_itemset};
use crate::result::{FrequentItemset, MiningResult};
use crate::transactions::Transactions;
use crate::vertical::{cover_bytes, item_covers};
use crate::MiningConfig;

/// Mines all frequent itemsets level by level.
pub fn apriori(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
) -> MiningResult {
    apriori_governed(transactions, catalog, config, &Governor::unbounded())
}

/// [`apriori`] under a [`Governor`]: polls for deadline/budget/cancellation
/// at candidate granularity and stops emitting once the budget trips, so the
/// result is a (still exact) subset of the unbounded run. Candidate bytes
/// are charged only when a frequent candidate's joint cover is materialised;
/// candidates pruned by the fused support count are free.
pub fn apriori_governed(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
) -> MiningResult {
    apriori_run(transactions, catalog, config, governor, None, None)
}

/// The shared Apriori driver behind [`apriori_governed`] and
/// [`crate::mine_governed_ckpt`]: optionally records a checkpoint boundary
/// after every fully-counted level (cursor = completed level `k`, frontier =
/// that level's survivors) and optionally restarts from such a boundary.
pub(crate) fn apriori_run(
    transactions: &Transactions,
    catalog: &ItemCatalog,
    config: &MiningConfig,
    governor: &Governor,
    mut ckpt: Option<&mut Checkpointer>,
    resume: Option<&MiningProgress>,
) -> MiningResult {
    let n = transactions.n_rows();
    let min_count = config.min_count(n);
    let candidate_bytes = cover_bytes(n);
    let planes = OutcomePlanes::from_outcomes(transactions.outcomes());

    fail_point!("mining::apriori");

    // L1 and the dense ItemId-indexed cover position table.
    let covers: Vec<(ItemId, Bitset)> = item_covers(transactions);
    let table_len = covers.last().map_or(0, |(item, _)| item.index() + 1);
    let mut cover_pos: Vec<u32> = vec![u32::MAX; table_len];
    for (pos, (item, _)) in covers.iter().enumerate() {
        cover_pos[item.index()] = pos as u32;
    }
    let cover_of = |item: ItemId| -> &Bitset { &covers[cover_pos[item.index()] as usize].1 };

    let mut out: Vec<FrequentItemset>;
    let mut level: Vec<Itemset>;
    let mut k: usize;
    if let Some(progress) = resume {
        // Restart from a level boundary: `emitted` is exact and `frontier`
        // is the completed level's survivors, so the join/count loop below
        // continues as if the interruption never happened.
        out = progress.emitted.iter().map(restore_itemset).collect();
        level = progress
            .frontier
            .iter()
            .map(|items| Itemset::from_sorted_unchecked(items.iter().map(|&i| ItemId(i)).collect()))
            .collect();
        k = (progress.cursor as usize).max(1);
    } else {
        out = Vec::new();
        level = Vec::new();
        hdx_obs::counter_add!(MineCandidatesGenerated, covers.len() as u64);
        for (item, cover) in &covers {
            let count = cover.count() as u64;
            if count >= min_count {
                // Charge each emission before pushing so every emitted itemset
                // carries its exact accumulator even when truncated.
                if !governor.keep_going() || !governor.record_itemsets(1) {
                    break;
                }
                let itemset = Itemset::singleton(*item);
                out.push(FrequentItemset {
                    itemset: itemset.clone(),
                    accum: planes.accum(cover.words(), count),
                });
                level.push(itemset);
            } else {
                hdx_obs::counter_add!(MineCandidatesPrunedSupport, 1);
            }
        }
        level.sort();
        #[cfg(feature = "obs")]
        governor.record_obs_snapshot(1);
        k = 1;
        // L1 is a boundary only when it completed (a truncated L1 would
        // resume into a frontier missing surviving singletons).
        if !governor.is_tripped() {
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.at_boundary(progress_snapshot("apriori", 1, n, &out, &level, governor));
            }
        }
    }

    // Reusable per-level scratch: the member-cover list and the joint cover
    // of the frequent candidate being emitted.
    let mut member_covers: Vec<&Bitset> = Vec::new();
    let mut joint = Bitset::new(n);
    'levels: while !level.is_empty() && config.max_len.is_none_or(|m| k < m) {
        if !governor.keep_going() {
            break;
        }
        k += 1;
        hdx_obs::span!("level", int k);
        #[cfg(feature = "obs")]
        let level_start_ns = hdx_obs::now_ns();
        let prev: HashSet<&Itemset> = level.iter().collect();
        let mut next: Vec<Itemset> = Vec::new();

        // Join step: pairs sharing the first k-2 items (level is sorted, so
        // equal prefixes are adjacent).
        let mut i = 0;
        while i < level.len() {
            // Find the block sharing level[i]'s (k-2)-prefix.
            let prefix = &level[i].items()[..k - 2];
            let mut j = i;
            while j < level.len() && &level[j].items()[..k - 2] == prefix {
                j += 1;
            }
            for a in i..j {
                if !governor.keep_going() {
                    break 'levels;
                }
                for b in (a + 1)..j {
                    let ([.., la], [.., lb]) = (level[a].items(), level[b].items()) else {
                        debug_assert!(false, "level itemsets are non-empty");
                        continue;
                    };
                    let (la, lb) = (*la, *lb);
                    debug_assert!(la < lb, "level sorted lexicographically");
                    if catalog.attr_of(la) == catalog.attr_of(lb) {
                        hdx_obs::counter_add!(MineCandidatesPrunedAttr, 1);
                        continue;
                    }
                    let Some(candidate) = level[a].with_item(lb, catalog) else {
                        debug_assert!(false, "join pair attrs checked disjoint");
                        continue;
                    };
                    hdx_obs::counter_add!(MineCandidatesGenerated, 1);
                    // Prune: every (k-1)-subset must be frequent.
                    if candidate.sub_itemsets().all(|s| prev.contains(&s)) {
                        next.push(candidate);
                    } else {
                        hdx_obs::counter_add!(MineCandidatesPrunedSubset, 1);
                    }
                }
            }
            i = j;
        }

        // Count step: fused multi-way intersection count first; only
        // frequent candidates materialise (and get charged for) a cover.
        let mut survivors: Vec<Itemset> = Vec::new();
        for candidate in next {
            if !governor.keep_going() {
                break 'levels;
            }
            member_covers.clear();
            member_covers.extend(candidate.items().iter().map(|&item| cover_of(item)));
            let count = Bitset::intersection_count(&member_covers) as u64;
            if count < min_count {
                hdx_obs::counter_add!(MineCandidatesPrunedSupport, 1);
                continue;
            }
            // Materialising the joint cover for the kernel is the only
            // per-candidate byte cost.
            if !governor.record_candidate_bytes(candidate_bytes) {
                break 'levels;
            }
            let [first, second, rest @ ..] = member_covers.as_slice() else {
                debug_assert!(false, "candidates have k >= 2 items");
                continue;
            };
            joint.assign_and(first, second);
            for cover in rest {
                joint.and_assign(cover);
            }
            let accum = planes.accum(joint.words(), count);
            if !governor.record_itemsets(1) {
                break 'levels;
            }
            out.push(FrequentItemset {
                itemset: candidate.clone(),
                accum,
            });
            survivors.push(candidate);
        }
        survivors.sort();
        level = survivors;
        #[cfg(feature = "obs")]
        {
            governor.record_obs_snapshot(k as u64);
            hdx_obs::hist_record!(
                MineLevelLatencyNs,
                hdx_obs::now_ns().saturating_sub(level_start_ns)
            );
        }
        // A completed level is a checkpoint boundary. Tripped runs exit via
        // `break 'levels` above; a trip racing in from the cancel token is
        // still excluded here so a boundary always describes a full level.
        if governor.is_tripped() {
            break;
        }
        if let Some(ck) = ckpt.as_deref_mut() {
            ck.at_boundary(progress_snapshot(
                "apriori", k as u64, n, &out, &level, governor,
            ));
        }
    }

    MiningResult::complete(out, n, transactions.global_accum()).governed_by(governor)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::AttrId;
    use hdx_items::Item;
    use hdx_stats::Outcome;

    fn catalog3() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "0")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "0")),
            c.intern(Item::cat_eq(AttrId(2), 0, "c", "0")),
        ];
        (c, ids)
    }

    #[test]
    fn three_way_itemset_found() {
        let (catalog, ids) = catalog3();
        let rows = vec![
            vec![ids[0], ids[1], ids[2]],
            vec![ids[0], ids[1], ids[2]],
            vec![ids[0], ids[1]],
            vec![ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let r = apriori(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.5,
                ..MiningConfig::default()
            },
        );
        // Frequent: a(3), b(3), c(3→ count 3? c appears rows 0,1,3 = 3), ab(3), ac(2), bc(2), abc(2).
        let triple = Itemset::from_sorted_unchecked(ids.clone());
        let fi = r.find(&triple).expect("abc frequent");
        assert_eq!(fi.accum.count(), 2);
        assert_eq!(r.itemsets.len(), 7);
    }

    #[test]
    fn prune_step_requires_all_subsets() {
        let (catalog, ids) = catalog3();
        // ab frequent, ac frequent, bc INfrequent → abc must not be counted.
        let rows = vec![
            vec![ids[0], ids[1]],
            vec![ids[0], ids[1]],
            vec![ids[0], ids[2]],
            vec![ids[0], ids[2]],
            vec![ids[1]],
            vec![ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(false); 6]);
        let r = apriori(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 2.0 / 6.0,
                ..MiningConfig::default()
            },
        );
        assert!(r
            .find(&Itemset::from_sorted_unchecked(ids.clone()))
            .is_none());
        assert!(r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]))
            .is_some());
    }

    #[test]
    fn accumulators_match_direct_computation() {
        let (catalog, ids) = catalog3();
        let rows = vec![
            vec![ids[0], ids[1]],
            vec![ids[0], ids[1]],
            vec![ids[0]],
            vec![ids[1]],
        ];
        let outcomes = vec![
            Outcome::Real(10.0),
            Outcome::Real(20.0),
            Outcome::Undefined,
            Outcome::Real(40.0),
        ];
        let t = Transactions::from_rows(rows, outcomes);
        let r = apriori(
            &t,
            &catalog,
            &MiningConfig {
                min_support: 0.25,
                ..MiningConfig::default()
            },
        );
        let ab = r
            .find(&Itemset::from_sorted_unchecked(vec![ids[0], ids[1]]))
            .unwrap();
        assert_eq!(ab.accum.count(), 2);
        assert_eq!(ab.accum.statistic(), Some(15.0));
        let a = r.find(&Itemset::singleton(ids[0])).unwrap();
        assert_eq!(a.accum.count(), 3);
        assert_eq!(a.accum.valid_count(), 2);
        assert_eq!(a.accum.statistic(), Some(15.0));
        assert_eq!(r.termination, hdx_governor::Termination::Complete);
    }

    #[test]
    fn candidate_byte_budget_truncates_to_subset() {
        use hdx_governor::{Governor, RunBudget, Termination};
        let (catalog, ids) = catalog3();
        let rows = vec![
            vec![ids[0], ids[1], ids[2]],
            vec![ids[0], ids[1], ids[2]],
            vec![ids[0], ids[1]],
            vec![ids[2]],
        ];
        let t = Transactions::from_rows(rows, vec![Outcome::Bool(true); 4]);
        let config = MiningConfig {
            min_support: 0.5,
            ..MiningConfig::default()
        };
        let full = apriori(&t, &catalog, &config);
        assert_eq!(full.itemsets.len(), 7);

        // Enough bytes for L1 (free) plus one frequent k=2 materialisation.
        let governor = Governor::new(RunBudget::unbounded().with_max_candidate_bytes(8));
        let partial = apriori_governed(&t, &catalog, &config, &governor);
        assert_eq!(partial.termination, Termination::BudgetExhausted);
        assert!(partial.itemsets.len() < full.itemsets.len());
        for fi in &partial.itemsets {
            let reference = full.find(&fi.itemset).expect("subset of unbounded run");
            assert_eq!(reference.accum.count(), fi.accum.count());
        }
    }
}
