//! Runtime validators for mining-lattice invariants.
//!
//! Three properties must hold for *any* [`MiningResult`], whichever miner
//! produced it:
//!
//! 1. **Itemset validity** — every mined itemset is canonical and holds at
//!    most one item per attribute ([`validate_itemsets`]);
//! 2. **Minimum support** — every mined itemset's count reaches the
//!    absolute threshold `⌈s·n⌉` ([`validate_min_support`]);
//! 3. **Support anti-monotonicity** — every `(k−1)`-subset of a mined
//!    `k`-itemset is itself mined, with a count at least as large
//!    ([`validate_anti_monotone`]). This is the property Apriori's prune
//!    step and FP-Growth's conditional trees rely on; a miner bug that
//!    breaks it silently yields wrong divergences downstream.
//!
//! The validators are always compiled and return typed violations. Under
//! the `debug-invariants` cargo feature, [`mine`](crate::mine) additionally
//! runs all three on every result it returns (an O(Σ k·|result|) pass with
//! a hash index — fine for debugging, too slow to leave on in release
//! serving builds, hence the feature gate).

use std::collections::HashMap;

use hdx_items::{invariants as item_invariants, ItemCatalog, Itemset};

use crate::result::MiningResult;

/// A violated mining invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningViolation {
    /// A mined itemset is malformed (see
    /// [`item_invariants::InvariantViolation`]).
    Itemset(item_invariants::InvariantViolation),
    /// A mined itemset's count is below the minimum-support threshold.
    BelowMinSupport {
        /// The offending itemset.
        itemset: Itemset,
        /// Its accumulated count.
        count: u64,
        /// The absolute threshold `⌈s·n⌉` it had to reach.
        min_count: u64,
    },
    /// A subset of a mined itemset is missing from the result, or has a
    /// smaller count than its superset.
    AntiMonotonicityBroken {
        /// The mined `k`-itemset.
        itemset: Itemset,
        /// Its count.
        count: u64,
        /// The `(k−1)`-subset that is missing or under-counted.
        subset: Itemset,
        /// The subset's count in the result (`None` when missing entirely).
        subset_count: Option<u64>,
    },
}

impl std::fmt::Display for MiningViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MiningViolation::Itemset(v) => write!(f, "mined {v}"),
            MiningViolation::BelowMinSupport {
                itemset,
                count,
                min_count,
            } => write!(
                f,
                "mined itemset {itemset:?} has count {count} < min_count {min_count}"
            ),
            MiningViolation::AntiMonotonicityBroken {
                itemset,
                count,
                subset,
                subset_count,
            } => match subset_count {
                Some(sc) => write!(
                    f,
                    "anti-monotonicity broken: {subset:?} has count {sc} < {count} of its \
                     superset {itemset:?}"
                ),
                None => write!(
                    f,
                    "anti-monotonicity broken: subset {subset:?} of mined {itemset:?} \
                     (count {count}) is missing from the result"
                ),
            },
        }
    }
}

impl std::error::Error for MiningViolation {}

impl From<item_invariants::InvariantViolation> for MiningViolation {
    fn from(v: item_invariants::InvariantViolation) -> Self {
        MiningViolation::Itemset(v)
    }
}

/// Validates rule 1: every mined itemset is canonical with at most one item
/// per attribute.
pub fn validate_itemsets(
    result: &MiningResult,
    catalog: &ItemCatalog,
) -> Result<(), MiningViolation> {
    for fi in &result.itemsets {
        item_invariants::validate_itemset(&fi.itemset, catalog)?;
    }
    Ok(())
}

/// Validates rule 2: every mined itemset's count reaches `min_count`.
pub fn validate_min_support(result: &MiningResult, min_count: u64) -> Result<(), MiningViolation> {
    for fi in &result.itemsets {
        if fi.accum.count() < min_count {
            return Err(MiningViolation::BelowMinSupport {
                itemset: fi.itemset.clone(),
                count: fi.accum.count(),
                min_count,
            });
        }
    }
    Ok(())
}

/// Validates rule 3: for every mined `k`-itemset (`k ≥ 2`), each of its
/// `(k−1)`-subsets is mined with a count at least as large.
pub fn validate_anti_monotone(result: &MiningResult) -> Result<(), MiningViolation> {
    let counts: HashMap<&Itemset, u64> = result
        .itemsets
        .iter()
        .map(|fi| (&fi.itemset, fi.accum.count()))
        .collect();
    for fi in &result.itemsets {
        if fi.itemset.len() < 2 {
            continue;
        }
        let count = fi.accum.count();
        for subset in fi.itemset.sub_itemsets() {
            match counts.get(&subset) {
                Some(&sc) if sc >= count => {}
                other => {
                    return Err(MiningViolation::AntiMonotonicityBroken {
                        itemset: fi.itemset.clone(),
                        count,
                        subset,
                        subset_count: other.copied(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Validates all three mining invariants (rules 1–3) at once.
pub fn validate_result(
    result: &MiningResult,
    catalog: &ItemCatalog,
    min_count: u64,
) -> Result<(), MiningViolation> {
    validate_itemsets(result, catalog)?;
    validate_min_support(result, min_count)?;
    validate_anti_monotone(result)
}

/// Panicking form of [`validate_result`], run by [`mine`](crate::mine) on
/// every result under the `debug-invariants` feature.
#[cfg(feature = "debug-invariants")]
pub(crate) fn assert_result(result: &MiningResult, catalog: &ItemCatalog, min_count: u64) {
    if let Err(v) = validate_result(result, catalog, min_count) {
        // An invariant violation is a miner bug, never a user error.
        panic!("hdx invariant violated: {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::FrequentItemset;
    use hdx_data::AttrId;
    use hdx_items::{Item, ItemId};
    use hdx_stats::{Outcome, StatAccum};

    fn catalog() -> (ItemCatalog, Vec<ItemId>) {
        let mut c = ItemCatalog::new();
        let ids = vec![
            c.intern(Item::cat_eq(AttrId(0), 0, "a", "x")),
            c.intern(Item::cat_eq(AttrId(0), 1, "a", "y")),
            c.intern(Item::cat_eq(AttrId(1), 0, "b", "z")),
        ];
        (c, ids)
    }

    fn fi(items: Vec<ItemId>, n: usize) -> FrequentItemset {
        FrequentItemset {
            itemset: Itemset::from_sorted_unchecked(items),
            accum: StatAccum::from_outcomes(&vec![Outcome::Bool(true); n]),
        }
    }

    fn result(itemsets: Vec<FrequentItemset>) -> MiningResult {
        MiningResult::complete(
            itemsets,
            10,
            StatAccum::from_outcomes(&[Outcome::Bool(false); 10]),
        )
    }

    #[test]
    fn valid_result_passes_all_rules() {
        let (c, ids) = catalog();
        let r = result(vec![
            fi(vec![ids[0]], 5),
            fi(vec![ids[2]], 4),
            fi(vec![ids[0], ids[2]], 3),
        ]);
        assert!(validate_result(&r, &c, 3).is_ok());
    }

    #[test]
    fn same_attribute_pair_rejected() {
        let (c, ids) = catalog();
        let r = result(vec![fi(vec![ids[0], ids[1]], 5)]);
        assert!(matches!(
            validate_itemsets(&r, &c),
            Err(MiningViolation::Itemset(_))
        ));
    }

    #[test]
    fn under_supported_itemset_rejected() {
        let (_, ids) = catalog();
        let r = result(vec![fi(vec![ids[0]], 2)]);
        assert!(matches!(
            validate_min_support(&r, 3),
            Err(MiningViolation::BelowMinSupport { .. })
        ));
    }

    #[test]
    fn missing_subset_rejected() {
        let (_, ids) = catalog();
        // {a, b} mined without {b}.
        let r = result(vec![fi(vec![ids[0]], 5), fi(vec![ids[0], ids[2]], 3)]);
        let err = validate_anti_monotone(&r).unwrap_err();
        assert!(matches!(
            err,
            MiningViolation::AntiMonotonicityBroken {
                subset_count: None,
                ..
            }
        ));
    }

    #[test]
    fn under_counted_subset_rejected() {
        let (_, ids) = catalog();
        // {b} has count 2 < 3 of its superset {a, b}.
        let r = result(vec![
            fi(vec![ids[0]], 5),
            fi(vec![ids[2]], 2),
            fi(vec![ids[0], ids[2]], 3),
        ]);
        let err = validate_anti_monotone(&r).unwrap_err();
        assert!(matches!(
            err,
            MiningViolation::AntiMonotonicityBroken {
                subset_count: Some(2),
                ..
            }
        ));
    }
}
