//! Work-stealing scheduler for the parallel vertical miner.
//!
//! The depth-first subtrees rooted at each frequent single item are
//! independent but wildly *skewed*: early items have the largest extension
//! sets, so the static striding the parallel miner used previously could
//! leave most workers idle while one ground through a giant subtree
//! sequence. This module replaces the stride with:
//!
//! * a shared **injector cursor** — an atomic index over the root array from
//!   which workers claim small contiguous batches ([`CLAIM_BATCH`]) with one
//!   `fetch_add`, keeping the common case a single uncontended atomic op;
//! * one **[`WorkDeque`]** per worker — a Chase–Lev-style deque the owner
//!   pushes its claimed batch into and pops from LIFO, while idle workers
//!   *steal* FIFO from the other end. A worker that drains its own deque and
//!   finds the injector exhausted sweeps the other deques before exiting, so
//!   a batch of heavy roots claimed by one worker is redistributed instead
//!   of serialising the tail of the run.
//!
//! The deque is dependency-free safe Rust over `AtomicUsize`: the buffer is
//! pre-sized to the total number of items that can ever be pushed (subtree
//! roots, bounded by the frequent-item count), so indices never wrap and the
//! ABA/overwrite hazards of the ring-buffer formulation do not arise. All
//! operations are sequentially consistent; the push/pop/steal races are
//! exhaustively model-checked in `tests/loom_models.rs` via the crate's
//! `sync` facade (swapped for `hdx-loom` twins under `--cfg hdx_loom`).
//!
//! **Termination.** A worker exits once its own deque is empty, the
//! injector is exhausted, and a full steal sweep found nothing. Items still
//! sitting in *another* worker's deque are drained by that owner (each owner
//! empties its own deque before exiting), so an early exit can only cost
//! parallelism, never work. The one benign race — a claimed-but-not-yet
//! -pushed batch making the world look empty — is narrowed by a yield-and
//! -resweep pass (counted as `hdx.mining.sched.parks`) and, like every other
//! miss, degrades to the owner finishing the batch alone.

use crate::sync::atomic::{AtomicUsize, Ordering::SeqCst};

/// Number of subtree roots a worker claims from the injector cursor per
/// `fetch_add`. Small enough that the tail of a skewed run still spreads
/// across workers, large enough that claiming is not a cursor hot spot.
pub const CLAIM_BATCH: usize = 8;

/// Result of a [`WorkDeque::steal`] attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal {
    /// The deque had no stealable item.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Stole this item.
    Stolen(usize),
}

/// A Chase–Lev-style work-stealing deque of `usize` items (subtree-root
/// indices), in safe Rust over sequentially consistent atomics.
///
/// One thread — the *owner* — calls [`push`](Self::push) and
/// [`pop`](Self::pop) (LIFO end); any thread may call
/// [`steal`](Self::steal) (FIFO end). The buffer never wraps: `capacity`
/// must be at least the total number of items ever pushed over the deque's
/// lifetime, which the miner guarantees by sizing every deque to the root
/// count. Each slot is therefore written at most once before becoming
/// visible, which is what makes the all-atomic formulation race-free
/// without `unsafe` — a thief that reads `top < bottom` is guaranteed (by
/// the SC ordering of the slot store before the `bottom` store) to read the
/// slot's final value.
#[derive(Debug)]
pub struct WorkDeque {
    /// Item slots; `top..bottom` is the live window.
    buf: Box<[AtomicUsize]>,
    /// Steal end: thieves advance this with CAS.
    top: AtomicUsize,
    /// Owner end: the owner alone stores this.
    bottom: AtomicUsize,
}

impl WorkDeque {
    /// A deque that can hold `capacity` *lifetime* pushes.
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: (0..capacity).map(|_| AtomicUsize::new(0)).collect(),
            top: AtomicUsize::new(0),
            bottom: AtomicUsize::new(0),
        }
    }

    /// Pushes `item` on the owner end. **Owner thread only.**
    ///
    /// # Panics
    /// Panics if the lifetime push count exceeds the constructed capacity.
    pub fn push(&self, item: usize) {
        let b = self.bottom.load(SeqCst);
        assert!(b < self.buf.len(), "WorkDeque capacity exceeded");
        // BOUND: `b < buf.len()` asserted directly above.
        self.buf[b].store(item, SeqCst);
        self.bottom.store(b + 1, SeqCst);
    }

    /// Pops the most recently pushed item. **Owner thread only.**
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(SeqCst);
        if b == 0 {
            // Nothing was ever pushed (bottom only rewinds to `top`, which
            // never exceeds the push count).
            return None;
        }
        let b1 = b - 1;
        // Reserve the slot *before* reading top: a thief that loads
        // `bottom` afterwards keeps its hands off `b1`.
        self.bottom.store(b1, SeqCst);
        let t = self.top.load(SeqCst);
        if b1 > t {
            // More than one item was left: the reservation is uncontended.
            // BOUND: `b1 < b ≤ capacity`, checked by push's assert.
            return Some(self.buf[b1].load(SeqCst));
        }
        if b1 == t {
            // Last item: race the thieves for it by advancing `top`.
            let won = self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok();
            self.bottom.store(t + 1, SeqCst);
            // BOUND: `b1 < b ≤ capacity`, checked by push's assert.
            return won.then(|| self.buf[b1].load(SeqCst));
        }
        // The deque was already empty; undo the reservation.
        self.bottom.store(t, SeqCst);
        None
    }

    /// Attempts to steal the oldest item. Any thread.
    pub fn steal(&self) -> Steal {
        let t = self.top.load(SeqCst);
        let b = self.bottom.load(SeqCst);
        if t >= b {
            return Steal::Empty;
        }
        // Slots are written at most once (no wrap), and the SC order
        // slot-store → bottom-store → our bottom-load guarantees this read
        // sees the final value.
        // BOUND: `t < b ≤ capacity`, checked by push's assert.
        let item = self.buf[t].load(SeqCst);
        if self.top.compare_exchange(t, t + 1, SeqCst, SeqCst).is_ok() {
            Steal::Stolen(item)
        } else {
            Steal::Retry
        }
    }

    /// Whether the live window is currently empty (advisory: the answer can
    /// be stale by the time the caller acts on it).
    pub fn is_empty(&self) -> bool {
        self.top.load(SeqCst) >= self.bottom.load(SeqCst)
    }
}

/// The shared scheduling state of one parallel mining run: the injector
/// cursor over `0..n_roots` plus one deque per worker.
#[derive(Debug)]
pub(crate) struct RootScheduler {
    deques: Vec<WorkDeque>,
    cursor: AtomicUsize,
    n_roots: usize,
}

impl RootScheduler {
    /// A scheduler distributing `n_roots` subtree roots over `n_workers`
    /// deques. Every deque is sized to `n_roots`: a worker can never push
    /// more items than exist.
    pub(crate) fn new(n_workers: usize, n_roots: usize) -> Self {
        Self {
            deques: (0..n_workers).map(|_| WorkDeque::new(n_roots)).collect(),
            cursor: AtomicUsize::new(0),
            n_roots,
        }
    }

    /// The next subtree root `worker` should explore, or `None` when the
    /// run is drained: own deque first (LIFO), then a fresh injector batch
    /// (rest pushed locally, becoming stealable), then a steal sweep over
    /// the other workers' deques — with one yield-and-resweep pass before
    /// giving up, so a concurrently claimed batch is usually caught.
    pub(crate) fn next_root(&self, worker: usize) -> Option<usize> {
        debug_assert!(worker < self.deques.len(), "worker index out of range");
        let own = self.deques.get(worker)?;
        if let Some(idx) = own.pop() {
            return Some(idx);
        }
        let start = self.cursor.fetch_add(CLAIM_BATCH, SeqCst);
        if start < self.n_roots {
            let end = (start + CLAIM_BATCH).min(self.n_roots);
            // Push in reverse so the owner pops the batch in ascending
            // root order while thieves take from the far (high) end.
            for idx in (start + 1..end).rev() {
                // ALLOC: `WorkDeque::push` stores into the deque's
                // pre-sized atomic buffer — it never allocates.
                own.push(idx);
            }
            return Some(start);
        }
        for sweep in 0..2 {
            for k in 1..self.deques.len() {
                let victim = (worker + k) % self.deques.len();
                // BOUND: `victim < deques.len()` by the modulus.
                let victim = &self.deques[victim];
                loop {
                    match victim.steal() {
                        Steal::Stolen(idx) => {
                            hdx_obs::counter_add!(MineSchedSteals, 1);
                            return Some(idx);
                        }
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
            }
            if sweep == 0 {
                // One park before concluding the run is drained: lets a
                // mid-claim peer publish its batch.
                hdx_obs::counter_add!(MineSchedParks, 1);
                std::thread::yield_now();
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn push_pop_is_lifo() {
        let d = WorkDeque::new(8);
        for i in 0..5 {
            d.push(i);
        }
        for i in (0..5).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
        assert!(d.is_empty());
    }

    #[test]
    fn steal_is_fifo_and_disjoint_from_pop() {
        let d = WorkDeque::new(8);
        for i in 0..4 {
            d.push(i);
        }
        assert_eq!(d.steal(), Steal::Stolen(0));
        assert_eq!(d.steal(), Steal::Stolen(1));
        assert_eq!(d.pop(), Some(3));
        assert_eq!(d.pop(), Some(2));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn capacity_overflow_panics() {
        let d = WorkDeque::new(1);
        d.push(0);
        d.push(1);
    }

    #[test]
    fn empty_deque_pops_and_steals_nothing() {
        let d = WorkDeque::new(4);
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
        d.push(7);
        assert_eq!(d.pop(), Some(7));
        assert_eq!(d.pop(), None);
        assert_eq!(d.steal(), Steal::Empty);
    }

    #[test]
    fn scheduler_hands_out_every_root_exactly_once_serially() {
        for (workers, roots) in [(1, 0), (1, 7), (3, 20), (4, 8), (2, 100)] {
            let s = RootScheduler::new(workers, roots);
            let mut seen = BTreeSet::new();
            // Round-robin the workers to interleave claims.
            let mut live: Vec<usize> = (0..workers).collect();
            while !live.is_empty() {
                live.retain(|&w| match s.next_root(w) {
                    Some(idx) => {
                        assert!(seen.insert(idx), "root {idx} handed out twice");
                        true
                    }
                    None => false,
                });
            }
            assert_eq!(seen.len(), roots, "workers={workers} roots={roots}");
            assert!(seen.iter().all(|&r| r < roots));
        }
    }

    #[test]
    fn scheduler_hands_out_every_root_exactly_once_concurrently() {
        let workers = 4;
        let roots = 503;
        let s = RootScheduler::new(workers, roots);
        let mut all: Vec<usize> = Vec::new();
        std::thread::scope(|scope| {
            let s = &s;
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(idx) = s.next_root(w) {
                            mine.push(idx);
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                all.extend(h.join().expect("scheduler worker panicked"));
            }
        });
        all.sort_unstable();
        let expect: Vec<usize> = (0..roots).collect();
        assert_eq!(all, expect, "each root exactly once across workers");
    }
}
