//! Minimal CSV reader/writer with type inference.
//!
//! Supports the subset of RFC 4180 the experiment harness needs: a header
//! row, comma (or custom) separators, double-quote quoting with `""` escapes,
//! and empty cells as nulls. Columns where every non-empty cell parses as a
//! number are inferred continuous; everything else is categorical.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use hdx_governor::fail_point;

use crate::builder::DataFrameBuilder;
use crate::error::DataError;
use crate::frame::DataFrame;
use crate::quality::DataQualityReport;
use crate::value::Value;

/// Options controlling CSV parsing.
#[derive(Debug, Clone)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Attribute names to force categorical even when numeric-looking
    /// (e.g. zip codes).
    pub force_categorical: Vec<String>,
    /// Drop malformed rows (ragged, bad quoting) into the quality report
    /// instead of failing the whole load (default `false`: reject the file).
    pub quarantine_malformed_rows: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            separator: ',',
            force_categorical: Vec::new(),
            quarantine_malformed_rows: false,
        }
    }
}

/// Splits one CSV record honouring quotes. Returns the fields.
fn split_record(line: &str, sep: char) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else if c == '"' {
            if !cur.is_empty() {
                return Err("quote in the middle of an unquoted field".to_string());
            }
            in_quotes = true;
        } else if c == sep {
            fields.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".to_string());
    }
    fields.push(cur);
    Ok(fields)
}

fn quote_field(field: &str, sep: char) -> String {
    if field.contains(sep) || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses CSV text into a [`DataFrame`] with type inference.
///
/// Convenience wrapper over [`read_csv_str_with_quality`] that discards the
/// quality report.
///
/// # Errors
/// Returns [`DataError::Csv`] on malformed input (ragged rows, bad quoting,
/// missing header).
pub fn read_csv_str(text: &str, options: &CsvOptions) -> Result<DataFrame, DataError> {
    read_csv_str_with_quality(text, options).map(|(df, _)| df)
}

/// Parses CSV text into a [`DataFrame`] plus the [`DataQualityReport`] of
/// what ingestion quarantined.
///
/// Hardening semantics:
/// * numeric cells that parse to `NaN`/`±inf` are stored as null and counted
///   per column — a single `inf` would otherwise make every downstream mean
///   infinite;
/// * with [`CsvOptions::quarantine_malformed_rows`] set, ragged or badly
///   quoted rows are dropped and counted instead of failing the load.
///
/// # Errors
/// Returns [`DataError::Csv`] on malformed input the options do not allow
/// quarantining (and always on a missing/unparseable header).
pub fn read_csv_str_with_quality(
    text: &str,
    options: &CsvOptions,
) -> Result<(DataFrame, DataQualityReport), DataError> {
    fail_point!("data::csv-read", |message: String| DataError::Csv {
        line: 0,
        message,
    });
    let mut quality = DataQualityReport::default();
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (_, header) = lines.next().ok_or(DataError::Csv {
        line: 1,
        message: "missing header row".to_string(),
    })?;
    let names = split_record(header, options.separator)
        .map_err(|message| DataError::Csv { line: 1, message })?;
    let n_cols = names.len();

    let mut records: Vec<Vec<String>> = Vec::new();
    for (idx, line) in lines {
        let parsed = split_record(line, options.separator).and_then(|fields| {
            if fields.len() == n_cols {
                Ok(fields)
            } else {
                Err(format!("expected {n_cols} fields, found {}", fields.len()))
            }
        });
        match parsed {
            Ok(fields) => records.push(fields),
            Err(message) => {
                if options.quarantine_malformed_rows {
                    quality.count_row(idx + 1);
                } else {
                    return Err(DataError::Csv {
                        line: idx + 1,
                        message,
                    });
                }
            }
        }
    }

    // Infer kinds: continuous iff all non-empty cells parse as f64. Note
    // `NaN`/`inf` *do* parse, so a dirty numeric column stays numeric and
    // its bad cells are quarantined below rather than silently flipping the
    // whole column categorical.
    let mut builder = DataFrameBuilder::new();
    let mut numeric = vec![true; n_cols];
    for record in &records {
        for (j, field) in record.iter().enumerate() {
            let f = field.trim();
            if !f.is_empty() && f.parse::<f64>().is_err() {
                numeric[j] = false;
            }
        }
    }
    for (j, name) in names.iter().enumerate() {
        let forced = options.force_categorical.iter().any(|n| n == name);
        if numeric[j] && !forced {
            builder.add_continuous(name.clone())?;
        } else {
            builder.add_categorical(name.clone())?;
        }
    }
    for (i, record) in records.into_iter().enumerate() {
        let row: Vec<Value> = record
            .into_iter()
            .enumerate()
            .map(|(j, field)| {
                let f = field.trim();
                if f.is_empty() {
                    Value::Null
                } else if numeric[j] && !options.force_categorical.iter().any(|n| *n == names[j]) {
                    match f.parse::<f64>() {
                        Ok(v) if v.is_finite() => Value::Num(v),
                        Ok(_) => {
                            quality.count_cell(&names[j], false);
                            Value::Null
                        }
                        Err(_) => {
                            quality.count_cell(&names[j], true);
                            Value::Null
                        }
                    }
                } else {
                    Value::Cat(f.to_string())
                }
            })
            .collect();
        builder.push_row(row).map_err(|e| DataError::Csv {
            line: i + 2,
            message: e.to_string(),
        })?;
    }
    hdx_obs::counter_add!(DataCellsQuarantined, quality.cells_quarantined());
    hdx_obs::counter_add!(DataRowsQuarantined, quality.rows_quarantined);
    Ok((builder.finish(), quality))
}

/// Reads a CSV file into a [`DataFrame`].
///
/// # Errors
/// I/O failures and parse errors.
pub fn read_csv(path: impl AsRef<Path>, options: &CsvOptions) -> Result<DataFrame, DataError> {
    read_csv_with_quality(path, options).map(|(df, _)| df)
}

/// Reads a CSV file into a [`DataFrame`] plus its [`DataQualityReport`]
/// (see [`read_csv_str_with_quality`]).
///
/// # Errors
/// I/O failures and parse errors.
pub fn read_csv_with_quality(
    path: impl AsRef<Path>,
    options: &CsvOptions,
) -> Result<(DataFrame, DataQualityReport), DataError> {
    let mut text = String::new();
    BufReader::new(File::open(path)?).read_to_string(&mut text)?;
    read_csv_str_with_quality(&text, options)
}

/// Serialises a [`DataFrame`] to CSV text.
pub fn write_csv_string(df: &DataFrame, separator: char) -> String {
    let mut out = String::new();
    let header: Vec<String> = df
        .schema()
        .iter()
        .map(|(_, a)| quote_field(a.name(), separator))
        .collect();
    out.push_str(&header.join(&separator.to_string()));
    out.push('\n');
    for row in 0..df.n_rows() {
        let fields: Vec<String> = df
            .schema()
            .iter()
            .map(|(id, _)| {
                let v = df.column(id).value(row);
                quote_field(&v.to_string(), separator)
            })
            .collect();
        out.push_str(&fields.join(&separator.to_string()));
        out.push('\n');
    }
    out
}

/// Writes a [`DataFrame`] as CSV to `path`.
///
/// # Errors
/// I/O failures.
pub fn write_csv(df: &DataFrame, path: impl AsRef<Path>) -> Result<(), DataError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(write_csv_string(df, ',').as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttributeKind;

    #[test]
    fn infers_kinds() {
        let df = read_csv_str(
            "age,sex,score\n31,M,0.5\n47,F,0.9\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let s = df.schema();
        assert_eq!(s.kind(s.id("age").unwrap()), AttributeKind::Continuous);
        assert_eq!(s.kind(s.id("sex").unwrap()), AttributeKind::Categorical);
        assert_eq!(s.kind(s.id("score").unwrap()), AttributeKind::Continuous);
        assert_eq!(df.n_rows(), 2);
    }

    #[test]
    fn empty_cells_become_null() {
        let df = read_csv_str("a,b\n1,\n,x\n", &CsvOptions::default()).unwrap();
        let a = df.schema().id("a").unwrap();
        let b = df.schema().id("b").unwrap();
        assert_eq!(df.continuous(a).get(1), None);
        assert_eq!(df.categorical(b).get(0), None);
    }

    #[test]
    fn force_categorical_overrides_inference() {
        let opts = CsvOptions {
            force_categorical: vec!["zip".to_string()],
            ..CsvOptions::default()
        };
        let df = read_csv_str("zip,x\n90210,1\n10001,2\n", &opts).unwrap();
        let zip = df.schema().id("zip").unwrap();
        assert_eq!(df.schema().kind(zip), AttributeKind::Categorical);
        assert_eq!(df.categorical(zip).get(0), Some("90210"));
    }

    #[test]
    fn quoted_fields_roundtrip() {
        let df = read_csv_str(
            "name,v\n\"a,b\",1\n\"say \"\"hi\"\"\",2\n",
            &CsvOptions::default(),
        )
        .unwrap();
        let name = df.schema().id("name").unwrap();
        assert_eq!(df.categorical(name).get(0), Some("a,b"));
        assert_eq!(df.categorical(name).get(1), Some("say \"hi\""));

        let text = write_csv_string(&df, ',');
        let df2 = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(df2.categorical(name).get(0), Some("a,b"));
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = read_csv_str("a,b\n1\n", &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, DataError::Csv { line: 2, .. }));
    }

    #[test]
    fn non_finite_cells_are_quarantined_to_null() {
        // NaN and ±inf parse as f64, so `x` stays continuous — but the dirty
        // cells must become nulls, not poison every downstream mean.
        let dirty = "x,g\n1.0,a\nNaN,b\ninf,a\n-inf,b\n2.0,a\n";
        let (df, quality) = read_csv_str_with_quality(dirty, &CsvOptions::default()).unwrap();
        let x = df.schema().id("x").unwrap();
        assert_eq!(df.schema().kind(x), AttributeKind::Continuous);
        assert_eq!(df.n_rows(), 5);
        assert_eq!(df.continuous(x).get(0), Some(1.0));
        assert_eq!(df.continuous(x).get(1), None);
        assert_eq!(df.continuous(x).get(2), None);
        assert_eq!(df.continuous(x).get(3), None);
        assert_eq!(df.continuous(x).get(4), Some(2.0));
        assert!(df.continuous(x).values().iter().all(|v| !v.is_infinite()));
        assert_eq!(quality.cells_quarantined(), 3);
        assert_eq!(quality.columns.len(), 1);
        assert_eq!(quality.columns[0].name, "x");
        assert_eq!(quality.columns[0].non_finite, 3);
        assert_eq!(quality.rows_quarantined, 0);
        assert!(quality.summary().unwrap().contains("3×x"));
    }

    #[test]
    fn clean_input_yields_a_clean_report() {
        let (_, quality) =
            read_csv_str_with_quality("a,b\n1,x\n2,y\n", &CsvOptions::default()).unwrap();
        assert!(quality.is_clean());
    }

    #[test]
    fn malformed_rows_quarantined_when_opted_in() {
        let opts = CsvOptions {
            quarantine_malformed_rows: true,
            ..CsvOptions::default()
        };
        // Line 3 is ragged, line 5 has a stray quote; both drop.
        let dirty = "a,b\n1,x\n2\n3,y\nbad\"quote,z\n4,w\n";
        let (df, quality) = read_csv_str_with_quality(dirty, &opts).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(quality.rows_quarantined, 2);
        assert_eq!(quality.quarantined_lines, vec![3, 5]);
        // The same file still fails hard under the default policy.
        assert!(read_csv_str(dirty, &CsvOptions::default()).is_err());
    }

    #[test]
    fn quarantined_rows_do_not_skew_inference() {
        let opts = CsvOptions {
            quarantine_malformed_rows: true,
            ..CsvOptions::default()
        };
        // The ragged row's lone field `oops` must not flip `a` categorical.
        let (df, quality) = read_csv_str_with_quality("a,b\n1,x\noops\n2,y\n", &opts).unwrap();
        let a = df.schema().id("a").unwrap();
        assert_eq!(df.schema().kind(a), AttributeKind::Continuous);
        assert_eq!(quality.rows_quarantined, 1);
    }

    #[test]
    fn bad_quote_rejected() {
        assert!(read_csv_str("a\nx\"y\n", &CsvOptions::default()).is_err());
        assert!(read_csv_str("a\n\"unterminated\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn missing_header_rejected() {
        assert!(read_csv_str("", &CsvOptions::default()).is_err());
        assert!(read_csv_str("\n\n", &CsvOptions::default()).is_err());
    }

    #[test]
    fn roundtrip_preserves_values() {
        let src = "age,sex\n31,M\n47,F\n,\n";
        let df = read_csv_str(src, &CsvOptions::default()).unwrap();
        let text = write_csv_string(&df, ',');
        let df2 = read_csv_str(&text, &CsvOptions::default()).unwrap();
        assert_eq!(df, df2);
    }

    #[test]
    fn custom_separator() {
        let opts = CsvOptions {
            separator: ';',
            ..CsvOptions::default()
        };
        let df = read_csv_str("a;b\n1;x\n", &opts).unwrap();
        assert_eq!(df.n_rows(), 1);
        assert_eq!(df.n_attributes(), 2);
    }
}
