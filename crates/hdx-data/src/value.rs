//! Dynamically-typed cell values, used at frame boundaries (builders, CSV).

use std::fmt;

/// A single cell value.
///
/// Inside the frame, categorical data is dictionary-encoded and continuous
/// data is `f64`; `Value` is only used at the edges (row-wise construction,
/// CSV parsing, pretty printing).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// Categorical level (uncoded).
    Cat(String),
    /// Continuous value.
    Num(f64),
}

impl Value {
    /// Whether this value is [`Value::Null`].
    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The categorical payload, if any.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Cat(_) => "categorical",
            Value::Num(_) => "continuous",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Cat(s) => write!(f, "{s}"),
            Value::Num(x) => write!(f, "{x}"),
        }
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Self {
        Value::Num(x)
    }
}

impl From<i64> for Value {
    fn from(x: i64) -> Self {
        Value::Num(x as f64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Cat(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Cat(s)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3.5), Value::Num(3.5));
        assert_eq!(Value::from(2i64), Value::Num(2.0));
        assert_eq!(Value::from("a"), Value::Cat("a".into()));
        assert_eq!(Value::from(None::<f64>), Value::Null);
        assert_eq!(Value::from(Some(1.0)), Value::Num(1.0));
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::Cat("x".into()).as_cat(), Some("x"));
        assert_eq!(Value::Num(2.0).as_cat(), None);
        assert_eq!(Value::Cat("x".into()).as_num(), None);
    }

    #[test]
    fn display_roundtrip_friendly() {
        assert_eq!(Value::Num(1.5).to_string(), "1.5");
        assert_eq!(Value::Cat("F".into()).to_string(), "F");
        assert_eq!(Value::Null.to_string(), "");
    }
}
