//! Data-quality accounting for hardened ingestion.
//!
//! Real CSVs carry `NaN`/`inf` cells and ragged rows. Instead of poisoning
//! downstream statistics (a single `+inf` cell makes every mean infinite) or
//! aborting the whole load, the reader *quarantines* the offending cells and
//! rows — they become nulls / are dropped — and records what it did in a
//! [`DataQualityReport`] so the caller can decide whether the damage is
//! acceptable. The same counts flow into run telemetry via the
//! `hdx.data.quarantine.*` counters (under the `obs` feature).

/// Quarantine counts for one column of a loaded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnQuality {
    /// Column name.
    pub name: String,
    /// Cells whose numeric value was `NaN` or `±inf`, stored as null.
    pub non_finite: u64,
    /// Cells the inference pass called numeric but that failed to parse on
    /// the value pass (writer-bug symptom; stored as null).
    pub malformed: u64,
}

impl ColumnQuality {
    /// Total quarantined cells in this column.
    pub fn total(&self) -> u64 {
        self.non_finite + self.malformed
    }
}

/// What ingestion quarantined, per column and per row.
///
/// An empty report (`is_clean()`) means the frame holds exactly what the
/// file said. A non-empty one means the frame is a cleaned subset: dirty
/// numeric cells became nulls and (when the caller opted in via
/// `CsvOptions::quarantine_malformed_rows`) unparseable rows were dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DataQualityReport {
    /// Columns that had at least one quarantined cell.
    pub columns: Vec<ColumnQuality>,
    /// Malformed rows dropped (ragged or bad quoting); always zero unless
    /// row quarantine was opted into.
    pub rows_quarantined: u64,
    /// 1-based file lines of the first dropped rows (capped at
    /// [`MAX_RECORDED_LINES`]).
    pub quarantined_lines: Vec<usize>,
}

/// Cap on remembered per-row line numbers, so a pathological file cannot
/// balloon the report.
pub const MAX_RECORDED_LINES: usize = 32;

impl DataQualityReport {
    /// True when nothing was quarantined.
    pub fn is_clean(&self) -> bool {
        self.columns.is_empty() && self.rows_quarantined == 0
    }

    /// Total quarantined cells across all columns.
    pub fn cells_quarantined(&self) -> u64 {
        self.columns.iter().map(ColumnQuality::total).sum()
    }

    /// Records a quarantined cell in `column`.
    pub(crate) fn count_cell(&mut self, column: &str, malformed: bool) {
        let idx = match self.columns.iter().position(|c| c.name == column) {
            Some(idx) => idx,
            None => {
                self.columns.push(ColumnQuality {
                    name: column.to_string(),
                    non_finite: 0,
                    malformed: 0,
                });
                self.columns.len() - 1
            }
        };
        let entry = &mut self.columns[idx];
        if malformed {
            entry.malformed += 1;
        } else {
            entry.non_finite += 1;
        }
    }

    /// Records a dropped row at 1-based file `line`.
    pub(crate) fn count_row(&mut self, line: usize) {
        self.rows_quarantined += 1;
        if self.quarantined_lines.len() < MAX_RECORDED_LINES {
            self.quarantined_lines.push(line);
        }
    }

    /// One-line human-readable summary, or `None` when clean.
    pub fn summary(&self) -> Option<String> {
        if self.is_clean() {
            return None;
        }
        let mut parts = Vec::new();
        if self.cells_quarantined() > 0 {
            let cols: Vec<String> = self
                .columns
                .iter()
                .map(|c| format!("{}×{}", c.total(), c.name))
                .collect();
            parts.push(format!(
                "{} non-finite/malformed cell(s) nulled ({})",
                self.cells_quarantined(),
                cols.join(", ")
            ));
        }
        if self.rows_quarantined > 0 {
            parts.push(format!(
                "{} malformed row(s) dropped (first at line(s) {:?})",
                self.rows_quarantined, self.quarantined_lines
            ));
        }
        Some(parts.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_has_no_summary() {
        let r = DataQualityReport::default();
        assert!(r.is_clean());
        assert_eq!(r.cells_quarantined(), 0);
        assert_eq!(r.summary(), None);
    }

    #[test]
    fn cell_counts_aggregate_per_column() {
        let mut r = DataQualityReport::default();
        r.count_cell("x", false);
        r.count_cell("x", false);
        r.count_cell("x", true);
        r.count_cell("y", false);
        assert!(!r.is_clean());
        assert_eq!(r.cells_quarantined(), 4);
        assert_eq!(r.columns.len(), 2);
        assert_eq!(r.columns[0].name, "x");
        assert_eq!(r.columns[0].non_finite, 2);
        assert_eq!(r.columns[0].malformed, 1);
        let s = r.summary().unwrap();
        assert!(s.contains("3×x") && s.contains("1×y"), "{s}");
    }

    #[test]
    fn row_lines_are_capped() {
        let mut r = DataQualityReport::default();
        for line in 0..100 {
            r.count_row(line);
        }
        assert_eq!(r.rows_quarantined, 100);
        assert_eq!(r.quarantined_lines.len(), MAX_RECORDED_LINES);
        assert!(r.summary().unwrap().contains("100 malformed row(s)"));
    }
}
