//! Error type for dataset construction and I/O.

use std::fmt;

/// Errors produced while building, accessing or (de)serialising datasets.
#[derive(Debug)]
pub enum DataError {
    /// An attribute name was used twice in a schema.
    DuplicateAttribute(String),
    /// An attribute name or id does not exist in the schema.
    UnknownAttribute(String),
    /// A value of the wrong kind was supplied for an attribute.
    KindMismatch {
        /// Attribute whose kind was violated.
        attribute: String,
        /// What the column stores.
        expected: &'static str,
        /// What the caller supplied.
        found: &'static str,
    },
    /// Columns of differing lengths were combined into one frame.
    LengthMismatch {
        /// Length expected from the first column.
        expected: usize,
        /// Offending length.
        found: usize,
        /// Offending attribute.
        attribute: String,
    },
    /// A row index was out of bounds.
    RowOutOfBounds {
        /// Requested row.
        row: usize,
        /// Number of rows in the frame.
        len: usize,
    },
    /// CSV input could not be parsed.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::DuplicateAttribute(name) => {
                write!(f, "duplicate attribute name `{name}`")
            }
            DataError::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            DataError::KindMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "attribute `{attribute}` stores {expected} values but a {found} value was supplied"
            ),
            DataError::LengthMismatch {
                expected,
                found,
                attribute,
            } => write!(
                f,
                "column `{attribute}` has {found} rows, expected {expected}"
            ),
            DataError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds for frame of {len} rows")
            }
            DataError::Csv { line, message } => {
                write!(f, "CSV parse error at line {line}: {message}")
            }
            DataError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DataError::DuplicateAttribute("age".into());
        assert!(e.to_string().contains("age"));
        let e = DataError::KindMismatch {
            attribute: "age".into(),
            expected: "continuous",
            found: "categorical",
        };
        assert!(e.to_string().contains("continuous"));
        let e = DataError::RowOutOfBounds { row: 9, len: 3 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = DataError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
