//! Attribute schema: names, kinds and stable attribute ids.

use std::collections::HashMap;
use std::fmt;

use crate::error::DataError;

/// Stable identifier of an attribute within one [`Schema`].
///
/// Ids are dense indices (`0..schema.len()`), so they can index parallel
/// per-attribute vectors throughout the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Whether an attribute is categorical (finite domain) or continuous (ℝ).
///
/// This mirrors §III-A of the paper: items on categorical attributes are
/// equality constraints, items on continuous attributes are intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeKind {
    /// Finite, dictionary-encoded domain.
    Categorical,
    /// Real-valued domain.
    Continuous,
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeKind::Categorical => write!(f, "categorical"),
            AttributeKind::Continuous => write!(f, "continuous"),
        }
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    name: String,
    kind: AttributeKind,
}

impl Attribute {
    /// Creates an attribute with the given name and kind.
    pub fn new(name: impl Into<String>, kind: AttributeKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// Convenience constructor for a categorical attribute.
    pub fn categorical(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Categorical)
    }

    /// Convenience constructor for a continuous attribute.
    pub fn continuous(name: impl Into<String>) -> Self {
        Self::new(name, AttributeKind::Continuous)
    }

    /// The attribute name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The attribute kind.
    #[inline]
    pub fn kind(&self) -> AttributeKind {
        self.kind
    }
}

/// An ordered collection of uniquely-named attributes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a schema from a list of attributes.
    ///
    /// # Errors
    /// Returns [`DataError::DuplicateAttribute`] when two attributes share a
    /// name.
    pub fn from_attributes(attrs: Vec<Attribute>) -> Result<Self, DataError> {
        let mut schema = Self::new();
        for a in attrs {
            schema.push(a)?;
        }
        Ok(schema)
    }

    /// Appends an attribute, returning its new id.
    ///
    /// # Errors
    /// Returns [`DataError::DuplicateAttribute`] when the name already exists.
    pub fn push(&mut self, attr: Attribute) -> Result<AttrId, DataError> {
        if self.by_name.contains_key(attr.name()) {
            return Err(DataError::DuplicateAttribute(attr.name().to_string()));
        }
        let id = AttrId(u16::try_from(self.attrs.len()).expect("more than u16::MAX attributes"));
        self.by_name.insert(attr.name().to_string(), id);
        self.attrs.push(attr);
        Ok(id)
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// Whether the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Looks up an attribute id by name.
    pub fn id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an attribute id by name, erroring when absent.
    pub fn require(&self, name: &str) -> Result<AttrId, DataError> {
        self.id(name)
            .ok_or_else(|| DataError::UnknownAttribute(name.to_string()))
    }

    /// The attribute with the given id.
    ///
    /// # Panics
    /// Panics if the id does not belong to this schema.
    #[inline]
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// The name of an attribute.
    #[inline]
    pub fn name(&self, id: AttrId) -> &str {
        self.attribute(id).name()
    }

    /// The kind of an attribute.
    #[inline]
    pub fn kind(&self, id: AttrId) -> AttributeKind {
        self.attribute(id).kind()
    }

    /// Iterates over `(id, attribute)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u16), a))
    }

    /// Ids of all attributes of the given kind.
    pub fn ids_of_kind(&self, kind: AttributeKind) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, a)| a.kind() == kind)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of the continuous attributes (the set `C` of the paper).
    pub fn continuous_ids(&self) -> Vec<AttrId> {
        self.ids_of_kind(AttributeKind::Continuous)
    }

    /// Ids of the categorical attributes.
    pub fn categorical_ids(&self) -> Vec<AttrId> {
        self.ids_of_kind(AttributeKind::Categorical)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> Schema {
        Schema::from_attributes(vec![
            Attribute::continuous("age"),
            Attribute::categorical("sex"),
            Attribute::continuous("priors"),
        ])
        .unwrap()
    }

    #[test]
    fn push_assigns_dense_ids() {
        let s = demo();
        assert_eq!(s.len(), 3);
        assert_eq!(s.id("age"), Some(AttrId(0)));
        assert_eq!(s.id("sex"), Some(AttrId(1)));
        assert_eq!(s.id("priors"), Some(AttrId(2)));
        assert_eq!(s.id("missing"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Schema::from_attributes(vec![
            Attribute::continuous("age"),
            Attribute::categorical("age"),
        ])
        .unwrap_err();
        assert!(matches!(err, DataError::DuplicateAttribute(n) if n == "age"));
    }

    #[test]
    fn kind_partition() {
        let s = demo();
        assert_eq!(s.continuous_ids(), vec![AttrId(0), AttrId(2)]);
        assert_eq!(s.categorical_ids(), vec![AttrId(1)]);
        assert_eq!(s.kind(AttrId(1)), AttributeKind::Categorical);
    }

    #[test]
    fn require_reports_unknown() {
        let s = demo();
        assert!(s.require("age").is_ok());
        assert!(matches!(
            s.require("zip"),
            Err(DataError::UnknownAttribute(n)) if n == "zip"
        ));
    }

    #[test]
    fn iter_preserves_order() {
        let s = demo();
        let names: Vec<_> = s.iter().map(|(_, a)| a.name().to_string()).collect();
        assert_eq!(names, ["age", "sex", "priors"]);
    }
}
