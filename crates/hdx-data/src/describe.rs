//! Per-attribute dataset summaries (the `hdx describe` backend).

use std::fmt;

use crate::column::Column;
use crate::frame::DataFrame;
use crate::schema::AttributeKind;

/// Summary of one attribute.
#[derive(Debug, Clone)]
pub struct AttributeSummary {
    /// Attribute name.
    pub name: String,
    /// Attribute kind.
    pub kind: AttributeKind,
    /// Number of null cells.
    pub nulls: usize,
    /// Continuous: (min, max, mean, std). `None` when all-null.
    pub numeric: Option<NumericSummary>,
    /// Categorical: distinct level count and the most frequent levels
    /// (level, count), descending.
    pub categorical: Option<CategoricalSummary>,
}

/// Numeric five-number-ish summary.
#[derive(Debug, Clone, Copy)]
pub struct NumericSummary {
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std: f64,
}

/// Categorical level profile.
#[derive(Debug, Clone)]
pub struct CategoricalSummary {
    /// Number of distinct levels.
    pub n_levels: usize,
    /// `(level, count)` for the most frequent levels, descending (≤ 5).
    pub top: Vec<(String, usize)>,
}

/// Summary of a whole frame.
#[derive(Debug, Clone)]
pub struct FrameSummary {
    /// Row count.
    pub n_rows: usize,
    /// Per-attribute summaries, in schema order.
    pub attributes: Vec<AttributeSummary>,
}

/// Computes a [`FrameSummary`].
pub fn describe(df: &DataFrame) -> FrameSummary {
    let attributes = df
        .schema()
        .iter()
        .map(|(id, attr)| {
            let column = df.column(id);
            let nulls = column.null_count();
            let (numeric, categorical) = match column {
                Column::Continuous(c) => {
                    let mut acc = crate::describe::Welford::default();
                    for v in c.values().iter().filter(|v| !v.is_nan()) {
                        acc.push(*v);
                    }
                    let numeric = c.min_max().map(|(min, max)| NumericSummary {
                        min,
                        max,
                        mean: acc.mean(),
                        std: acc.std(),
                    });
                    (numeric, None)
                }
                Column::Categorical(c) => {
                    let mut counts = vec![0usize; c.n_levels()];
                    for &code in c.codes() {
                        if code != crate::column::NULL_CODE {
                            counts[code as usize] += 1;
                        }
                    }
                    let mut top: Vec<(String, usize)> = counts
                        .iter()
                        .enumerate()
                        .map(|(code, &n)| (c.level(code as u32).to_string(), n))
                        .collect();
                    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                    top.truncate(5);
                    (
                        None,
                        Some(CategoricalSummary {
                            n_levels: c.n_levels(),
                            top,
                        }),
                    )
                }
            };
            AttributeSummary {
                name: attr.name().to_string(),
                kind: attr.kind(),
                nulls,
                numeric,
                categorical,
            }
        })
        .collect();
    FrameSummary {
        n_rows: df.n_rows(),
        attributes,
    }
}

/// Tiny local Welford accumulator (keeps `hdx-data` free of a dependency on
/// `hdx-stats`, which depends the other way).
#[derive(Debug, Default)]
struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn std(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

impl fmt::Display for FrameSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} rows, {} attributes",
            self.n_rows,
            self.attributes.len()
        )?;
        for a in &self.attributes {
            write!(f, "  {:20} {:11}", a.name, a.kind.to_string())?;
            if a.nulls > 0 {
                write!(f, " nulls={}", a.nulls)?;
            }
            if let Some(n) = &a.numeric {
                write!(
                    f,
                    " min={:.3} max={:.3} mean={:.3} std={:.3}",
                    n.min, n.max, n.mean, n.std
                )?;
            }
            if let Some(c) = &a.categorical {
                let tops: Vec<String> = c.top.iter().map(|(l, n)| format!("{l}×{n}")).collect();
                write!(f, " levels={} top: {}", c.n_levels, tops.join(", "))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataFrameBuilder;
    use crate::value::Value;

    fn frame() -> DataFrame {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_categorical("g").unwrap();
        for (x, g) in [
            (Some(1.0), Some("a")),
            (Some(3.0), Some("b")),
            (None, Some("a")),
            (Some(5.0), None),
        ] {
            b.push_row(vec![
                x.map_or(Value::Null, Value::Num),
                g.map_or(Value::Null, |s| Value::Cat(s.into())),
            ])
            .unwrap();
        }
        b.finish()
    }

    #[test]
    fn numeric_summary_correct() {
        let s = describe(&frame());
        assert_eq!(s.n_rows, 4);
        let x = &s.attributes[0];
        assert_eq!(x.nulls, 1);
        let n = x.numeric.unwrap();
        assert_eq!(n.min, 1.0);
        assert_eq!(n.max, 5.0);
        assert!((n.mean - 3.0).abs() < 1e-12);
        assert!((n.std - 2.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_summary_correct() {
        let s = describe(&frame());
        let g = &s.attributes[1];
        assert_eq!(g.nulls, 1);
        let c = g.categorical.as_ref().unwrap();
        assert_eq!(c.n_levels, 2);
        assert_eq!(c.top[0], ("a".to_string(), 2));
        assert_eq!(c.top[1], ("b".to_string(), 1));
    }

    #[test]
    fn display_contains_key_facts() {
        let text = describe(&frame()).to_string();
        assert!(text.contains("4 rows"));
        assert!(text.contains("nulls=1"));
        assert!(text.contains("levels=2"));
        assert!(text.contains("mean=3.000"));
    }

    #[test]
    fn all_null_numeric_column() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.push_row(vec![Value::Null]).unwrap();
        let s = describe(&b.finish());
        assert!(s.attributes[0].numeric.is_none());
        assert_eq!(s.attributes[0].nulls, 1);
    }
}
