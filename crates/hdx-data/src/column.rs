//! Typed columns: dictionary-encoded categorical and `f64` continuous.

use std::collections::HashMap;

use crate::value::Value;

/// Sentinel code marking a null cell in a categorical column.
pub const NULL_CODE: u32 = u32::MAX;

/// Dictionary-encoded categorical column.
///
/// Each distinct level is assigned a dense code `0..n_levels`; cells store
/// codes, nulls store [`NULL_CODE`]. Level order is first-appearance order,
/// which keeps synthetic-data generation deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CategoricalColumn {
    codes: Vec<u32>,
    levels: Vec<String>,
    level_ids: HashMap<String, u32>,
}

impl CategoricalColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty column with pre-registered levels.
    pub fn with_levels<S: Into<String>>(levels: impl IntoIterator<Item = S>) -> Self {
        let mut col = Self::new();
        for l in levels {
            col.intern(&l.into());
        }
        col
    }

    /// Builds a column from string data.
    pub fn from_values<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut col = Self::new();
        for v in values {
            col.push(v.as_ref());
        }
        col
    }

    /// Registers a level (if new) and returns its code.
    pub fn intern(&mut self, level: &str) -> u32 {
        if let Some(&id) = self.level_ids.get(level) {
            return id;
        }
        let id = u32::try_from(self.levels.len()).expect("too many categorical levels");
        assert_ne!(id, NULL_CODE, "categorical level count overflow");
        self.levels.push(level.to_string());
        self.level_ids.insert(level.to_string(), id);
        id
    }

    /// Appends a value.
    pub fn push(&mut self, level: &str) {
        let code = self.intern(level);
        self.codes.push(code);
    }

    /// Appends a null cell.
    pub fn push_null(&mut self) {
        self.codes.push(NULL_CODE);
    }

    /// Appends an already-encoded cell.
    ///
    /// # Panics
    /// Panics if `code` is neither a registered level nor [`NULL_CODE`].
    pub fn push_code(&mut self, code: u32) {
        assert!(
            code == NULL_CODE || (code as usize) < self.levels.len(),
            "code {code} not registered"
        );
        self.codes.push(code);
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The raw code of row `row` ([`NULL_CODE`] for nulls).
    #[inline]
    pub fn code(&self, row: usize) -> u32 {
        self.codes[row]
    }

    /// All codes as a slice.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// The level string of row `row`, or `None` for nulls.
    pub fn get(&self, row: usize) -> Option<&str> {
        let code = self.codes[row];
        (code != NULL_CODE).then(|| self.levels[code as usize].as_str())
    }

    /// The level string for a code.
    ///
    /// # Panics
    /// Panics when `code` is not a registered level.
    #[inline]
    pub fn level(&self, code: u32) -> &str {
        &self.levels[code as usize]
    }

    /// The code of a level, if registered.
    pub fn code_of(&self, level: &str) -> Option<u32> {
        self.level_ids.get(level).copied()
    }

    /// All registered levels, in code order.
    #[inline]
    pub fn levels(&self) -> &[String] {
        &self.levels
    }

    /// Number of distinct registered levels.
    #[inline]
    pub fn n_levels(&self) -> usize {
        self.levels.len()
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        self.codes.iter().filter(|&&c| c == NULL_CODE).count()
    }
}

/// Continuous (`f64`) column; nulls are stored as `NaN`.
#[derive(Debug, Clone, Default)]
pub struct ContinuousColumn {
    values: Vec<f64>,
}

impl PartialEq for ContinuousColumn {
    /// Cell-wise equality where two null (`NaN`) cells compare equal, so
    /// frames round-trip through serialisation.
    fn eq(&self, other: &Self) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| a == b || (a.is_nan() && b.is_nan()))
    }
}

impl ContinuousColumn {
    /// Creates an empty column.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a column from values (`NaN` = null).
    pub fn from_values(values: impl Into<Vec<f64>>) -> Self {
        Self {
            values: values.into(),
        }
    }

    /// Appends a value.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Appends a null cell.
    #[inline]
    pub fn push_null(&mut self) {
        self.values.push(f64::NAN);
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at `row`, or `None` for nulls.
    #[inline]
    pub fn get(&self, row: usize) -> Option<f64> {
        let v = self.values[row];
        (!v.is_nan()).then_some(v)
    }

    /// Raw values (nulls encoded as `NaN`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// Minimum and maximum over non-null cells, or `None` when all-null/empty.
    pub fn min_max(&self) -> Option<(f64, f64)> {
        let mut it = self.values.iter().copied().filter(|v| !v.is_nan());
        let first = it.next()?;
        let (mut lo, mut hi) = (first, first);
        for v in it {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

/// A typed column.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Dictionary-encoded categorical data.
    Categorical(CategoricalColumn),
    /// Continuous data.
    Continuous(ContinuousColumn),
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        match self {
            Column::Categorical(c) => c.len(),
            Column::Continuous(c) => c.len(),
        }
    }

    /// Whether the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cell at `row` as a dynamic [`Value`].
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Categorical(c) => c
                .get(row)
                .map_or(Value::Null, |s| Value::Cat(s.to_string())),
            Column::Continuous(c) => c.get(row).map_or(Value::Null, Value::Num),
        }
    }

    /// The categorical payload, if this column is categorical.
    pub fn as_categorical(&self) -> Option<&CategoricalColumn> {
        match self {
            Column::Categorical(c) => Some(c),
            Column::Continuous(_) => None,
        }
    }

    /// The continuous payload, if this column is continuous.
    pub fn as_continuous(&self) -> Option<&ContinuousColumn> {
        match self {
            Column::Continuous(c) => Some(c),
            Column::Categorical(_) => None,
        }
    }

    /// Number of null cells.
    pub fn null_count(&self) -> usize {
        match self {
            Column::Categorical(c) => c.null_count(),
            Column::Continuous(c) => c.null_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categorical_roundtrip() {
        let mut c = CategoricalColumn::new();
        c.push("M");
        c.push("F");
        c.push("M");
        c.push_null();
        assert_eq!(c.len(), 4);
        assert_eq!(c.n_levels(), 2);
        assert_eq!(c.get(0), Some("M"));
        assert_eq!(c.get(1), Some("F"));
        assert_eq!(c.get(2), Some("M"));
        assert_eq!(c.get(3), None);
        assert_eq!(c.code(0), c.code(2));
        assert_eq!(c.code_of("F"), Some(c.code(1)));
        assert_eq!(c.code_of("X"), None);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn categorical_levels_first_appearance_order() {
        let c = CategoricalColumn::from_values(["b", "a", "b", "c"]);
        assert_eq!(c.levels(), &["b".to_string(), "a".into(), "c".into()]);
        assert_eq!(c.level(0), "b");
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn push_code_validates() {
        let mut c = CategoricalColumn::new();
        c.push_code(5);
    }

    #[test]
    fn continuous_nulls_and_minmax() {
        let mut c = ContinuousColumn::new();
        c.push(2.0);
        c.push_null();
        c.push(-1.0);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(0), Some(2.0));
        assert_eq!(c.get(1), None);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.min_max(), Some((-1.0, 2.0)));
    }

    #[test]
    fn continuous_all_null_minmax() {
        let c = ContinuousColumn::from_values(vec![f64::NAN, f64::NAN]);
        assert_eq!(c.min_max(), None);
        assert_eq!(ContinuousColumn::new().min_max(), None);
    }

    #[test]
    fn column_dynamic_access() {
        let cat = Column::Categorical(CategoricalColumn::from_values(["x"]));
        let num = Column::Continuous(ContinuousColumn::from_values(vec![1.0]));
        assert_eq!(cat.value(0), Value::Cat("x".into()));
        assert_eq!(num.value(0), Value::Num(1.0));
        assert!(cat.as_categorical().is_some());
        assert!(cat.as_continuous().is_none());
        assert!(num.as_continuous().is_some());
    }
}
