//! Row- and column-wise construction of [`DataFrame`]s.

use crate::column::{CategoricalColumn, Column, ContinuousColumn};
use crate::error::DataError;
use crate::frame::DataFrame;
use crate::schema::{AttrId, Attribute, AttributeKind, Schema};
use crate::value::Value;

/// Incremental builder for a [`DataFrame`].
///
/// Attributes are declared first, then rows (or whole columns) are appended.
///
/// ```
/// use hdx_data::{DataFrameBuilder, Value};
///
/// let mut b = DataFrameBuilder::new();
/// b.add_continuous("age").unwrap();
/// b.add_categorical("sex").unwrap();
/// b.push_row(vec![Value::Num(31.0), Value::Cat("F".into())]).unwrap();
/// b.push_row(vec![Value::Num(47.0), Value::Cat("M".into())]).unwrap();
/// let df = b.finish();
/// assert_eq!(df.n_rows(), 2);
/// ```
#[derive(Debug, Default)]
pub struct DataFrameBuilder {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrameBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a continuous attribute. Must be called before any rows.
    ///
    /// # Errors
    /// Fails on duplicate names.
    pub fn add_continuous(&mut self, name: impl Into<String>) -> Result<AttrId, DataError> {
        self.add_attribute(Attribute::continuous(name.into()))
    }

    /// Declares a categorical attribute. Must be called before any rows.
    ///
    /// # Errors
    /// Fails on duplicate names.
    pub fn add_categorical(&mut self, name: impl Into<String>) -> Result<AttrId, DataError> {
        self.add_attribute(Attribute::categorical(name.into()))
    }

    /// Declares an attribute.
    ///
    /// # Errors
    /// Fails on duplicate names.
    ///
    /// # Panics
    /// Panics if rows were already appended.
    pub fn add_attribute(&mut self, attr: Attribute) -> Result<AttrId, DataError> {
        assert_eq!(
            self.n_rows, 0,
            "attributes must be declared before any row is pushed"
        );
        let kind = attr.kind();
        let id = self.schema.push(attr)?;
        self.columns.push(match kind {
            AttributeKind::Categorical => Column::Categorical(CategoricalColumn::new()),
            AttributeKind::Continuous => Column::Continuous(ContinuousColumn::new()),
        });
        Ok(id)
    }

    /// Appends one row of values, in schema order.
    ///
    /// # Errors
    /// * [`DataError::LengthMismatch`] when `row.len()` differs from the
    ///   number of attributes;
    /// * [`DataError::KindMismatch`] for type errors.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DataError> {
        if row.len() != self.schema.len() {
            return Err(DataError::LengthMismatch {
                expected: self.schema.len(),
                found: row.len(),
                attribute: "<row>".to_string(),
            });
        }
        // Validate the whole row first so a failed push leaves the builder
        // consistent.
        for (i, v) in row.iter().enumerate() {
            let id = AttrId(i as u16);
            let kind = self.schema.kind(id);
            let ok = matches!(
                (kind, v),
                (_, Value::Null)
                    | (AttributeKind::Categorical, Value::Cat(_))
                    | (AttributeKind::Continuous, Value::Num(_))
            );
            if !ok {
                return Err(DataError::KindMismatch {
                    attribute: self.schema.name(id).to_string(),
                    expected: match kind {
                        AttributeKind::Categorical => "categorical",
                        AttributeKind::Continuous => "continuous",
                    },
                    found: v.kind_name(),
                });
            }
        }
        for (i, v) in row.into_iter().enumerate() {
            match (&mut self.columns[i], v) {
                (Column::Categorical(c), Value::Cat(s)) => c.push(&s),
                (Column::Categorical(c), Value::Null) => c.push_null(),
                (Column::Continuous(c), Value::Num(x)) => c.push(x),
                (Column::Continuous(c), Value::Null) => c.push_null(),
                _ => unreachable!("row validated above"),
            }
        }
        self.n_rows += 1;
        Ok(())
    }

    /// Number of rows appended so far.
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// The schema built so far.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Finalises the frame.
    pub fn finish(self) -> DataFrame {
        DataFrame::from_columns(self.schema, self.columns)
            .expect("builder maintains frame invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_mixed_frame() {
        let mut b = DataFrameBuilder::new();
        let age = b.add_continuous("age").unwrap();
        let sex = b.add_categorical("sex").unwrap();
        b.push_row(vec![Value::Num(20.0), Value::Cat("M".into())])
            .unwrap();
        b.push_row(vec![Value::Null, Value::Null]).unwrap();
        let df = b.finish();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(df.continuous(age).get(0), Some(20.0));
        assert_eq!(df.continuous(age).get(1), None);
        assert_eq!(df.categorical(sex).get(1), None);
    }

    #[test]
    fn row_arity_checked() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("a").unwrap();
        let err = b.push_row(vec![]).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn kind_checked_and_builder_stays_consistent() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("a").unwrap();
        b.add_categorical("b").unwrap();
        // Second cell is wrong; the first must not be partially applied.
        let err = b
            .push_row(vec![Value::Num(1.0), Value::Num(2.0)])
            .unwrap_err();
        assert!(matches!(err, DataError::KindMismatch { .. }));
        assert_eq!(b.n_rows(), 0);
        b.push_row(vec![Value::Num(1.0), Value::Cat("x".into())])
            .unwrap();
        let df = b.finish();
        assert_eq!(df.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "before any row")]
    fn late_attribute_rejected() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("a").unwrap();
        b.push_row(vec![Value::Num(1.0)]).unwrap();
        let _ = b.add_continuous("late");
    }
}
