//! # hdx-data
//!
//! Columnar dataset substrate for the H-DivExplorer reproduction.
//!
//! The crate provides a small, dependency-free data frame tailored to the
//! needs of anomalous subgroup discovery:
//!
//! * a [`Schema`] of named attributes, each either *categorical* or
//!   *continuous* (the two attribute kinds of the paper, §III-A);
//! * dictionary-encoded categorical columns ([`CategoricalColumn`]) and
//!   `f64` continuous columns ([`ContinuousColumn`]), both with null support;
//! * a row-major builder and a column-major [`DataFrame`];
//! * CSV read/write with simple type inference, so the experiment harness can
//!   persist and reload the synthetic datasets.
//!
//! The frame is deliberately minimal: subgroup discovery only ever scans
//! columns sequentially and slices rows by predicate, so we optimise for
//! cache-friendly columnar scans instead of general relational algebra.

mod builder;
mod column;
mod csv;
mod describe;
mod error;
mod frame;
mod quality;
mod schema;
mod value;

pub use builder::DataFrameBuilder;
pub use column::{CategoricalColumn, Column, ContinuousColumn, NULL_CODE};
pub use csv::{
    read_csv, read_csv_str, read_csv_str_with_quality, read_csv_with_quality, write_csv,
    write_csv_string, CsvOptions,
};
pub use describe::{describe, AttributeSummary, CategoricalSummary, FrameSummary, NumericSummary};
pub use error::DataError;
pub use frame::DataFrame;
pub use quality::{ColumnQuality, DataQualityReport, MAX_RECORDED_LINES};
pub use schema::{AttrId, Attribute, AttributeKind, Schema};
pub use value::Value;
