//! The [`DataFrame`]: a schema plus equal-length typed columns.

use crate::column::{CategoricalColumn, Column, ContinuousColumn};
use crate::error::DataError;
use crate::schema::{AttrId, AttributeKind, Schema};
use crate::value::Value;

/// An immutable columnar dataset (the `D` of the paper).
///
/// Construct one with [`DataFrameBuilder`](crate::DataFrameBuilder) or
/// [`DataFrame::from_columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// Assembles a frame from a schema and matching columns.
    ///
    /// # Errors
    /// * [`DataError::LengthMismatch`] if the columns differ in length;
    /// * [`DataError::KindMismatch`] if a column's type contradicts the
    ///   schema.
    pub fn from_columns(schema: Schema, columns: Vec<Column>) -> Result<Self, DataError> {
        assert_eq!(
            schema.len(),
            columns.len(),
            "schema and column count differ"
        );
        let n_rows = columns.first().map_or(0, Column::len);
        for (id, attr) in schema.iter() {
            let col = &columns[id.index()];
            if col.len() != n_rows {
                return Err(DataError::LengthMismatch {
                    expected: n_rows,
                    found: col.len(),
                    attribute: attr.name().to_string(),
                });
            }
            let ok = matches!(
                (attr.kind(), col),
                (AttributeKind::Categorical, Column::Categorical(_))
                    | (AttributeKind::Continuous, Column::Continuous(_))
            );
            if !ok {
                return Err(DataError::KindMismatch {
                    attribute: attr.name().to_string(),
                    expected: match attr.kind() {
                        AttributeKind::Categorical => "categorical",
                        AttributeKind::Continuous => "continuous",
                    },
                    found: match col {
                        Column::Categorical(_) => "categorical",
                        Column::Continuous(_) => "continuous",
                    },
                });
            }
        }
        Ok(Self {
            schema,
            columns,
            n_rows,
        })
    }

    /// The schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows (`#D`).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attributes(&self) -> usize {
        self.schema.len()
    }

    /// The column of an attribute.
    #[inline]
    pub fn column(&self, id: AttrId) -> &Column {
        &self.columns[id.index()]
    }

    /// The column of an attribute, by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column, DataError> {
        Ok(self.column(self.schema.require(name)?))
    }

    /// The categorical column of `id`.
    ///
    /// # Panics
    /// Panics if the attribute is continuous (schema kinds are validated at
    /// construction, so this indicates a caller bug).
    pub fn categorical(&self, id: AttrId) -> &CategoricalColumn {
        self.column(id)
            .as_categorical()
            .unwrap_or_else(|| panic!("attribute {} is not categorical", self.schema.name(id)))
    }

    /// The continuous column of `id`.
    ///
    /// # Panics
    /// Panics if the attribute is categorical.
    pub fn continuous(&self, id: AttrId) -> &ContinuousColumn {
        self.column(id)
            .as_continuous()
            .unwrap_or_else(|| panic!("attribute {} is not continuous", self.schema.name(id)))
    }

    /// Cell value at (`row`, `id`).
    ///
    /// # Errors
    /// Returns [`DataError::RowOutOfBounds`] for an invalid row.
    pub fn value(&self, row: usize, id: AttrId) -> Result<Value, DataError> {
        if row >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                row,
                len: self.n_rows,
            });
        }
        Ok(self.column(id).value(row))
    }

    /// Returns a new frame containing only the rows for which `keep` is true.
    ///
    /// # Panics
    /// Panics if `keep.len() != self.n_rows()`.
    pub fn filter(&self, keep: &[bool]) -> DataFrame {
        assert_eq!(keep.len(), self.n_rows, "mask length mismatch");
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Categorical(c) => {
                    let mut out = CategoricalColumn::with_levels(c.levels().iter().cloned());
                    for (row, &k) in keep.iter().enumerate() {
                        if k {
                            out.push_code(c.code(row));
                        }
                    }
                    Column::Categorical(out)
                }
                Column::Continuous(c) => {
                    let values: Vec<f64> = keep
                        .iter()
                        .enumerate()
                        .filter(|&(_, &k)| k)
                        .map(|(row, _)| c.values()[row])
                        .collect();
                    Column::Continuous(ContinuousColumn::from_values(values))
                }
            })
            .collect();
        DataFrame::from_columns(self.schema.clone(), columns)
            .expect("filter preserves schema invariants")
    }

    /// Returns a new frame without the named attributes (used e.g. to strip
    /// label/prediction columns before mining).
    ///
    /// # Errors
    /// Returns [`DataError::UnknownAttribute`] for an unknown name.
    pub fn drop_columns(&self, names: &[&str]) -> Result<DataFrame, DataError> {
        let mut drop_ids = Vec::with_capacity(names.len());
        for name in names {
            drop_ids.push(self.schema.require(name)?);
        }
        let mut schema = Schema::new();
        let mut columns = Vec::new();
        for (id, attr) in self.schema.iter() {
            if drop_ids.contains(&id) {
                continue;
            }
            schema.push(attr.clone()).expect("names unique in source");
            columns.push(self.columns[id.index()].clone());
        }
        DataFrame::from_columns(schema, columns)
    }

    /// Returns a new frame with the rows at `indices`, in order (rows may
    /// repeat, enabling bootstrap sampling).
    ///
    /// # Panics
    /// Panics if an index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> DataFrame {
        let columns = self
            .columns
            .iter()
            .map(|col| match col {
                Column::Categorical(c) => {
                    let mut out = CategoricalColumn::with_levels(c.levels().iter().cloned());
                    for &row in indices {
                        out.push_code(c.code(row));
                    }
                    Column::Categorical(out)
                }
                Column::Continuous(c) => Column::Continuous(ContinuousColumn::from_values(
                    indices
                        .iter()
                        .map(|&row| c.values()[row])
                        .collect::<Vec<_>>(),
                )),
            })
            .collect();
        DataFrame::from_columns(self.schema.clone(), columns)
            .expect("take preserves schema invariants")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Attribute;

    fn demo() -> DataFrame {
        let schema = Schema::from_attributes(vec![
            Attribute::continuous("age"),
            Attribute::categorical("sex"),
        ])
        .unwrap();
        let age = Column::Continuous(ContinuousColumn::from_values(vec![20.0, 35.0, 50.0]));
        let sex = Column::Categorical(CategoricalColumn::from_values(["M", "F", "M"]));
        DataFrame::from_columns(schema, vec![age, sex]).unwrap()
    }

    #[test]
    fn basic_shape_and_access() {
        let df = demo();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.n_attributes(), 2);
        let age = df.schema().id("age").unwrap();
        let sex = df.schema().id("sex").unwrap();
        assert_eq!(df.value(1, age).unwrap(), Value::Num(35.0));
        assert_eq!(df.value(2, sex).unwrap(), Value::Cat("M".into()));
        assert!(df.value(3, age).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let schema =
            Schema::from_attributes(vec![Attribute::continuous("a"), Attribute::continuous("b")])
                .unwrap();
        let a = Column::Continuous(ContinuousColumn::from_values(vec![1.0]));
        let b = Column::Continuous(ContinuousColumn::from_values(vec![1.0, 2.0]));
        let err = DataFrame::from_columns(schema, vec![a, b]).unwrap_err();
        assert!(matches!(err, DataError::LengthMismatch { .. }));
    }

    #[test]
    fn kind_mismatch_rejected() {
        let schema = Schema::from_attributes(vec![Attribute::categorical("a")]).unwrap();
        let a = Column::Continuous(ContinuousColumn::from_values(vec![1.0]));
        let err = DataFrame::from_columns(schema, vec![a]).unwrap_err();
        assert!(matches!(err, DataError::KindMismatch { .. }));
    }

    #[test]
    fn filter_keeps_matching_rows() {
        let df = demo();
        let out = df.filter(&[true, false, true]);
        assert_eq!(out.n_rows(), 2);
        let age = out.schema().id("age").unwrap();
        assert_eq!(out.continuous(age).values(), &[20.0, 50.0]);
        let sex = out.schema().id("sex").unwrap();
        assert_eq!(out.categorical(sex).get(0), Some("M"));
        assert_eq!(out.categorical(sex).get(1), Some("M"));
        // level dictionary is preserved even when a level vanishes
        assert_eq!(out.categorical(sex).n_levels(), 2);
    }

    #[test]
    fn drop_columns_removes_and_reindexes() {
        let df = demo();
        let out = df.drop_columns(&["age"]).unwrap();
        assert_eq!(out.n_attributes(), 1);
        assert_eq!(out.schema().id("age"), None);
        let sex = out.schema().id("sex").unwrap();
        assert_eq!(sex, AttrId(0), "remaining attributes re-indexed densely");
        assert_eq!(out.categorical(sex).get(0), Some("M"));
        assert_eq!(out.n_rows(), 3);
        assert!(matches!(
            df.drop_columns(&["nope"]),
            Err(DataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn take_supports_repeats() {
        let df = demo();
        let out = df.take(&[2, 2, 0]);
        let age = out.schema().id("age").unwrap();
        assert_eq!(out.continuous(age).values(), &[50.0, 50.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "not categorical")]
    fn typed_access_panics_on_wrong_kind() {
        let df = demo();
        let age = df.schema().id("age").unwrap();
        let _ = df.categorical(age);
    }
}
