//! The ingest data-quality report: what recovery quarantined instead of
//! dying on.

/// What WAL recovery dropped, in the style of hdx-data's
/// `DataQualityReport`: corrupt bytes are counted and explained, never
/// silently discarded and never fatal. Surfaced by `GET /jobs/<id>` and the
/// `hdx append` CLI so operators see dropped frames without reading logs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IngestReport {
    /// Complete frames dropped from a torn or corrupt open-segment tail.
    pub quarantined_frames: u64,
    /// Bytes moved aside by quarantine (torn tails + corrupt segments).
    pub quarantined_bytes: u64,
    /// Whole sealed segments that failed envelope validation and were
    /// moved aside. Each one is also a [`IngestReport::notes`] line.
    pub quarantined_segments: u64,
    /// One human-readable line per quarantine decision.
    pub notes: Vec<String>,
}

impl IngestReport {
    /// `true` when recovery found nothing to quarantine.
    pub fn is_clean(&self) -> bool {
        self.quarantined_frames == 0
            && self.quarantined_bytes == 0
            && self.quarantined_segments == 0
            && self.notes.is_empty()
    }

    /// Records a quarantine decision.
    pub fn note(&mut self, line: impl Into<String>) {
        self.notes.push(line.into());
    }

    /// Folds another report into this one (recovery merges the per-segment
    /// findings into one job-level report).
    pub fn merge(&mut self, other: &IngestReport) {
        self.quarantined_frames += other.quarantined_frames;
        self.quarantined_bytes += other.quarantined_bytes;
        self.quarantined_segments += other.quarantined_segments;
        self.notes.extend(other.notes.iter().cloned());
    }

    /// A one-line operator summary, or `None` when the report is clean.
    pub fn summary(&self) -> Option<String> {
        if self.is_clean() {
            return None;
        }
        Some(format!(
            "ingest quarantine: {} frame(s), {} byte(s), {} sealed segment(s) dropped",
            self.quarantined_frames, self.quarantined_bytes, self.quarantined_segments
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_has_no_summary() {
        let r = IngestReport::default();
        assert!(r.is_clean());
        assert_eq!(r.summary(), None);
    }

    #[test]
    fn merge_accumulates_and_summary_renders() {
        let mut a = IngestReport {
            quarantined_frames: 1,
            quarantined_bytes: 10,
            quarantined_segments: 0,
            notes: vec!["torn tail".into()],
        };
        let b = IngestReport {
            quarantined_frames: 2,
            quarantined_bytes: 90,
            quarantined_segments: 1,
            notes: vec!["bad segment".into()],
        };
        a.merge(&b);
        assert!(!a.is_clean());
        assert_eq!(a.quarantined_frames, 3);
        assert_eq!(a.quarantined_bytes, 100);
        assert_eq!(a.quarantined_segments, 1);
        assert_eq!(a.notes.len(), 2);
        let s = a.summary().expect("dirty report summarises");
        assert!(s.contains("3 frame(s)"), "{s}");
        assert!(s.contains("100 byte(s)"), "{s}");
    }
}
