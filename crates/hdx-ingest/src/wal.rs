//! The CRC-framed segmented write-ahead log.
//!
//! On-disk layout inside a WAL directory:
//!
//! ```text
//! wal-open.log      the open segment: raw CRC-framed rows, append-only
//! seg-0000000000.hdx  sealed segments: hdx-ckpt/v1 envelopes whose
//! seg-0000000001.hdx  payload is the open segment's frame stream
//! ```
//!
//! Each row is one frame: `[len: u32 LE][crc32(payload): u32 LE][payload]`.
//! [`Wal::append_row`] writes the frame; [`Wal::commit`] fsyncs the open
//! segment — only then may the caller acknowledge the rows. When the open
//! segment outgrows [`WalConfig::segment_max_bytes`] it is *sealed*: its
//! bytes become the payload of a checkpoint envelope written with the
//! temp-file → fsync → rename discipline, and the open segment restarts
//! empty. Sealed segments are immutable and verified wholesale by their
//! envelope CRC; the open segment is verified frame by frame.
//!
//! Recovery ([`Wal::open`]) is degrade-not-die: a sealed segment failing
//! envelope validation, or a torn/corrupt open-segment tail, is moved
//! aside (`.quarantine` / `.corrupt` suffix), counted into the returned
//! [`IngestReport`], and the scan continues with everything that remains
//! valid. Rows are never silently dropped — every quarantined byte is
//! reported — and recovery never fails on corrupt data.

use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use hdx_checkpoint::envelope;
use hdx_governor::fail_point;

use crate::error::IngestError;
use crate::report::IngestReport;

/// File name of the open (unsealed) segment inside a WAL directory.
pub const OPEN_FILE: &str = "wal-open.log";
/// File-name prefix of a sealed segment.
const SEG_PREFIX: &str = "seg-";
/// File-name extension of a sealed segment.
const SEG_EXT: &str = "hdx";
/// Scratch name used while sealing a segment.
const SEG_TMP: &str = "seg.tmp";
/// Bytes of frame header (`len` + `crc`).
const FRAME_HEADER: usize = 8;
/// Upper bound on a single frame's payload; a declared length above this
/// is treated as corruption, bounding what a torn length field can ask
/// recovery to buffer.
const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

/// Tunables for a [`Wal`].
#[derive(Debug, Clone, Copy)]
pub struct WalConfig {
    /// Seal the open segment once it holds at least this many payload
    /// bytes (checked at [`Wal::commit`]).
    pub segment_max_bytes: u64,
}

impl Default for WalConfig {
    fn default() -> Self {
        Self {
            segment_max_bytes: 1 << 20,
        }
    }
}

/// One sealed, immutable segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedSegment {
    /// Monotonic segment sequence number (its file name).
    pub seq: u64,
    /// Rows (frames) the segment holds.
    pub rows: u64,
    /// Payload bytes (the frame stream, excluding the envelope header).
    pub bytes: u64,
}

/// A durable, segmented row log. See the module docs for the format and
/// the recovery rules.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    config: WalConfig,
    sealed: Vec<SealedSegment>,
    open_rows: u64,
    open_bytes: u64,
    handle: Option<File>,
    /// Set when an injected short write left garbage after `open_bytes`;
    /// further appends would interleave with the torn tail, so they are
    /// refused until the WAL is reopened (which quarantines the tail).
    torn: bool,
}

impl Wal {
    /// Opens (creating if needed) the WAL at `dir`, running the recovery
    /// scan: sealed segments are validated wholesale by their envelope,
    /// the open segment frame by frame; anything invalid is quarantined
    /// into the returned [`IngestReport`] rather than failing the open.
    ///
    /// # Errors
    /// [`IngestError::Io`] only when the directory itself cannot be
    /// created, scanned, or the open segment cannot be opened for append —
    /// corrupt *data* never errors.
    pub fn open(dir: impl Into<PathBuf>, config: WalConfig) -> Result<(Self, IngestReport), IngestError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| IngestError::io(&dir, &e))?;
        let mut report = IngestReport::default();

        let mut seqs: Vec<u64> = Vec::new();
        let entries = fs::read_dir(&dir).map_err(|e| IngestError::io(&dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| IngestError::io(&dir, &e))?;
            if let Some(seq) = parse_seg_seq(&entry.file_name().to_string_lossy()) {
                seqs.push(seq);
            }
        }
        seqs.sort_unstable();

        let mut sealed = Vec::new();
        for seq in seqs {
            let path = seg_path(&dir, seq);
            let bytes = match fs::read(&path) {
                Ok(b) => b,
                Err(e) => return Err(IngestError::io(&path, &e)),
            };
            let quarantined = match envelope::open(&bytes) {
                Ok(payload) => match scan_frames(&payload) {
                    ScanOutcome { rows, valid_len, .. } if valid_len == payload.len() => {
                        sealed.push(SealedSegment {
                            seq,
                            rows,
                            bytes: payload.len() as u64,
                        });
                        None
                    }
                    _ => Some("frame stream malformed inside a valid envelope".to_string()),
                },
                Err(err) => Some(err.to_string()),
            };
            if let Some(why) = quarantined {
                quarantine_aside(&path);
                report.quarantined_segments += 1;
                report.quarantined_bytes += bytes.len() as u64;
                report.note(format!(
                    "quarantined sealed segment `{}` ({} bytes): {why}",
                    path.display(),
                    bytes.len()
                ));
            }
        }

        let open_path = dir.join(OPEN_FILE);
        let open_bytes_on_disk = match fs::read(&open_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(IngestError::io(&open_path, &e)),
        };
        let scan = scan_frames(&open_bytes_on_disk);
        if scan.valid_len < open_bytes_on_disk.len() {
            // Torn or corrupt tail: preserve the dropped bytes aside, then
            // truncate the open segment back to its last valid frame.
            let torn = open_bytes_on_disk.get(scan.valid_len..).unwrap_or_default();
            let aside = dir.join(format!("{OPEN_FILE}.quarantine"));
            let _ = fs::write(&aside, torn);
            let file = OpenOptions::new()
                .write(true)
                .open(&open_path)
                .map_err(|e| IngestError::io(&open_path, &e))?;
            file.set_len(scan.valid_len as u64)
                .map_err(|e| IngestError::io(&open_path, &e))?;
            let _ = file.sync_all();
            report.quarantined_frames += scan.dropped_frames.max(1);
            report.quarantined_bytes += torn.len() as u64;
            report.note(format!(
                "quarantined torn open-segment tail: {} byte(s) after row {} (saved to `{}`)",
                torn.len(),
                scan.rows,
                aside.display()
            ));
            hdx_obs::counter_add!(IngestFramesQuarantined, scan.dropped_frames.max(1));
            hdx_obs::counter_add!(IngestBytesQuarantined, torn.len() as u64);
        }
        let handle = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&open_path)
            .map_err(|e| IngestError::io(&open_path, &e))?;

        Ok((
            Self {
                dir,
                config,
                sealed,
                open_rows: scan.rows,
                open_bytes: scan.valid_len as u64,
                handle: Some(handle),
                torn: false,
            },
            report,
        ))
    }

    /// The WAL directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total rows currently on disk: sealed segments plus the open
    /// segment (including rows appended since the last [`Wal::commit`] —
    /// callers must not acknowledge those until `commit` returns).
    pub fn total_rows(&self) -> u64 {
        self.sealed.iter().map(|s| s.rows).sum::<u64>() + self.open_rows
    }

    /// Rows in the open (unsealed) segment.
    pub fn open_rows(&self) -> u64 {
        self.open_rows
    }

    /// The sealed segments, oldest first.
    pub fn sealed_segments(&self) -> &[SealedSegment] {
        &self.sealed
    }

    /// Appends one row's payload as a CRC frame to the open segment. The
    /// row is *not* durable until the next [`Wal::commit`].
    ///
    /// # Errors
    /// [`IngestError::Io`] when the write fails; the in-memory counters
    /// are unchanged on failure.
    pub fn append_row(&mut self, payload: &[u8]) -> Result<(), IngestError> {
        let open_path = self.dir.join(OPEN_FILE);
        fail_point!("ingest::wal::append", |message: String| IngestError::Io {
            path: self.dir.join(OPEN_FILE),
            message,
        });
        #[cfg(feature = "hdx-fail")]
        if let Some(fault) = hdx_governor::failpoint::io_hit("ingest::wal::append") {
            if matches!(fault, hdx_governor::failpoint::IoFault::ShortWrite) {
                // Enact the torn write: half the frame really lands on
                // disk, which is exactly what recovery must quarantine.
                let frame = encode_frame(payload);
                let half = frame.get(..frame.len() / 2).unwrap_or_default();
                if let Some(handle) = self.handle.as_mut() {
                    let _ = handle.write_all(half);
                    let _ = handle.sync_data();
                }
                self.torn = true;
            }
            return Err(IngestError::Io {
                path: open_path,
                message: fault.to_error().to_string(),
            });
        }
        if self.torn {
            return Err(IngestError::Io {
                path: open_path,
                message: "open segment has a torn tail; reopen the WAL to recover".to_string(),
            });
        }
        let Some(handle) = self.handle.as_mut() else {
            return Err(IngestError::Io {
                path: open_path,
                message: "open segment handle is closed".to_string(),
            });
        };
        let frame = encode_frame(payload);
        handle
            .write_all(&frame)
            .map_err(|e| IngestError::io(&open_path, &e))?;
        self.open_rows += 1;
        self.open_bytes += frame.len() as u64;
        hdx_obs::counter_add!(IngestRowsAppended, 1);
        Ok(())
    }

    /// Makes every appended row durable (`fsync` of the open segment), and
    /// seals the segment if it outgrew [`WalConfig::segment_max_bytes`].
    /// Returns the total durable row count. Only after `commit` returns may
    /// the rows of preceding [`Wal::append_row`] calls be acknowledged.
    ///
    /// # Errors
    /// [`IngestError::Io`] when the fsync or the seal fails. Appended rows
    /// may or may not have reached disk in that case — exactly the promise
    /// an unacknowledged write has.
    pub fn commit(&mut self) -> Result<u64, IngestError> {
        fail_point!("ingest::wal::fsync", |message: String| IngestError::Io {
            path: self.dir.join(OPEN_FILE),
            message,
        });
        #[cfg(feature = "hdx-fail")]
        if let Some(fault) = hdx_governor::failpoint::io_hit("ingest::wal::fsync") {
            return Err(IngestError::Io {
                path: self.dir.join(OPEN_FILE),
                message: fault.to_error().to_string(),
            });
        }
        if self.torn {
            return Err(IngestError::Io {
                path: self.dir.join(OPEN_FILE),
                message: "open segment has a torn tail; reopen the WAL to recover".to_string(),
            });
        }
        let open_path = self.dir.join(OPEN_FILE);
        let Some(handle) = self.handle.as_mut() else {
            return Err(IngestError::Io {
                path: open_path,
                message: "open segment handle is closed".to_string(),
            });
        };
        handle
            .sync_data()
            .map_err(|e| IngestError::io(&open_path, &e))?;
        hdx_obs::counter_add!(IngestCommits, 1);
        if self.open_bytes >= self.config.segment_max_bytes {
            self.seal()?;
        }
        Ok(self.total_rows())
    }

    /// Seals the open segment (no-op when it is empty): its frame stream
    /// becomes the payload of a new `seg-<seq>.hdx` envelope written
    /// temp-file → fsync → rename, and the open segment restarts empty.
    ///
    /// # Errors
    /// [`IngestError::Io`] on any filesystem failure; the open segment is
    /// left untouched in that case, so no row is lost.
    pub fn seal(&mut self) -> Result<(), IngestError> {
        if self.open_rows == 0 {
            return Ok(());
        }
        fail_point!("ingest::wal::seal", |message: String| IngestError::Io {
            path: self.dir.clone(),
            message,
        });
        #[cfg(feature = "hdx-fail")]
        if let Some(fault) = hdx_governor::failpoint::io_hit("ingest::wal::seal") {
            return Err(IngestError::Io {
                path: self.dir.clone(),
                message: fault.to_error().to_string(),
            });
        }
        let open_path = self.dir.join(OPEN_FILE);
        let payload = fs::read(&open_path).map_err(|e| IngestError::io(&open_path, &e))?;
        // Only the validated prefix is sealed (equal to the whole file in
        // every non-faulted execution).
        let payload = payload.get(..self.open_bytes as usize).unwrap_or_default();
        let seq = self.sealed.last().map_or(0, |s| s.seq + 1);
        let sealed_bytes = envelope::seal(payload);
        let tmp = self.dir.join(SEG_TMP);
        {
            let mut file = File::create(&tmp).map_err(|e| IngestError::io(&tmp, &e))?;
            file.write_all(&sealed_bytes)
                .map_err(|e| IngestError::io(&tmp, &e))?;
            file.sync_all().map_err(|e| IngestError::io(&tmp, &e))?;
        }
        let dest = seg_path(&self.dir, seq);
        fs::rename(&tmp, &dest).map_err(|e| IngestError::io(&dest, &e))?;
        if let Ok(dirf) = File::open(&self.dir) {
            let _ = dirf.sync_all();
        }
        // The segment is durable; restart the open segment.
        if let Some(handle) = self.handle.as_mut() {
            handle
                .set_len(0)
                .map_err(|e| IngestError::io(&open_path, &e))?;
            let _ = handle.sync_all();
        }
        self.sealed.push(SealedSegment {
            seq,
            rows: self.open_rows,
            bytes: self.open_bytes,
        });
        self.open_rows = 0;
        self.open_bytes = 0;
        hdx_obs::counter_add!(IngestSegmentsSealed, 1);
        Ok(())
    }

    /// Replays every row on disk, oldest first: sealed segments in
    /// sequence order, then the open segment.
    ///
    /// # Errors
    /// [`IngestError::Io`] when a segment that validated at open time can
    /// no longer be read (the disk changed underneath the process).
    pub fn rows(&self) -> Result<Vec<Vec<u8>>, IngestError> {
        let mut out = Vec::new();
        for seg in &self.sealed {
            out.extend(self.segment_rows(seg.seq)?);
        }
        let open_path = self.dir.join(OPEN_FILE);
        let bytes = match fs::read(&open_path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(IngestError::io(&open_path, &e)),
        };
        let bytes = bytes.get(..self.open_bytes as usize).unwrap_or(&bytes);
        out.extend(frames_of(bytes));
        Ok(out)
    }

    /// Replays the rows of one sealed segment.
    ///
    /// # Errors
    /// [`IngestError::Io`] when the file cannot be read;
    /// [`IngestError::Corrupt`] when it no longer passes validation.
    pub fn segment_rows(&self, seq: u64) -> Result<Vec<Vec<u8>>, IngestError> {
        let path = seg_path(&self.dir, seq);
        let bytes = fs::read(&path).map_err(|e| IngestError::io(&path, &e))?;
        let payload = envelope::open(&bytes).map_err(|e| IngestError::Corrupt {
            message: format!("sealed segment `{}`: {e}", path.display()),
        })?;
        Ok(frames_of(&payload))
    }

    /// Sliding-window retirement: removes the *oldest* sealed segment,
    /// returning its descriptor and rows so the caller can subtract their
    /// contribution (e.g. [`crate::LatticeView::retract`]). `None` when no
    /// sealed segment exists.
    ///
    /// # Errors
    /// The errors of [`Wal::segment_rows`], plus [`IngestError::Io`] when
    /// the file cannot be removed.
    pub fn retire_oldest(&mut self) -> Result<Option<(SealedSegment, Vec<Vec<u8>>)>, IngestError> {
        if self.sealed.is_empty() {
            return Ok(None);
        }
        let seg = self.sealed.remove(0);
        let rows = match self.segment_rows(seg.seq) {
            Ok(rows) => rows,
            Err(e) => {
                // Put the descriptor back: retirement failed, nothing changed.
                self.sealed.insert(0, seg);
                return Err(e);
            }
        };
        let path = seg_path(&self.dir, seg.seq);
        if let Err(e) = fs::remove_file(&path) {
            self.sealed.insert(0, seg);
            return Err(IngestError::io(&path, &e));
        }
        Ok(Some((seg, rows)))
    }
}

/// Read-only replay of a WAL directory: every valid row, oldest first,
/// without *healing* — no truncation, no quarantine renames, no handles
/// kept. Invalid data is only counted into the report. Safe to call while
/// another process (or handle) is appending: each frame is written with a
/// single atomic append, so a concurrent reader sees a valid prefix that
/// only grows. A missing directory replays as zero rows.
///
/// # Errors
/// [`IngestError::Io`] when the directory exists but cannot be scanned.
pub fn replay_dir(dir: &Path) -> Result<(Vec<Vec<u8>>, IngestReport), IngestError> {
    let mut report = IngestReport::default();
    if !dir.is_dir() {
        return Ok((Vec::new(), report));
    }
    let mut seqs: Vec<u64> = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| IngestError::io(dir, &e))?;
    for entry in entries {
        let entry = entry.map_err(|e| IngestError::io(dir, &e))?;
        if let Some(seq) = parse_seg_seq(&entry.file_name().to_string_lossy()) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    let mut out = Vec::new();
    for seq in seqs {
        let path = seg_path(dir, seq);
        let bytes = fs::read(&path).map_err(|e| IngestError::io(&path, &e))?;
        match envelope::open(&bytes) {
            Ok(payload) => out.extend(frames_of(&payload)),
            Err(err) => {
                report.quarantined_segments += 1;
                report.quarantined_bytes += bytes.len() as u64;
                report.note(format!(
                    "sealed segment `{}` invalid during replay: {err}",
                    path.display()
                ));
            }
        }
    }
    let open_path = dir.join(OPEN_FILE);
    let bytes = match fs::read(&open_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(IngestError::io(&open_path, &e)),
    };
    let scan = scan_frames(&bytes);
    if scan.valid_len < bytes.len() {
        report.quarantined_frames += scan.dropped_frames.max(1);
        report.quarantined_bytes += (bytes.len() - scan.valid_len) as u64;
        report.note(format!(
            "open segment has {} invalid tail byte(s) (unhealed; replaying the valid prefix)",
            bytes.len() - scan.valid_len
        ));
    }
    out.extend(frames_of(bytes.get(..scan.valid_len).unwrap_or_default()));
    Ok((out, report))
}

/// Encodes one payload as a frame: `[len][crc][payload]`.
fn encode_frame(payload: &[u8]) -> Vec<u8> {
    // ALLOC: emission site — one exactly-sized buffer per appended row.
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&hdx_checkpoint::crc::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What a frame scan found.
struct ScanOutcome {
    /// Valid frames, in order.
    rows: u64,
    /// Bytes of the valid prefix (everything after is torn/corrupt).
    valid_len: usize,
    /// Complete-looking frames inside the invalid suffix (0 when the
    /// suffix is a single partial frame). Best-effort: after the first bad
    /// frame, boundaries are unreliable.
    dropped_frames: u64,
}

/// Scans a frame stream, stopping at the first truncated or corrupt frame.
fn scan_frames(bytes: &[u8]) -> ScanOutcome {
    let mut off = 0usize;
    let mut rows = 0u64;
    while let Some((payload, next)) = next_frame(bytes, off) {
        let _ = payload;
        off = next;
        rows += 1;
    }
    let dropped = if off < bytes.len() { 1 } else { 0 };
    ScanOutcome {
        rows,
        valid_len: off,
        dropped_frames: dropped,
    }
}

/// Decodes the frame starting at `off`, returning its payload slice and
/// the offset of the next frame; `None` on truncation or CRC mismatch.
fn next_frame(bytes: &[u8], off: usize) -> Option<(&[u8], usize)> {
    let header = bytes.get(off..off + FRAME_HEADER)?;
    let (len_bytes, crc_bytes) = header.split_at(4);
    let len = u32::from_le_bytes(len_bytes.try_into().ok()?);
    let crc = u32::from_le_bytes(crc_bytes.try_into().ok()?);
    if len > MAX_FRAME_BYTES {
        return None;
    }
    let start = off + FRAME_HEADER;
    let payload = bytes.get(start..start + len as usize)?;
    if hdx_checkpoint::crc::crc32(payload) != crc {
        return None;
    }
    Some((payload, start + len as usize))
}

/// All valid frames of a stream (assumes a pre-validated stream; any
/// invalid tail is simply not yielded).
fn frames_of(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while let Some((payload, next)) = next_frame(bytes, off) {
        // ALLOC: emission — one owned row per replayed frame.
        out.push(payload.to_vec());
        off = next;
    }
    out
}

/// Path of sealed segment `seq` inside `dir`.
fn seg_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("{SEG_PREFIX}{seq:010}.{SEG_EXT}"))
}

/// Parses a sealed segment file name back to its sequence number.
fn parse_seg_seq(name: &str) -> Option<u64> {
    let stem = name
        .strip_prefix(SEG_PREFIX)?
        .strip_suffix(&format!(".{SEG_EXT}"))?;
    stem.parse().ok()
}

/// Renames a corrupt file aside with a `.corrupt` suffix (best-effort).
fn quarantine_aside(path: &Path) {
    let mut aside = path.as_os_str().to_owned();
    aside.push(".corrupt");
    let _ = fs::rename(path, PathBuf::from(aside));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "hdx-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn row(i: u64) -> Vec<u8> {
        format!("row-{i},a,{}", i % 7).into_bytes()
    }

    #[test]
    fn append_commit_reopen_replays_identically() {
        let dir = tmp_dir("replay");
        let (mut wal, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(report.is_clean());
        for i in 0..10 {
            wal.append_row(&row(i)).unwrap();
        }
        assert_eq!(wal.commit().unwrap(), 10);
        let before = wal.rows().unwrap();
        drop(wal); // simulate the process dying

        let (wal2, report2) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(report2.is_clean(), "{report2:?}");
        assert_eq!(wal2.total_rows(), 10);
        assert_eq!(wal2.rows().unwrap(), before, "byte-identical replay");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealing_moves_rows_into_envelope_segments() {
        let dir = tmp_dir("seal");
        let config = WalConfig {
            segment_max_bytes: 64,
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..20 {
            wal.append_row(&row(i)).unwrap();
            wal.commit().unwrap();
        }
        assert!(!wal.sealed_segments().is_empty(), "auto-sealed");
        assert_eq!(wal.total_rows(), 20);
        let all = wal.rows().unwrap();
        assert_eq!(all.len(), 20);
        assert_eq!(all[0], row(0));
        assert_eq!(all[19], row(19));
        drop(wal);
        // Reopen re-validates every sealed segment via its envelope.
        let (wal2, report) = Wal::open(&dir, config).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(wal2.total_rows(), 20);
        assert_eq!(wal2.rows().unwrap(), all);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_open_tail_is_quarantined_not_fatal() {
        let dir = tmp_dir("torn");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append_row(&row(i)).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        // Crash mid-append: a partial frame lands at the tail.
        let open = dir.join(OPEN_FILE);
        let mut bytes = fs::read(&open).unwrap();
        bytes.extend_from_slice(&[0x21, 0x00, 0x00, 0x00, 0xDE, 0xAD]); // torn header
        fs::write(&open, &bytes).unwrap();

        let (wal2, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal2.total_rows(), 5, "valid prefix survives");
        assert_eq!(report.quarantined_frames, 1);
        assert_eq!(report.quarantined_bytes, 6);
        assert!(!report.is_clean());
        assert!(report.notes[0].contains("torn open-segment tail"), "{report:?}");
        assert!(dir.join(format!("{OPEN_FILE}.quarantine")).is_file());
        // A third open is quiet: the tail was truncated away.
        drop(wal2);
        let (wal3, report3) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(report3.is_clean(), "{report3:?}");
        assert_eq!(wal3.total_rows(), 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_frame_mid_stream_quarantines_the_suffix() {
        let dir = tmp_dir("midcorrupt");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..4 {
            wal.append_row(&row(i)).unwrap();
        }
        wal.commit().unwrap();
        drop(wal);
        // Flip a byte inside the third frame's payload.
        let open = dir.join(OPEN_FILE);
        let mut bytes = fs::read(&open).unwrap();
        let frame_len = FRAME_HEADER + row(0).len();
        bytes[2 * frame_len + FRAME_HEADER + 1] ^= 0xFF;
        fs::write(&open, &bytes).unwrap();

        let (wal2, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal2.total_rows(), 2, "rows before the corrupt frame");
        assert!(report.quarantined_bytes >= 2 * frame_len as u64);
        assert_eq!(wal2.rows().unwrap(), vec![row(0), row(1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_sealed_segment_is_quarantined_and_the_rest_survive() {
        let dir = tmp_dir("badseg");
        let config = WalConfig {
            segment_max_bytes: 32,
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..12 {
            wal.append_row(&row(i)).unwrap();
            wal.commit().unwrap();
        }
        let segs: Vec<u64> = wal.sealed_segments().iter().map(|s| s.seq).collect();
        assert!(segs.len() >= 2, "{segs:?}");
        drop(wal);
        // Corrupt the first sealed segment.
        let victim = seg_path(&dir, segs[0]);
        let mut bytes = fs::read(&victim).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&victim, &bytes).unwrap();

        let (wal2, report) = Wal::open(&dir, config).unwrap();
        assert_eq!(report.quarantined_segments, 1);
        assert!(report.notes[0].contains("quarantined sealed segment"));
        assert!(!victim.exists(), "moved aside");
        let survived = wal2.total_rows();
        assert!(survived < 12 && survived > 0, "survived={survived}");
        assert!(wal2.rows().is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retire_oldest_returns_the_segment_rows() {
        let dir = tmp_dir("retire");
        let config = WalConfig {
            segment_max_bytes: 32,
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..9 {
            wal.append_row(&row(i)).unwrap();
            wal.commit().unwrap();
        }
        let total = wal.total_rows();
        let (seg, rows) = wal.retire_oldest().unwrap().expect("has sealed segments");
        assert_eq!(seg.rows as usize, rows.len());
        assert_eq!(rows[0], row(0), "oldest segment holds the oldest rows");
        assert_eq!(wal.total_rows(), total - seg.rows);
        assert!(!seg_path(&dir, seg.seq).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_dir_matches_the_healing_open_without_mutating() {
        let dir = tmp_dir("replaydir");
        let config = WalConfig {
            segment_max_bytes: 48,
        };
        let (mut wal, _) = Wal::open(&dir, config).unwrap();
        for i in 0..8 {
            wal.append_row(&row(i)).unwrap();
            wal.commit().unwrap();
        }
        let expected = wal.rows().unwrap();
        drop(wal);
        // Torn tail: replay_dir must report it but NOT heal it.
        let open = dir.join(OPEN_FILE);
        let mut bytes = fs::read(&open).unwrap();
        let before_len = bytes.len();
        bytes.extend_from_slice(&[9, 0, 0, 0]);
        fs::write(&open, &bytes).unwrap();
        let (rows, report) = replay_dir(&dir).unwrap();
        assert_eq!(rows, expected);
        assert_eq!(report.quarantined_frames, 1);
        assert_eq!(report.quarantined_bytes, 4);
        assert_eq!(
            fs::read(&open).unwrap().len(),
            before_len + 4,
            "read-only replay must not truncate"
        );
        // A missing directory replays empty.
        let (none, clean) = replay_dir(&dir.join("nope")).unwrap();
        assert!(none.is_empty());
        assert!(clean.is_clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_wal_retires_nothing() {
        let dir = tmp_dir("empty");
        let (mut wal, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(report.is_clean());
        assert_eq!(wal.total_rows(), 0);
        assert_eq!(wal.rows().unwrap(), Vec::<Vec<u8>>::new());
        assert!(wal.retire_oldest().unwrap().is_none());
        wal.seal().unwrap(); // no-op
        assert!(wal.sealed_segments().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    /// An injected ENOSPC at the fsync boundary surfaces as a typed error
    /// and costs nothing: the rows were never acknowledged, and the next
    /// commit (device "freed") lands them all.
    #[test]
    #[cfg(feature = "hdx-fail")]
    fn enospc_on_commit_is_a_typed_retryable_error() {
        use hdx_governor::failpoint::{self, FailAction, IoFault};
        let dir = tmp_dir("enospc");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_row(&row(0)).unwrap();
        wal.append_row(&row(1)).unwrap();
        failpoint::arm("ingest::wal::fsync", FailAction::Io(IoFault::Enospc), 1);
        let err = wal.commit().expect_err("injected ENOSPC must surface");
        failpoint::disarm("ingest::wal::fsync");
        assert!(err.to_string().contains("no space left"), "{err}");
        // Retry without the fault: both rows become durable.
        assert_eq!(wal.commit().unwrap(), 2);
        let (wal2, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(wal2.total_rows(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    /// An injected short write really tears the open segment: half a frame
    /// lands on disk, the handle refuses further work, and the next open
    /// quarantines exactly the torn bytes while every committed row
    /// survives.
    #[test]
    #[cfg(feature = "hdx-fail")]
    fn short_write_tears_the_tail_and_recovery_quarantines_it() {
        use hdx_governor::failpoint::{self, FailAction, IoFault};
        let dir = tmp_dir("shortwrite");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        wal.append_row(&row(0)).unwrap();
        wal.append_row(&row(1)).unwrap();
        wal.commit().unwrap();

        failpoint::arm("ingest::wal::append", FailAction::Io(IoFault::ShortWrite), 1);
        let err = wal.append_row(&row(2)).expect_err("short write must fail");
        failpoint::disarm("ingest::wal::append");
        assert!(err.to_string().contains("short write"), "{err}");
        // The torn handle refuses appends and commits until reopened.
        assert!(wal.append_row(&row(3)).is_err());
        assert!(wal.commit().is_err());
        drop(wal);

        let (wal2, report) = Wal::open(&dir, WalConfig::default()).unwrap();
        assert!(!report.is_clean(), "the torn tail must be quarantined");
        assert!(report.quarantined_bytes > 0, "{report:?}");
        assert_eq!(wal2.total_rows(), 2, "committed rows survive");
        assert_eq!(wal2.rows().unwrap(), vec![row(0), row(1)]);
        let _ = fs::remove_dir_all(&dir);
    }

    /// An injected seal failure (e.g. ENOSPC while writing the envelope)
    /// leaves the open segment fully intact: nothing is lost, and a retry
    /// seals the same rows.
    #[test]
    #[cfg(feature = "hdx-fail")]
    fn failed_seal_loses_no_rows() {
        use hdx_governor::failpoint::{self, FailAction, IoFault};
        let dir = tmp_dir("sealfail");
        let (mut wal, _) = Wal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append_row(&row(i)).unwrap();
        }
        wal.commit().unwrap();
        failpoint::arm("ingest::wal::seal", FailAction::Io(IoFault::Enospc), 1);
        assert!(wal.seal().is_err(), "injected seal fault must surface");
        failpoint::disarm("ingest::wal::seal");
        assert_eq!(wal.open_rows(), 5, "open segment untouched");
        wal.seal().expect("retry seals cleanly");
        assert_eq!(wal.sealed_segments().len(), 1);
        assert_eq!(wal.total_rows(), 5);
        let _ = fs::remove_dir_all(&dir);
    }
}
