//! The ingestion error type.

use std::path::{Path, PathBuf};

/// Why an ingestion operation failed.
///
/// Corruption found *at rest* (torn tails, bad checksums) is deliberately
/// **not** an error: recovery quarantines it into an
/// [`crate::IngestReport`] and keeps going. This type covers the failures
/// the caller must act on — the filesystem refusing a write, or a payload
/// that cannot be decoded at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// A filesystem operation failed.
    Io {
        /// The path the operation touched.
        path: PathBuf,
        /// The underlying error, rendered.
        message: String,
    },
    /// A decoded structure (cursor, frame header) is malformed beyond what
    /// quarantine can absorb.
    Corrupt {
        /// What was malformed.
        message: String,
    },
}

impl IngestError {
    /// Builds an [`IngestError::Io`] from a path and a `std::io::Error`.
    pub fn io(path: &Path, err: &std::io::Error) -> Self {
        IngestError::Io {
            path: path.to_path_buf(),
            message: err.to_string(),
        }
    }
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io { path, message } => {
                write!(f, "ingest I/O error at `{}`: {message}", path.display())
            }
            IngestError::Corrupt { message } => write!(f, "ingest state corrupt: {message}"),
        }
    }
}

impl std::error::Error for IngestError {}
