//! The ingest cursor: how far the fold has progressed, sealed to disk.

use std::path::Path;

use hdx_checkpoint::scan::{read_sealed, write_sealed};

use crate::error::IngestError;

/// File name of the sealed cursor inside a job directory.
pub const CURSOR_FILE: &str = "ingest.hdx";

/// Codec version of [`IngestCursor::encode`].
const CURSOR_VERSION: u32 = 1;
/// Encoded size: version + 3 × u64.
const CURSOR_LEN: usize = 4 + 3 * 8;

/// Where the fold stands relative to the WAL.
///
/// Written (sealed, temp-file → fsync → rename) only *after* a mining
/// result over `base ⧺ WAL[..rows_folded]` has itself been made durable.
/// Recovery compares [`IngestCursor::rows_folded`] against the WAL's
/// durable row count: a shortfall means rows arrived (or a crash landed)
/// after the last fold, so the job is simply re-queued for re-mining — the
/// mining pass is a pure function of the concatenated data, making replay
/// idempotent no matter where the crash fell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestCursor {
    /// WAL rows folded into the last durable mining result.
    pub rows_folded: u64,
    /// Lifetime count of quarantined frames (carried across recoveries).
    pub quarantined_frames: u64,
    /// Lifetime count of quarantined bytes.
    pub quarantined_bytes: u64,
}

impl IngestCursor {
    /// Encodes the cursor (little-endian, versioned).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(CURSOR_LEN);
        out.extend_from_slice(&CURSOR_VERSION.to_le_bytes());
        out.extend_from_slice(&self.rows_folded.to_le_bytes());
        out.extend_from_slice(&self.quarantined_frames.to_le_bytes());
        out.extend_from_slice(&self.quarantined_bytes.to_le_bytes());
        out
    }

    /// Decodes an [`IngestCursor::encode`] payload.
    ///
    /// # Errors
    /// [`IngestError::Corrupt`] on a wrong length or unknown version.
    pub fn decode(bytes: &[u8]) -> Result<Self, IngestError> {
        if bytes.len() != CURSOR_LEN {
            return Err(IngestError::Corrupt {
                message: format!("cursor payload is {} bytes, expected {CURSOR_LEN}", bytes.len()),
            });
        }
        let word = |i: usize| -> u64 {
            bytes
                .get(4 + i * 8..4 + (i + 1) * 8)
                .and_then(|w| w.try_into().ok())
                .map_or(0, u64::from_le_bytes)
        };
        let version = bytes
            .get(..4)
            .and_then(|w| w.try_into().ok())
            .map_or(0, u32::from_le_bytes);
        if version != CURSOR_VERSION {
            return Err(IngestError::Corrupt {
                message: format!("cursor version {version} is not {CURSOR_VERSION}"),
            });
        }
        Ok(Self {
            rows_folded: word(0),
            quarantined_frames: word(1),
            quarantined_bytes: word(2),
        })
    }

    /// Seals the cursor to `path` with the checkpoint envelope discipline
    /// (temp file → fsync → rename → directory fsync).
    ///
    /// # Errors
    /// [`IngestError::Io`] when the write fails; the previous cursor file,
    /// if any, is left intact in that case.
    pub fn save(&self, path: &Path) -> Result<(), IngestError> {
        write_sealed(path, &self.encode()).map_err(|e| IngestError::Io {
            path: path.to_path_buf(),
            message: e.to_string(),
        })
    }

    /// Loads a sealed cursor. `Ok(None)` when the file does not exist — a
    /// job that has never folded. A *corrupt* cursor also maps to
    /// `Ok(None)`: the cursor is pure scheduling metadata (it only decides
    /// whether a re-mine is needed), so losing it degrades to one
    /// redundant re-mine, never to wrong results.
    ///
    /// # Errors
    /// [`IngestError::Io`] when the file exists but cannot be read.
    pub fn load(path: &Path) -> Result<Option<Self>, IngestError> {
        if !path.exists() {
            return Ok(None);
        }
        match read_sealed(path) {
            Ok(payload) => match Self::decode(&payload) {
                Ok(cursor) => Ok(Some(cursor)),
                Err(_) => Ok(None),
            },
            Err(e) if e.is_corruption() => Ok(None),
            Err(e) => Err(IngestError::Io {
                path: path.to_path_buf(),
                message: e.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let c = IngestCursor {
            rows_folded: 12345,
            quarantined_frames: 7,
            quarantined_bytes: 4096,
        };
        assert_eq!(IngestCursor::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn decode_rejects_bad_length_and_version() {
        assert!(IngestCursor::decode(&[0u8; 5]).is_err());
        let mut bytes = IngestCursor::default().encode();
        bytes[0] = 99;
        assert!(IngestCursor::decode(&bytes).is_err());
    }

    #[test]
    fn save_load_round_trip_and_missing_is_none() {
        let dir = std::env::temp_dir().join(format!("hdx-cursor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CURSOR_FILE);
        assert_eq!(IngestCursor::load(&path).unwrap(), None);
        let c = IngestCursor {
            rows_folded: 42,
            quarantined_frames: 1,
            quarantined_bytes: 6,
        };
        c.save(&path).unwrap();
        assert_eq!(IngestCursor::load(&path).unwrap(), Some(c));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cursor_degrades_to_none() {
        let dir = std::env::temp_dir().join(format!("hdx-cursor-bad-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(CURSOR_FILE);
        let c = IngestCursor {
            rows_folded: 9,
            ..Default::default()
        };
        c.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(IngestCursor::load(&path).unwrap(), None, "corrupt → redo, not error");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
