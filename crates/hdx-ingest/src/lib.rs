//! Crash-safe incremental ingestion (`hdx_core::ingest`).
//!
//! Batch mining answers "what diverges in this dataset"; continuous model
//! monitoring needs the same answer under heavy write traffic, without
//! losing or double-counting a single row across crashes. This crate is
//! that spine (DESIGN.md §17):
//!
//! * [`Wal`] — a CRC-framed, segmented write-ahead log. Rows land in an
//!   open segment (one checksummed frame per row, `fsync` before any row
//!   is acknowledged via [`Wal::commit`]); full segments are sealed into
//!   the hdx-checkpoint envelope format (`hdx-ckpt/v1`, temp file → fsync
//!   → rename), so a sealed segment is tamper-evident end to end.
//! * **Degrade-not-die recovery** — [`Wal::open`] scans segments
//!   newest-valid-wins: a corrupt sealed segment or a torn open-segment
//!   tail is *quarantined* (moved aside, counted in an [`IngestReport`])
//!   instead of bricking ingestion. Every row that was ever acknowledged
//!   is either replayed or explicitly reported as quarantined.
//! * [`IngestCursor`] — the fold position (rows folded into the last
//!   sealed mining result, plus quarantine totals), persisted with the
//!   same sealed-envelope discipline. Re-mining is a pure function of the
//!   base data plus the WAL's durable prefix, so replay after a crash
//!   mid-fold is idempotent by construction: the cursor only tells the
//!   scheduler whether a re-mine is *needed*, never what to add.
//! * [`LatticeView`] — the incremental fold: mined itemsets with
//!   mergeable/subtractable [`hdx_stats::StatAccum`]s. An appended row
//!   only re-touches the itemsets its items cover ([`LatticeView::apply`]);
//!   a sliding window retires a sealed segment by subtracting its delta
//!   ([`LatticeView::retract`], [`Wal::retire_oldest`]). Exactness matches
//!   the kernel contract: counts and integer-valued sums bitwise, reals
//!   ULP-bounded.
//!
//! Under `hdx-fail` the `ingest::wal::append`, `ingest::wal::fsync`,
//! `ingest::wal::seal` and `ingest::fold` fail points inject fsync
//! failures, torn tails, ENOSPC and fold panics for chaos tests.

mod cursor;
mod error;
mod fold;
mod report;
/// The CRC-framed segmented write-ahead log (see the crate docs).
pub mod wal;

pub use cursor::{IngestCursor, CURSOR_FILE};
pub use error::IngestError;
pub use fold::LatticeView;
pub use report::IngestReport;
pub use wal::{replay_dir, SealedSegment, Wal, WalConfig, OPEN_FILE};
