//! The incremental lattice fold: mined itemsets with mergeable,
//! subtractable statistics.
//!
//! A full mining pass is the source of truth; [`LatticeView`] keeps its
//! result *live* between passes. An appended row only re-touches the
//! itemsets its items cover (subset test over sorted item lists), updating
//! each one's [`StatAccum`] with the exactness contract of the kernels:
//! counts and integer-valued sums bitwise-identical to from-scratch
//! accumulation, real sums ULP-bounded. A sliding window retires old rows
//! by subtracting their contribution ([`LatticeView::retract_batch`] /
//! [`StatAccum::unmerge`]).

use hdx_governor::fail_point;
use hdx_items::{ItemId, Itemset};
use hdx_mining::MiningResult;
use hdx_stats::{Outcome, StatAccum};

/// One row ready to fold: its (sorted) item list and its outcome.
pub type FoldRow = (Vec<ItemId>, Outcome);

/// A live view of the mined lattice: every frequent itemset of the last
/// full pass, with statistics that can be advanced (or rewound) row by row
/// without re-mining. The view re-ranks divergence *between* governed
/// re-mines; it never discovers new itemsets — that is the re-mine's job.
#[derive(Debug, Clone)]
pub struct LatticeView {
    itemsets: Vec<(Itemset, StatAccum)>,
    global: StatAccum,
    n_rows: u64,
}

impl LatticeView {
    /// Builds a view from a full mining pass.
    pub fn from_result(result: &MiningResult) -> Self {
        Self {
            itemsets: result
                .itemsets
                .iter()
                .map(|f| (f.itemset.clone(), f.accum.clone()))
                .collect(),
            global: result.global.clone(),
            n_rows: result.n_rows as u64,
        }
    }

    /// The tracked itemsets with their current statistics.
    pub fn itemsets(&self) -> &[(Itemset, StatAccum)] {
        &self.itemsets
    }

    /// The whole-dataset accumulator (`f(D)`).
    pub fn global(&self) -> &StatAccum {
        &self.global
    }

    /// Rows currently folded in.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Folds one row in: the global accumulator and every tracked itemset
    /// the row covers (its sorted `items` are a superset of the itemset)
    /// advance by this row's outcome.
    ///
    /// `items` must be sorted ascending (checked under debug assertions).
    pub fn apply(&mut self, items: &[ItemId], outcome: Outcome) {
        debug_assert!(items.windows(2).all(|w| w.first() < w.last()), "row items must be sorted");
        fail_point!("ingest::fold");
        let mut touched = 0u64;
        for (itemset, accum) in &mut self.itemsets {
            if is_subset_sorted(itemset.items(), items) {
                // ALLOC: StatAccum::push is inline scalar arithmetic.
                accum.push(outcome);
                touched += 1;
            }
        }
        // ALLOC: StatAccum::push is inline scalar arithmetic.
        self.global.push(outcome);
        self.n_rows += 1;
        hdx_obs::counter_add!(IngestFoldRowsApplied, 1);
        hdx_obs::counter_add!(IngestFoldItemsetsTouched, touched);
        let _ = touched;
    }

    /// Rewinds one row ([`StatAccum::unmerge`] of a single-row
    /// accumulator): the exact inverse of [`LatticeView::apply`] for
    /// counts and integer-valued sums, ULP-bounded for real sums.
    pub fn retract(&mut self, items: &[ItemId], outcome: Outcome) {
        debug_assert!(items.windows(2).all(|w| w.first() < w.last()), "row items must be sorted");
        fail_point!("ingest::fold");
        let one = StatAccum::from_outcomes(&[outcome]);
        for (itemset, accum) in &mut self.itemsets {
            if is_subset_sorted(itemset.items(), items) {
                accum.unmerge(&one);
            }
        }
        self.global.unmerge(&one);
        self.n_rows = self.n_rows.saturating_sub(1);
    }

    /// Folds a batch of rows, touching each tracked itemset once: the
    /// batch's delta is accumulated per itemset, then merged in one
    /// [`StatAccum::merge`]. Equivalent to applying every row in order.
    pub fn apply_batch(&mut self, rows: &[FoldRow]) {
        fail_point!("ingest::fold");
        for (itemset, accum) in &mut self.itemsets {
            let mut delta = StatAccum::new();
            let mut any = false;
            for (items, outcome) in rows {
                if is_subset_sorted(itemset.items(), items) {
                    // ALLOC: StatAccum::push is inline scalar arithmetic.
                    delta.push(*outcome);
                    any = true;
                }
            }
            if any {
                accum.merge(&delta);
            }
        }
        let mut global_delta = StatAccum::new();
        for (_, outcome) in rows {
            // ALLOC: StatAccum::push is inline scalar arithmetic.
            global_delta.push(*outcome);
        }
        self.global.merge(&global_delta);
        self.n_rows += rows.len() as u64;
        hdx_obs::counter_add!(IngestFoldRowsApplied, rows.len() as u64);
    }

    /// Rewinds a batch of rows (sliding-window retirement of a sealed WAL
    /// segment): each itemset's batch delta is subtracted in one
    /// [`StatAccum::unmerge`].
    pub fn retract_batch(&mut self, rows: &[FoldRow]) {
        fail_point!("ingest::fold");
        for (itemset, accum) in &mut self.itemsets {
            let mut delta = StatAccum::new();
            let mut any = false;
            for (items, outcome) in rows {
                if is_subset_sorted(itemset.items(), items) {
                    // ALLOC: StatAccum::push is inline scalar arithmetic.
                    delta.push(*outcome);
                    any = true;
                }
            }
            if any {
                accum.unmerge(&delta);
            }
        }
        let mut global_delta = StatAccum::new();
        for (_, outcome) in rows {
            // ALLOC: StatAccum::push is inline scalar arithmetic.
            global_delta.push(*outcome);
        }
        self.global.unmerge(&global_delta);
        self.n_rows = self.n_rows.saturating_sub(rows.len() as u64);
    }
}

/// `true` when sorted `sub` ⊆ sorted `sup` (two-pointer sorted merge).
fn is_subset_sorted(sub: &[ItemId], sup: &[ItemId]) -> bool {
    let mut sup_iter = sup.iter();
    'outer: for needle in sub {
        for cand in sup_iter.by_ref() {
            if cand == needle {
                continue 'outer;
            }
            if cand > needle {
                return false;
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_mining::FrequentItemset;

    fn ids(raw: &[u32]) -> Vec<ItemId> {
        raw.iter().map(|&i| ItemId(i)).collect()
    }

    /// Deterministic pseudo-random rows: item lists over 6 items (at most
    /// one of {0,1}, {2,3}, {4,5} — one per "attribute") plus a boolean
    /// outcome.
    fn synth_rows(n: u64, seed: u64) -> Vec<FoldRow> {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let r = next();
                let mut items = Vec::new();
                for attr in 0..3u32 {
                    match (r >> (attr * 2)) & 0b11 {
                        0 => items.push(ItemId(attr * 2)),
                        1 => items.push(ItemId(attr * 2 + 1)),
                        _ => {}
                    }
                }
                (items, Outcome::Bool(r & (1 << 40) != 0))
            })
            .collect()
    }

    fn tracked() -> Vec<Itemset> {
        vec![
            Itemset::from_sorted_unchecked(ids(&[0])),
            Itemset::from_sorted_unchecked(ids(&[2])),
            Itemset::from_sorted_unchecked(ids(&[0, 2])),
            Itemset::from_sorted_unchecked(ids(&[1, 4])),
            Itemset::from_sorted_unchecked(ids(&[0, 3, 5])),
        ]
    }

    /// From-scratch accumulation over `rows` for each tracked itemset.
    fn scratch(itemsets: &[Itemset], rows: &[FoldRow]) -> Vec<StatAccum> {
        itemsets
            .iter()
            .map(|itemset| {
                let outcomes: Vec<Outcome> = rows
                    .iter()
                    .filter(|(items, _)| is_subset_sorted(itemset.items(), items))
                    .map(|&(_, o)| o)
                    .collect();
                StatAccum::from_outcomes(&outcomes)
            })
            .collect()
    }

    fn empty_view() -> LatticeView {
        let frequent = tracked()
            .into_iter()
            .map(|itemset| FrequentItemset {
                itemset,
                accum: StatAccum::new(),
            })
            .collect();
        LatticeView::from_result(&MiningResult::complete(frequent, 0, StatAccum::new()))
    }

    fn assert_bitwise_eq(got: &StatAccum, want: &StatAccum, ctx: &str) {
        let (gn, gv, gs, gq) = got.raw_parts();
        let (wn, wv, ws, wq) = want.raw_parts();
        assert_eq!((gn, gv), (wn, wv), "{ctx}: counts");
        assert_eq!(gs.to_bits(), ws.to_bits(), "{ctx}: sum bitwise");
        assert_eq!(gq.to_bits(), wq.to_bits(), "{ctx}: sum_sq bitwise");
    }

    #[test]
    fn row_by_row_fold_is_bitwise_identical_to_from_scratch() {
        let rows = synth_rows(500, 0xFEED);
        let mut view = empty_view();
        for (items, outcome) in &rows {
            view.apply(items, *outcome);
        }
        assert_eq!(view.n_rows(), 500);
        let want = scratch(&tracked(), &rows);
        for ((itemset, got), want) in view.itemsets().iter().zip(&want) {
            assert_bitwise_eq(got, want, &format!("{:?}", itemset.items()));
        }
        assert_bitwise_eq(
            view.global(),
            &StatAccum::from_outcomes(&rows.iter().map(|&(_, o)| o).collect::<Vec<_>>()),
            "global",
        );
    }

    #[test]
    fn batch_fold_matches_row_by_row_on_booleans() {
        let rows = synth_rows(300, 0xBEEF);
        let mut one_by_one = empty_view();
        for (items, outcome) in &rows {
            one_by_one.apply(items, *outcome);
        }
        let mut batched = empty_view();
        batched.apply_batch(&rows);
        for ((_, a), (_, b)) in one_by_one.itemsets().iter().zip(batched.itemsets()) {
            assert_bitwise_eq(a, b, "batch vs row-by-row");
        }
        assert_eq!(one_by_one.n_rows(), batched.n_rows());
    }

    #[test]
    fn sliding_window_retract_restores_the_prefix_view() {
        let window_a = synth_rows(200, 1);
        let window_b = synth_rows(150, 2);
        let mut view = empty_view();
        view.apply_batch(&window_a);
        let snapshot: Vec<StatAccum> =
            view.itemsets().iter().map(|(_, a)| a.clone()).collect();
        view.apply_batch(&window_b);
        view.retract_batch(&window_b);
        assert_eq!(view.n_rows(), 200);
        for ((itemset, got), want) in view.itemsets().iter().zip(&snapshot) {
            assert_bitwise_eq(got, want, &format!("retract {:?}", itemset.items()));
        }
    }

    #[test]
    fn retract_single_inverts_apply_single() {
        let mut view = empty_view();
        let rows = synth_rows(50, 7);
        view.apply_batch(&rows);
        let snapshot: Vec<StatAccum> =
            view.itemsets().iter().map(|(_, a)| a.clone()).collect();
        let extra = (ids(&[0, 2, 4]), Outcome::Bool(true));
        view.apply(&extra.0, extra.1);
        view.retract(&extra.0, extra.1);
        for ((_, got), want) in view.itemsets().iter().zip(&snapshot) {
            assert_bitwise_eq(got, want, "single retract");
        }
    }

    #[test]
    fn real_outcomes_fold_within_ulp_bounds() {
        let rows: Vec<FoldRow> = (0..100)
            .map(|i| (ids(&[0, 2]), Outcome::Real(0.1 * (i as f64) - 3.7)))
            .collect();
        let mut view = empty_view();
        view.apply_batch(&rows);
        let want = scratch(&tracked(), &rows);
        for ((_, got), want) in view.itemsets().iter().zip(&want) {
            let (_, _, gs, gq) = got.raw_parts();
            let (_, _, ws, wq) = want.raw_parts();
            assert!((gs - ws).abs() <= 1e-9 * ws.abs().max(1.0), "sum {gs} vs {ws}");
            assert!((gq - wq).abs() <= 1e-9 * wq.abs().max(1.0), "sum_sq {gq} vs {wq}");
        }
    }

    #[test]
    fn undefined_outcomes_count_rows_but_not_valids() {
        let mut view = empty_view();
        view.apply(&ids(&[0, 2]), Outcome::Undefined);
        view.apply(&ids(&[0, 2]), Outcome::Bool(true));
        let (n, n_valid, _, _) = view.global().raw_parts();
        assert_eq!((n, n_valid), (2, 1));
    }

    #[test]
    fn subset_test_agrees_with_itemset_superset() {
        let sub = ids(&[1, 4]);
        assert!(is_subset_sorted(&sub, &ids(&[1, 2, 4])));
        assert!(is_subset_sorted(&sub, &ids(&[1, 4])));
        assert!(!is_subset_sorted(&sub, &ids(&[1, 5])));
        assert!(!is_subset_sorted(&sub, &ids(&[4])));
        assert!(is_subset_sorted(&[], &ids(&[3])));
        assert!(!is_subset_sorted(&sub, &[]));
    }
}
