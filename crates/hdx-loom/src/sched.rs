//! The schedule controller: real threads serialized under one lock, with
//! deterministic depth-first replay of scheduling decisions.
//!
//! One model iteration is one *schedule*. Exactly one model thread is
//! `active` at any time; everything else blocks on the controller's
//! condvar. At every schedule point the active thread re-enters the
//! controller ([`Controller::reschedule`]), which picks the next thread
//! from the runnable set: replaying the iteration's decision `script`
//! while it lasts, then defaulting to the first runnable thread and
//! recording the number of alternatives. [`next_script`] then bumps the
//! deepest decision with an untried alternative, giving depth-first
//! exploration of the whole schedule tree.
//!
//! Model threads are ordinary OS threads, so thread-locals, `Drop` order
//! and real `JoinHandle` semantics inside the modeled code all behave
//! exactly as in production — only the *timing* is controlled.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// What one model thread is doing, from the controller's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ThreadState {
    /// Schedulable.
    Runnable,
    /// Waiting for the modeled mutex with this key (its address).
    BlockedMutex(usize),
    /// Waiting for the model thread with this id to finish.
    BlockedJoin(usize),
    /// Returned or unwound; never scheduled again.
    Finished,
}

/// One recorded scheduling decision.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Choice {
    /// Index chosen within the runnable set at this point.
    chosen: usize,
    /// Size of the runnable set at this point.
    n_choices: usize,
    /// Thread id that was scheduled (for trace reports).
    thread: usize,
}

/// Mutable scheduler state, behind the controller's lock.
struct Sched {
    threads: Vec<ThreadState>,
    active: usize,
    script: Vec<usize>,
    pos: usize,
    trace: Vec<Choice>,
    panicked: bool,
}

/// The per-iteration schedule controller shared by all model threads.
pub(crate) struct Controller {
    state: Mutex<Sched>,
    cv: Condvar,
}

impl Controller {
    /// A controller for one iteration, replaying `script` as its decision
    /// prefix. Thread 0 (the model root) is pre-registered and active.
    pub(crate) fn new(script: Vec<usize>) -> Self {
        Self {
            state: Mutex::new(Sched {
                threads: vec![ThreadState::Runnable],
                active: 0,
                script,
                pos: 0,
                trace: Vec::new(),
                panicked: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Sched> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The schedule point: moves `me` into `me_state`, picks the next
    /// thread to run, and blocks until `me` is scheduled again. Late calls
    /// from a thread already marked finished (thread-local teardown after
    /// the model closure returned) are a no-op.
    pub(crate) fn reschedule(&self, me: usize, me_state: ThreadState) {
        let mut st = self.locked();
        if st.threads[me] == ThreadState::Finished {
            return;
        }
        st.threads[me] = me_state;
        self.pick_next(&mut st);
        self.cv.notify_all();
        while st.active != me {
            if st.panicked {
                drop(st);
                panic!("hdx-loom: abandoning schedule after another model thread panicked");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Picks the next active thread from the runnable set, recording the
    /// decision. Panics with a deadlock report when live threads exist but
    /// none is runnable; does nothing when every thread has finished.
    fn pick_next(&self, st: &mut Sched) {
        let runnable: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter_map(|(i, t)| (*t == ThreadState::Runnable).then_some(i))
            .collect();
        if runnable.is_empty() {
            if st.threads.iter().all(|t| *t == ThreadState::Finished) {
                return;
            }
            st.panicked = true;
            let report = format!(
                "hdx-loom: deadlock — every live thread is blocked (states: {:?}); \
                 schedule so far: {}",
                st.threads,
                format_trace(&st.trace),
            );
            self.cv.notify_all();
            panic!("{report}");
        }
        let idx = if st.pos < st.script.len() {
            // The clamp only matters if a model is nondeterministic between
            // iterations, which is itself a modeling error; clamping keeps
            // the replay well-defined instead of panicking on an index.
            st.script[st.pos].min(runnable.len() - 1)
        } else {
            0
        };
        st.pos += 1;
        st.trace.push(Choice {
            chosen: idx,
            n_choices: runnable.len(),
            thread: runnable[idx],
        });
        st.active = runnable[idx];
    }

    /// Registers a newly spawned model thread as runnable; returns its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.locked();
        st.threads.push(ThreadState::Runnable);
        st.threads.len() - 1
    }

    /// Blocks a freshly spawned thread until the scheduler first picks it.
    pub(crate) fn wait_until_active(&self, id: usize) {
        let mut st = self.locked();
        while st.active != id {
            if st.panicked {
                drop(st);
                panic!("hdx-loom: abandoning schedule after another model thread panicked");
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Whether the model thread `id` has finished.
    pub(crate) fn is_finished(&self, id: usize) -> bool {
        self.locked().threads[id] == ThreadState::Finished
    }

    /// Marks every thread blocked on the mutex `key` runnable again.
    pub(crate) fn unlock_wake(&self, key: usize) {
        let mut st = self.locked();
        for t in st.threads.iter_mut() {
            if *t == ThreadState::BlockedMutex(key) {
                *t = ThreadState::Runnable;
            }
        }
        self.cv.notify_all();
    }

    /// Blocks until every model thread has finished (or the schedule was
    /// abandoned after a panic).
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.locked();
        while !st.panicked && !st.threads.iter().all(|t| *t == ThreadState::Finished) {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The decision trace recorded so far this iteration.
    pub(crate) fn trace(&self) -> Vec<Choice> {
        self.locked().trace.clone()
    }
}

/// Marks its thread finished on drop — including on unwind, so a panicking
/// model thread still hands the schedule back instead of hanging the
/// model. Joiners are woken; on a normal return the scheduler picks the
/// next thread (a panic instead abandons the whole schedule).
pub(crate) struct FinishGuard {
    ctrl: Arc<Controller>,
    id: usize,
}

impl FinishGuard {
    pub(crate) fn new(ctrl: Arc<Controller>, id: usize) -> Self {
        Self { ctrl, id }
    }
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        let unwinding = std::thread::panicking();
        let id = self.id;
        let mut st = self.ctrl.locked();
        st.threads[id] = ThreadState::Finished;
        if unwinding {
            st.panicked = true;
        }
        for t in st.threads.iter_mut() {
            if *t == ThreadState::BlockedJoin(id) {
                *t = ThreadState::Runnable;
            }
        }
        if !st.panicked {
            self.ctrl.pick_next(&mut st);
        }
        self.ctrl.cv.notify_all();
    }
}

thread_local! {
    /// The controller and thread id of the current model thread, if any.
    static CURRENT: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's model context (`None` outside a model, and during
/// thread-local teardown once `CURRENT` itself has been destroyed).
pub(crate) fn current() -> Option<(Arc<Controller>, usize)> {
    CURRENT.try_with(|c| c.borrow().clone()).ok().flatten()
}

/// Installs (or clears) the calling thread's model context.
pub(crate) fn set_current(ctx: Option<(Arc<Controller>, usize)>) {
    let _ = CURRENT.try_with(|c| *c.borrow_mut() = ctx);
}

/// The schedule point used by the modeled primitives: a no-op outside a
/// model, otherwise yields to the scheduler while staying runnable.
pub(crate) fn yield_point() {
    if let Some((ctrl, me)) = current() {
        ctrl.reschedule(me, ThreadState::Runnable);
    }
}

/// Computes the next iteration's decision script: the deepest decision
/// with an untried alternative is bumped and everything after it dropped.
/// `None` once the whole schedule tree has been explored.
pub(crate) fn next_script(trace: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..trace.len()).rev() {
        if trace[i].chosen + 1 < trace[i].n_choices {
            let mut script: Vec<usize> = trace[..i].iter().map(|c| c.chosen).collect();
            script.push(trace[i].chosen + 1);
            return Some(script);
        }
    }
    None
}

/// Renders a trace as the sequence of scheduled thread ids.
pub(crate) fn format_trace(trace: &[Choice]) -> String {
    let ids: Vec<String> = trace.iter().map(|c| c.thread.to_string()).collect();
    format!("[{}]", ids.join(", "))
}
