//! Model-aware thread spawn/join: real OS threads whose scheduling is
//! serialized by the model controller. Outside a model both functions
//! defer to `std::thread` unchanged.

use crate::sched::{self, ThreadState};
use std::sync::Arc;

/// Handle to a thread spawned with [`spawn`]; join it before the model
/// closure returns so every schedule ends in a quiescent state.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    model: Option<(Arc<sched::Controller>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result (`Err` holds
    /// the panic payload, as with `std`). Inside a model this is a
    /// schedule point: the joining thread is suspended until the target
    /// thread has been scheduled to completion.
    pub fn join(self) -> std::thread::Result<T> {
        if let Some((ctrl, id)) = &self.model {
            if let Some((current, me)) = sched::current() {
                if Arc::ptr_eq(ctrl, &current) {
                    while !ctrl.is_finished(*id) {
                        ctrl.reschedule(me, ThreadState::BlockedJoin(*id));
                    }
                }
            }
        }
        self.inner.join()
    }
}

/// Spawns `f` on a new thread. When called from inside a model the thread
/// is registered with the schedule controller and only runs when
/// scheduled; the spawn itself is a schedule point (the child may be
/// scheduled before the spawner continues).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((ctrl, me)) = sched::current() else {
        return JoinHandle {
            inner: std::thread::spawn(f),
            model: None,
        };
    };
    let id = ctrl.register_thread();
    let ctrl_child = Arc::clone(&ctrl);
    let inner = std::thread::spawn(move || {
        sched::set_current(Some((Arc::clone(&ctrl_child), id)));
        ctrl_child.wait_until_active(id);
        let guard = sched::FinishGuard::new(Arc::clone(&ctrl_child), id);
        let out = f();
        drop(guard);
        sched::set_current(None);
        out
    });
    ctrl.reschedule(me, ThreadState::Runnable);
    JoinHandle {
        inner,
        model: Some((ctrl, id)),
    }
}
