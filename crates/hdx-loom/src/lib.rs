//! # hdx-loom
//!
//! A dependency-free exhaustive-interleaving model checker for the
//! workspace's concurrency kernels, in the spirit of the `loom` crate
//! (which the offline build cannot depend on).
//!
//! [`model`] runs a closure under **every distinguishable thread
//! interleaving**: threads spawned with [`thread::spawn`] execute one at a
//! time, and each operation on a modeled primitive ([`sync::atomic`],
//! [`sync::Mutex`]) is a *schedule point* where the controller picks which
//! runnable thread goes next. The decision sequence of each run is
//! recorded and the schedule tree is explored depth-first until every
//! branch has been tried, so an assertion inside the closure is checked
//! against all interleavings, not just the ones a timing-dependent test
//! happens to hit.
//!
//! ```
//! use hdx_loom::sync::atomic::{AtomicU64, Ordering};
//! use hdx_loom::sync::Arc;
//!
//! hdx_loom::model(|| {
//!     let x = Arc::new(AtomicU64::new(0));
//!     let x2 = Arc::clone(&x);
//!     let h = hdx_loom::thread::spawn(move || x2.fetch_add(1, Ordering::Relaxed));
//!     x.fetch_add(1, Ordering::Relaxed);
//!     h.join().expect("worker panicked");
//!     // fetch_add is atomic, so no interleaving loses an increment.
//!     assert_eq!(x.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! ## What is and is not modeled
//!
//! * Scheduling is explored at modeled operations only; stretches of code
//!   between schedule points run atomically. Code under test must route
//!   its shared-state operations through [`sync`] (the workspace crates do
//!   this with a `pub(crate) mod sync` facade switched on `--cfg
//!   hdx_loom`).
//! * The memory model is **sequential consistency**: every modeled atomic
//!   runs as `SeqCst` regardless of the `Ordering` argument, so weak-memory
//!   reorderings are *not* explored (ThreadSanitizer and Miri cover that
//!   axis in `cargo xtask sanitize`). What *is* explored exhaustively is
//!   the interleaving of the operations themselves.
//! * Schedules where no thread can run panic with a deadlock report; a
//!   panic on any schedule aborts the model and replays the failing
//!   decision sequence in the error output.
//!
//! Model closures should join every thread they spawn and must be
//! idempotent: the closure runs once per schedule (use fresh state inside
//! the closure, or reset process-global state at its start). The number of
//! schedules is capped (default [`DEFAULT_MAX_ITER`], override with the
//! `HDX_LOOM_MAX_ITER` environment variable) so a model whose state space
//! explodes fails loudly instead of hanging CI.

mod sched;
/// Modeled concurrency primitives: schedule-point twins of `std::sync`.
pub mod sync;
/// Model-aware thread spawn/join.
pub mod thread;

use std::sync::Arc;

/// Default cap on the number of schedules one [`model`] call may explore;
/// override with the `HDX_LOOM_MAX_ITER` environment variable.
pub const DEFAULT_MAX_ITER: u64 = 50_000;

/// Runs `f` under every distinguishable interleaving of its modeled
/// operations (see the [crate docs](self) for the exploration strategy and
/// its limits).
///
/// # Panics
///
/// Propagates the first panic `f` raises on any schedule (printing the
/// failing decision sequence first), panics on a deadlocked schedule, and
/// panics when the schedule count exceeds the iteration cap.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let cap = std::env::var("HDX_LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_MAX_ITER);
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut script: Vec<usize> = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= cap,
            "hdx-loom: exceeded the cap of {cap} schedules — \
             shrink the model or raise HDX_LOOM_MAX_ITER"
        );
        let (trace, panicked) = run_iteration(&f, script.clone());
        if let Some(payload) = panicked {
            eprintln!(
                "hdx-loom: schedule {} failed (after {} passing schedule(s)); \
                 replay decisions: {script:?}",
                sched::format_trace(&trace),
                iterations - 1,
            );
            std::panic::resume_unwind(payload);
        }
        match sched::next_script(&trace) {
            Some(next) => script = next,
            None => break,
        }
    }
    eprintln!("hdx-loom: model complete — {iterations} schedule(s) explored");
}

/// Runs one schedule: replays `script` as the decision prefix, then takes
/// the first branch at every new decision point. Returns the recorded
/// decision trace and the root closure's panic payload, if any.
fn run_iteration(
    f: &Arc<dyn Fn() + Send + Sync>,
    script: Vec<usize>,
) -> (Vec<sched::Choice>, Option<Box<dyn std::any::Any + Send>>) {
    let ctrl = Arc::new(sched::Controller::new(script));
    let ctrl_root = Arc::clone(&ctrl);
    let body = Arc::clone(f);
    let root = std::thread::Builder::new()
        .name("hdx-loom-root".to_string())
        .spawn(move || {
            sched::set_current(Some((Arc::clone(&ctrl_root), 0)));
            let guard = sched::FinishGuard::new(Arc::clone(&ctrl_root), 0);
            body();
            drop(guard);
            sched::set_current(None);
        })
        .expect("hdx-loom: cannot spawn the model root thread");
    let outcome = root.join();
    ctrl.wait_all_finished();
    (ctrl.trace(), outcome.err())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Mutex, PoisonError};
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;

    /// Runs `f` under the model, collecting every distinct value it
    /// reports across all explored schedules.
    fn outcomes<F>(f: F) -> Vec<u64>
    where
        F: Fn() -> u64 + Send + Sync + 'static,
    {
        let seen: Arc<StdMutex<BTreeSet<u64>>> = Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = Arc::clone(&seen);
        model(move || {
            let value = f();
            sink.lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .insert(value);
        });
        let values: Vec<u64> = seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .copied()
            .collect();
        values
    }

    #[test]
    fn explores_both_orders_of_a_racing_store() {
        let observed = outcomes(|| {
            let x = Arc::new(AtomicU64::new(0));
            let x2 = Arc::clone(&x);
            let h = thread::spawn(move || x2.store(1, Ordering::Relaxed));
            let seen = x.load(Ordering::Relaxed);
            h.join().expect("storer panicked");
            seen
        });
        assert_eq!(observed, [0, 1], "both orders must be explored");
    }

    #[test]
    fn finds_the_lost_update_of_an_unfused_increment() {
        let finals = outcomes(|| {
            let x = Arc::new(AtomicU64::new(0));
            let unfused = |x: Arc<AtomicU64>| {
                move || {
                    let v = x.load(Ordering::Relaxed);
                    x.store(v + 1, Ordering::Relaxed);
                }
            };
            let a = thread::spawn(unfused(Arc::clone(&x)));
            let b = thread::spawn(unfused(Arc::clone(&x)));
            a.join().expect("a panicked");
            b.join().expect("b panicked");
            x.load(Ordering::Relaxed)
        });
        assert_eq!(
            finals,
            [1, 2],
            "exploration must find the lost-update schedule (1) and the clean one (2)"
        );
    }

    #[test]
    fn mutex_protected_increments_are_never_lost() {
        let finals = outcomes(|| {
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    thread::spawn(move || {
                        let mut g = m.lock().unwrap_or_else(PoisonError::into_inner);
                        *g += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("incrementer panicked");
            }
            let g = m.lock().unwrap_or_else(PoisonError::into_inner);
            *g
        });
        assert_eq!(finals, [2]);
    }

    #[test]
    fn reports_abba_deadlock() {
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let h = thread::spawn(move || {
                    let _gb = b2.lock().unwrap_or_else(PoisonError::into_inner);
                    let _ga = a2.lock().unwrap_or_else(PoisonError::into_inner);
                });
                {
                    let _ga = a.lock().unwrap_or_else(PoisonError::into_inner);
                    let _gb = b.lock().unwrap_or_else(PoisonError::into_inner);
                }
                h.join().expect("locker panicked");
            });
        });
        assert!(result.is_err(), "some schedule must deadlock and panic");
    }

    #[test]
    fn assertion_failures_propagate_with_their_payload() {
        let result = std::panic::catch_unwind(|| {
            model(|| {
                let x = Arc::new(AtomicU64::new(0));
                let x2 = Arc::clone(&x);
                let h = thread::spawn(move || x2.store(7, Ordering::Relaxed));
                // Fails on the schedule where the store lands first.
                assert_eq!(x.load(Ordering::Relaxed), 0, "saw the racing store");
                h.join().expect("storer panicked");
            });
        });
        let payload = result.expect_err("the racing schedule must fail");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("saw the racing store"), "got: {msg}");
    }

    #[test]
    fn primitives_pass_through_outside_a_model() {
        // No model() wrapper: every op must behave like plain std.
        let x = AtomicU64::new(1);
        assert_eq!(x.fetch_add(2, Ordering::SeqCst), 1);
        assert_eq!(x.load(Ordering::SeqCst), 3);
        let m = Mutex::new(5u32);
        *m.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        assert_eq!(*m.lock().unwrap_or_else(PoisonError::into_inner), 6);
        let h = thread::spawn(|| 42u64);
        assert_eq!(h.join().expect("thread panicked"), 42);
    }
}
