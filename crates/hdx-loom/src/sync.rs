//! Modeled twins of the `std::sync` primitives the workspace's concurrent
//! code uses: identical APIs, but every operation is a schedule point when
//! the calling thread runs inside [`model`](crate::model). Outside a model
//! every type behaves exactly like its `std` original, so code built with
//! `--cfg hdx_loom` still works when executed normally.

use crate::sched::{self, ThreadState};
use std::ops::{Deref, DerefMut};
use std::sync::TryLockError;

pub use std::sync::Arc;
pub use std::sync::{LockResult, PoisonError};

/// Modeled atomics: `std::sync::atomic` twins whose every operation is a
/// schedule point. All operations run sequentially consistent regardless
/// of the `Ordering` argument (see the crate docs for why).
pub mod atomic {
    use crate::sched;
    use std::sync::atomic as std_atomic;
    use std::sync::atomic::Ordering::SeqCst;

    pub use std::sync::atomic::Ordering;

    macro_rules! modeled_int_atomic {
        ($(#[$meta:meta])* $name:ident, $ty:ty) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            /// Every operation is a schedule point inside a model.
            pub struct $name {
                inner: std_atomic::$name,
            }

            impl $name {
                /// A new atomic holding `value`.
                pub const fn new(value: $ty) -> Self {
                    Self { inner: std_atomic::$name::new(value) }
                }

                /// Loads the value (schedule point).
                pub fn load(&self, _order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.load(SeqCst)
                }

                /// Stores `value` (schedule point).
                pub fn store(&self, value: $ty, _order: Ordering) {
                    sched::yield_point();
                    self.inner.store(value, SeqCst);
                }

                /// Adds `value`, returning the previous value (schedule point).
                pub fn fetch_add(&self, value: $ty, _order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.fetch_add(value, SeqCst)
                }

                /// Subtracts `value`, returning the previous value (schedule
                /// point).
                pub fn fetch_sub(&self, value: $ty, _order: Ordering) -> $ty {
                    sched::yield_point();
                    self.inner.fetch_sub(value, SeqCst)
                }

                /// Stores `new` if the value equals `current` (schedule point);
                /// `Ok` with the previous value on success, `Err` with it on
                /// failure.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    sched::yield_point();
                    self.inner.compare_exchange(current, new, SeqCst, SeqCst)
                }
            }
        };
    }

    modeled_int_atomic!(
        /// Modeled `AtomicU64`.
        AtomicU64,
        u64
    );
    modeled_int_atomic!(
        /// Modeled `AtomicU8`.
        AtomicU8,
        u8
    );
    modeled_int_atomic!(
        /// Modeled `AtomicUsize`.
        AtomicUsize,
        usize
    );

    /// Modeled `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        inner: std_atomic::AtomicBool,
    }

    impl AtomicBool {
        /// A new atomic holding `value`.
        pub const fn new(value: bool) -> Self {
            Self {
                inner: std_atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value (schedule point).
        pub fn load(&self, _order: Ordering) -> bool {
            sched::yield_point();
            self.inner.load(SeqCst)
        }

        /// Stores `value` (schedule point).
        pub fn store(&self, value: bool, _order: Ordering) {
            sched::yield_point();
            self.inner.store(value, SeqCst);
        }

        /// Stores `value` and returns the previous value (schedule point).
        pub fn swap(&self, value: bool, _order: Ordering) -> bool {
            sched::yield_point();
            self.inner.swap(value, SeqCst)
        }
    }
}

/// A modeled mutex: `std::sync::Mutex` plus schedule points on lock and
/// unlock. A thread that would block is suspended in the scheduler until
/// the modeled owner unlocks, so lock contention is explored exactly,
/// including deadlocks (reported with the failing schedule).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new modeled mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock (schedule point), suspending this model thread
    /// while another model thread holds it. Outside a model this is a
    /// plain blocking `std` lock. Poisoning mirrors `std`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let key = self as *const Self as usize;
        loop {
            let Some((ctrl, me)) = sched::current() else {
                return match self.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        inner: Some(g),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        inner: Some(poisoned.into_inner()),
                        model: None,
                    })),
                };
            };
            ctrl.reschedule(me, ThreadState::Runnable);
            match self.inner.try_lock() {
                Ok(g) => {
                    return Ok(MutexGuard {
                        inner: Some(g),
                        model: Some((ctrl, key)),
                    })
                }
                Err(TryLockError::Poisoned(poisoned)) => {
                    return Err(PoisonError::new(MutexGuard {
                        inner: Some(poisoned.into_inner()),
                        model: Some((ctrl, key)),
                    }))
                }
                Err(TryLockError::WouldBlock) => {
                    ctrl.reschedule(me, ThreadState::BlockedMutex(key));
                }
            }
        }
    }
}

/// RAII guard for [`Mutex`]: dropping it unlocks (a schedule point) and
/// wakes every model thread blocked on the same mutex.
pub struct MutexGuard<'a, T> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(Arc<crate::sched::Controller>, usize)>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("hdx-loom: mutex guard used after release")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("hdx-loom: mutex guard used after release")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        if let Some((ctrl, key)) = self.model.take() {
            ctrl.unlock_wake(key);
            // Skip the unlock schedule point while unwinding: the panic
            // protocol (FinishGuard) abandons the schedule instead, and a
            // second panic here would abort the process.
            if !std::thread::panicking() {
                if let Some((cur, me)) = sched::current() {
                    if Arc::ptr_eq(&cur, &ctrl) {
                        ctrl.reschedule(me, ThreadState::Runnable);
                    }
                }
            }
        }
    }
}
