//! SliceLine: score-based slice finding with upper-bound pruning.
//!
//! Sagadeeva & Boehm score a slice `S` by
//!
//! ```text
//! sc(S) = α · (ē_S / ē − 1)  −  (1 − α) · (n / |S| − 1)
//! ```
//!
//! balancing elevated average error against slice size, subject to a minimum
//! slice size `σ`. Enumeration is level-wise; candidates whose *upper bound*
//! on any subset's score cannot beat the current top-k are pruned. The
//! original uses a linear-algebra formulation on one-hot matrices; this
//! implementation expresses the same enumeration over bitset covers.

use hdx_data::DataFrame;
use hdx_items::{item_cover, Bitset, ItemCatalog, ItemId, Itemset};

/// SliceLine parameters.
#[derive(Debug, Clone, Copy)]
pub struct SliceLineConfig {
    /// Error-vs-size weight `α ∈ (0, 1]` (default 0.95, as in the original).
    pub alpha: f64,
    /// Number of top slices to return (default 4).
    pub k: usize,
    /// Minimum slice size `σ` as an absolute row count (default 32).
    pub min_size: usize,
    /// Maximum slice length (default 3, as in the original's experiments).
    pub max_len: usize,
}

impl Default for SliceLineConfig {
    fn default() -> Self {
        Self {
            alpha: 0.95,
            k: 4,
            min_size: 32,
            max_len: 3,
        }
    }
}

/// A scored slice.
#[derive(Debug, Clone)]
pub struct SliceLineResult {
    /// The slice's itemset.
    pub itemset: Itemset,
    /// Display label.
    pub label: String,
    /// Number of rows.
    pub size: usize,
    /// Average error (loss) within the slice.
    pub mean_error: f64,
    /// The SliceLine score.
    pub score: f64,
}

/// The SliceLine baseline.
#[derive(Debug, Clone, Default)]
pub struct SliceLine {
    config: SliceLineConfig,
}

impl SliceLine {
    /// Creates a SliceLine instance.
    pub fn new(config: SliceLineConfig) -> Self {
        Self { config }
    }

    fn score(&self, err_sum: f64, size: usize, n: usize, avg_err: f64) -> f64 {
        let mean = err_sum / size as f64;
        self.config.alpha * (mean / avg_err - 1.0)
            - (1.0 - self.config.alpha) * (n as f64 / size as f64 - 1.0)
    }

    /// Sound upper bound on the score of any sub-slice `S' ⊆ S` with
    /// `|S'| ≥ σ`, assuming per-row losses in `[0, max_loss]`.
    ///
    /// For a sub-slice of size `m`, the error sum is at most
    /// `min(err_sum, m·max_loss)`; the bound maximises the score over the
    /// candidate sizes where the piecewise-monotone expression can peak.
    fn upper_bound(&self, err_sum: f64, size: usize, n: usize, avg_err: f64, max_loss: f64) -> f64 {
        let sigma = self.config.min_size;
        if size < sigma {
            return f64::NEG_INFINITY;
        }
        let mut best = f64::NEG_INFINITY;
        // Candidate sizes: σ, |S|, and the breakpoint where err_sum = m·max_loss.
        let mut candidates = vec![sigma, size];
        if max_loss > 0.0 {
            let breakpoint = (err_sum / max_loss).floor() as usize;
            if breakpoint >= sigma && breakpoint <= size {
                candidates.push(breakpoint);
                if breakpoint < size {
                    candidates.push(breakpoint + 1);
                }
            }
        }
        for m in candidates {
            let e = err_sum.min(m as f64 * max_loss);
            let s = self.score(e, m, n, avg_err);
            if s > best {
                best = s;
            }
        }
        best
    }

    /// Finds the top-`k` slices by score over the given items.
    ///
    /// `losses` is the per-row loss (e.g. 0/1 classification error).
    ///
    /// # Panics
    /// Panics when `losses.len() != df.n_rows()`, losses are negative, or
    /// the average loss is zero (a perfect model has no slices to find).
    pub fn find(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        items: &[ItemId],
        losses: &[f64],
    ) -> Vec<SliceLineResult> {
        assert_eq!(losses.len(), df.n_rows(), "losses not parallel to rows");
        assert!(
            losses.iter().all(|&l| l >= 0.0),
            "losses must be non-negative"
        );
        let n = df.n_rows();
        let avg_err = losses.iter().sum::<f64>() / n.max(1) as f64;
        assert!(avg_err > 0.0, "average loss must be positive");
        let max_loss = losses.iter().fold(0.0_f64, |a, &b| a.max(b));

        let covers: Vec<(ItemId, Bitset)> = items
            .iter()
            .map(|&i| (i, item_cover(df, catalog, i)))
            .collect();
        let err_of = |cover: &Bitset| -> f64 { cover.iter_ones().map(|r| losses[r]).sum() };

        let mut top: Vec<SliceLineResult> = Vec::new();
        let mut kth_score = f64::NEG_INFINITY;

        let push = |result: SliceLineResult, top: &mut Vec<SliceLineResult>| {
            top.push(result);
            top.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
            top.truncate(self.config.k);
        };

        // Level 1.
        let mut frontier: Vec<(Itemset, Bitset, f64)> = Vec::new();
        for (item, cover) in &covers {
            let size = cover.count();
            if size < self.config.min_size {
                continue;
            }
            let err_sum = err_of(cover);
            let itemset = Itemset::singleton(*item);
            let score = self.score(err_sum, size, n, avg_err);
            push(
                SliceLineResult {
                    label: itemset.display(catalog).to_string(),
                    itemset: itemset.clone(),
                    size,
                    mean_error: err_sum / size as f64,
                    score,
                },
                &mut top,
            );
            frontier.push((itemset, cover.clone(), err_sum));
        }
        if top.len() == self.config.k {
            kth_score = top.last().map_or(f64::NEG_INFINITY, |r| r.score);
        }

        // Deeper levels with upper-bound pruning.
        for _level in 2..=self.config.max_len {
            let mut next: Vec<(Itemset, Bitset, f64)> = Vec::new();
            let mut seen: std::collections::HashSet<Itemset> = std::collections::HashSet::new();
            for (itemset, cover, err_sum) in &frontier {
                // Prune: no sub-slice of this cover can beat the top-k.
                if self.upper_bound(*err_sum, cover.count(), n, avg_err, max_loss) <= kth_score {
                    continue;
                }
                let last = itemset.items().last().copied();
                for (item, icover) in &covers {
                    if let Some(l) = last {
                        if *item <= l {
                            continue;
                        }
                    }
                    let Some(extended) = itemset.with_item(*item, catalog) else {
                        continue;
                    };
                    if !seen.insert(extended.clone()) {
                        continue;
                    }
                    let joint = cover.and(icover);
                    let size = joint.count();
                    if size < self.config.min_size {
                        continue;
                    }
                    let joint_err = err_of(&joint);
                    let score = self.score(joint_err, size, n, avg_err);
                    if score > kth_score || top.len() < self.config.k {
                        push(
                            SliceLineResult {
                                label: extended.display(catalog).to_string(),
                                itemset: extended.clone(),
                                size,
                                mean_error: joint_err / size as f64,
                                score,
                            },
                            &mut top,
                        );
                        if top.len() == self.config.k {
                            kth_score = top.last().map_or(f64::NEG_INFINITY, |r| r.score);
                        }
                    }
                    next.push((extended, joint, joint_err));
                }
            }
            frontier = next;
        }
        top
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::{Interval, Item};

    /// Errors concentrated in x>50 & g=b.
    fn setup() -> (DataFrame, ItemCatalog, Vec<ItemId>, Vec<f64>) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let g = b.add_categorical("g").unwrap();
        let mut losses = Vec::new();
        for i in 0..400 {
            let xv = (i % 100) as f64;
            let gv = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(vec![Value::Num(xv), Value::Cat(gv.into())])
                .unwrap();
            losses.push(if xv > 50.0 && gv == "b" {
                f64::from(u8::from(i % 8 != 0))
            } else {
                f64::from(u8::from(i % 20 == 0))
            });
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let items = vec![
            catalog.intern(Item::range(x, Interval::at_most(50.0), "x")),
            catalog.intern(Item::range(x, Interval::greater_than(50.0), "x")),
            catalog.intern(Item::cat_eq(g, 0, "g", "a")),
            catalog.intern(Item::cat_eq(g, 1, "g", "b")),
        ];
        (df, catalog, items, losses)
    }

    #[test]
    fn top_slice_is_the_error_cluster() {
        let (df, catalog, items, losses) = setup();
        let sl = SliceLine::default();
        let results = sl.find(&df, &catalog, &items, &losses);
        assert!(!results.is_empty());
        let best = &results[0];
        assert!(best.label.contains("x>50") && best.label.contains("g=b"));
        assert!(best.mean_error > 0.8);
        // Ranked descending.
        for w in results.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn min_size_excludes_small_slices() {
        let (df, catalog, items, losses) = setup();
        let sl = SliceLine::new(SliceLineConfig {
            min_size: 150,
            ..SliceLineConfig::default()
        });
        let results = sl.find(&df, &catalog, &items, &losses);
        assert!(results.iter().all(|r| r.size >= 150));
    }

    #[test]
    fn alpha_zero_point_five_penalises_small_slices() {
        let (df, catalog, items, losses) = setup();
        let high_alpha = SliceLine::new(SliceLineConfig {
            alpha: 0.99,
            ..SliceLineConfig::default()
        })
        .find(&df, &catalog, &items, &losses);
        let low_alpha = SliceLine::new(SliceLineConfig {
            alpha: 0.5,
            ..SliceLineConfig::default()
        })
        .find(&df, &catalog, &items, &losses);
        // With a small α the size penalty dominates, favouring bigger slices.
        assert!(low_alpha[0].size >= high_alpha[0].size);
    }

    #[test]
    fn pruning_matches_exhaustive_search() {
        let (df, catalog, items, losses) = setup();
        let pruned = SliceLine::new(SliceLineConfig {
            k: 2,
            ..SliceLineConfig::default()
        })
        .find(&df, &catalog, &items, &losses);
        // k large enough that nothing is pruned = exhaustive reference.
        let exhaustive = SliceLine::new(SliceLineConfig {
            k: 1000,
            ..SliceLineConfig::default()
        })
        .find(&df, &catalog, &items, &losses);
        assert_eq!(pruned[0].label, exhaustive[0].label);
        assert_eq!(pruned[1].label, exhaustive[1].label);
        assert!((pruned[0].score - exhaustive[0].score).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "average loss")]
    fn perfect_model_rejected() {
        let (df, catalog, items, _) = setup();
        let losses = vec![0.0; df.n_rows()];
        let _ = SliceLine::default().find(&df, &catalog, &items, &losses);
    }

    #[test]
    fn upper_bound_is_sound() {
        // For every explored slice, its parent's bound must dominate its
        // score (checked implicitly by pruning_matches_exhaustive_search,
        // verified explicitly here on the score function).
        let sl = SliceLine::default();
        let n = 1000;
        let avg = 0.1;
        // Parent: 200 rows, error sum 40. Any child of size 100 with error
        // sum ≤ 40 must score below the bound.
        let ub = sl.upper_bound(40.0, 200, n, avg, 1.0);
        for (child_err, child_size) in [(40.0, 100), (30.0, 150), (40.0, 40), (10.0, 32)] {
            let s = sl.score(child_err, child_size, n, avg);
            assert!(s <= ub + 1e-9, "score {s} exceeds bound {ub}");
        }
    }
}
