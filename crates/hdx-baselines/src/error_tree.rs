//! Combined-tree subgroup identification: one decision tree over *all*
//! attributes, partitioning the dataset into non-overlapping subgroups.
//!
//! This is the tree-based alternative the paper's §V-A Discussion argues
//! against (and the approach of Slice Finder's tree mode and the Error
//! Analysis dashboard, refs. 4 and 18): it captures attribute interactions,
//! but (i) the granularity of individual attributes cannot be controlled,
//! (ii) it yields no per-attribute item hierarchy, and (iii) its subgroups
//! are disjoint, so a point belongs to exactly one subgroup — unlike the
//! overlapping lattice H-DivExplorer explores. Implemented here as a
//! faithful comparison baseline.

use hdx_data::{AttrId, AttributeKind, DataFrame, NULL_CODE};
use hdx_stats::{Outcome, StatAccum};

/// Combined-tree parameters.
#[derive(Debug, Clone, Copy)]
pub struct CombinedTreeConfig {
    /// Minimum subgroup (node) support, as a fraction of the dataset.
    pub min_support: f64,
    /// Optional depth cap.
    pub max_depth: Option<usize>,
}

impl Default for CombinedTreeConfig {
    fn default() -> Self {
        Self {
            min_support: 0.05,
            max_depth: None,
        }
    }
}

/// One leaf of the combined tree: a non-overlapping subgroup.
#[derive(Debug, Clone)]
pub struct CombinedLeaf {
    /// Conjunction of the split conditions on the path, e.g.
    /// `age<=27 & sex=F`.
    pub label: String,
    /// Fraction of dataset rows in the leaf.
    pub support: f64,
    /// The statistic over the leaf.
    pub statistic: Option<f64>,
    /// Divergence from the whole dataset.
    pub divergence: Option<f64>,
    /// Welch t-value of the divergence.
    pub t_value: f64,
}

/// The combined-tree explorer.
#[derive(Debug, Clone, Default)]
pub struct CombinedTreeExplorer {
    config: CombinedTreeConfig,
}

enum Split {
    Num { attr: AttrId, threshold: f64 },
    Cat { attr: AttrId, code: u32 },
}

impl CombinedTreeExplorer {
    /// Creates an explorer.
    pub fn new(config: CombinedTreeConfig) -> Self {
        Self { config }
    }

    /// Grows the tree and returns its leaves sorted by descending
    /// divergence.
    ///
    /// # Panics
    /// Panics when `outcomes.len() != df.n_rows()` or the support is not in
    /// `(0, 1)`.
    pub fn explore(&self, df: &DataFrame, outcomes: &[Outcome]) -> Vec<CombinedLeaf> {
        assert_eq!(outcomes.len(), df.n_rows(), "outcomes not parallel");
        assert!(
            self.config.min_support > 0.0 && self.config.min_support < 1.0,
            "min_support must be in (0, 1)"
        );
        let n = df.n_rows();
        let min_count = (self.config.min_support * n as f64).ceil().max(1.0) as usize;
        let global = StatAccum::from_outcomes(outcomes);

        let mut leaves = Vec::new();
        let rows: Vec<usize> = (0..n).collect();
        self.grow(
            df,
            outcomes,
            &global,
            rows,
            String::new(),
            0,
            min_count,
            &mut leaves,
        );
        leaves.sort_by(|a, b| {
            b.divergence
                .unwrap_or(f64::NEG_INFINITY)
                .partial_cmp(&a.divergence.unwrap_or(f64::NEG_INFINITY))
                .expect("finite")
        });
        leaves
    }

    #[allow(clippy::too_many_arguments)] // recursion context, not an API
    fn grow(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        global: &StatAccum,
        rows: Vec<usize>,
        path: String,
        depth: usize,
        min_count: usize,
        leaves: &mut Vec<CombinedLeaf>,
    ) {
        let at_depth_cap = self.config.max_depth.is_some_and(|m| depth >= m);
        let split = if at_depth_cap {
            None
        } else {
            self.best_split(df, outcomes, &rows, min_count)
        };
        let Some((split, cond_left, cond_right)) = split else {
            // Leaf.
            let mut acc = StatAccum::new();
            for &r in &rows {
                acc.push(outcomes[r]);
            }
            leaves.push(CombinedLeaf {
                label: if path.is_empty() {
                    "(all)".into()
                } else {
                    path
                },
                support: rows.len() as f64 / df.n_rows() as f64,
                statistic: acc.statistic(),
                divergence: acc.divergence(global),
                t_value: acc.t_value(global),
            });
            return;
        };
        let (left, right): (Vec<usize>, Vec<usize>) = match split {
            Split::Num { attr, threshold } => {
                let vals = df.continuous(attr).values();
                rows.into_iter().partition(|&r| vals[r] <= threshold)
            }
            Split::Cat { attr, code } => {
                let codes = df.categorical(attr).codes();
                rows.into_iter().partition(|&r| codes[r] == code)
            }
        };
        let join = |path: &str, cond: &str| {
            if path.is_empty() {
                cond.to_string()
            } else {
                format!("{path} & {cond}")
            }
        };
        self.grow(
            df,
            outcomes,
            global,
            left,
            join(&path, &cond_left),
            depth + 1,
            min_count,
            leaves,
        );
        self.grow(
            df,
            outcomes,
            global,
            right,
            join(&path, &cond_right),
            depth + 1,
            min_count,
            leaves,
        );
    }

    /// Best divergence-gain split across all attributes, or `None` when no
    /// admissible split has positive gain.
    fn best_split(
        &self,
        df: &DataFrame,
        outcomes: &[Outcome],
        rows: &[usize],
        min_count: usize,
    ) -> Option<(Split, String, String)> {
        if rows.len() < 2 * min_count {
            return None;
        }
        let n_dataset = df.n_rows() as f64;
        let mut node_acc = StatAccum::new();
        for &r in rows {
            node_acc.push(outcomes[r]);
        }
        let parent_mean = node_acc.statistic()?;

        let gain_of = |a: &StatAccum, b: &StatAccum| -> f64 {
            let term = |acc: &StatAccum| {
                acc.statistic().map_or(0.0, |m| {
                    acc.count() as f64 / n_dataset * (m - parent_mean).abs()
                })
            };
            term(a) + term(b)
        };

        let mut best: Option<(f64, Split, String, String)> = None;
        for (attr, attribute) in df.schema().iter() {
            match attribute.kind() {
                AttributeKind::Continuous => {
                    let vals = df.continuous(attr).values();
                    let mut sorted: Vec<usize> = rows
                        .iter()
                        .copied()
                        .filter(|&r| !vals[r].is_nan())
                        .collect();
                    if sorted.len() < 2 * min_count {
                        continue;
                    }
                    sorted.sort_by(|&a, &b| vals[a].partial_cmp(&vals[b]).expect("no NaNs"));
                    // Prefix sums over the sorted order make each boundary's
                    // gain O(1).
                    let m = sorted.len();
                    let mut pref_valid = vec![0.0; m + 1];
                    let mut pref_sum = vec![0.0; m + 1];
                    for (i, &r) in sorted.iter().enumerate() {
                        let (dv, ds) = outcomes[r].value().map_or((0.0, 0.0), |v| (1.0, v));
                        pref_valid[i + 1] = pref_valid[i] + dv;
                        pref_sum[i + 1] = pref_sum[i] + ds;
                    }
                    let side_gain = |count: usize, valid: f64, sum: f64| {
                        if valid > 0.0 {
                            count as f64 / n_dataset * (sum / valid - parent_mean).abs()
                        } else {
                            0.0
                        }
                    };
                    for k in min_count..=(m - min_count) {
                        if vals[sorted[k - 1]] >= vals[sorted[k]] {
                            continue;
                        }
                        let g = side_gain(k, pref_valid[k], pref_sum[k])
                            + side_gain(
                                m - k,
                                pref_valid[m] - pref_valid[k],
                                pref_sum[m] - pref_sum[k],
                            );
                        if best.as_ref().is_none_or(|(bg, _, _, _)| g > *bg) && g > 1e-12 {
                            let t = vals[sorted[k - 1]];
                            let name = attribute.name();
                            // Match the trimmed bound formatting of items.
                            let shown = hdx_items::Interval::at_most(t).to_string();
                            best = Some((
                                g,
                                Split::Num { attr, threshold: t },
                                format!("{name}{shown}"),
                                format!("{name}>{}", shown.trim_start_matches("<=")),
                            ));
                        }
                    }
                }
                AttributeKind::Categorical => {
                    let col = df.categorical(attr);
                    let codes = col.codes();
                    let mut per_level: Vec<StatAccum> = vec![StatAccum::new(); col.n_levels()];
                    for &r in rows {
                        if codes[r] != NULL_CODE {
                            per_level[codes[r] as usize].push(outcomes[r]);
                        }
                    }
                    for (code, acc) in per_level.iter().enumerate() {
                        let in_count = acc.count() as usize;
                        if in_count < min_count || rows.len() - in_count < min_count {
                            continue;
                        }
                        // StatAccum has no subtraction; rebuild the
                        // complement (levels are few, rows scanned once per
                        // level).
                        let mut rest = StatAccum::new();
                        for &r in rows {
                            if codes[r] != code as u32 {
                                rest.push(outcomes[r]);
                            }
                        }
                        let g = gain_of(acc, &rest);
                        if best.as_ref().is_none_or(|(bg, _, _, _)| g > *bg) && g > 1e-12 {
                            let name = attribute.name();
                            let level = col.level(code as u32);
                            best = Some((
                                g,
                                Split::Cat {
                                    attr,
                                    code: code as u32,
                                },
                                format!("{name}={level}"),
                                format!("{name}!={level}"),
                            ));
                        }
                    }
                }
            }
        }
        best.map(|(_, split, l, r)| (split, l, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};

    fn setup() -> (DataFrame, Vec<Outcome>) {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        b.add_categorical("g").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..400 {
            let x = (i % 100) as f64;
            let g = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(vec![Value::Num(x), Value::Cat(g.into())])
                .unwrap();
            outcomes.push(Outcome::Bool(x > 60.0 && g == "b" && i % 8 != 0));
        }
        (b.finish(), outcomes)
    }

    #[test]
    fn leaves_partition_the_dataset() {
        let (df, outcomes) = setup();
        let leaves = CombinedTreeExplorer::new(CombinedTreeConfig {
            min_support: 0.1,
            max_depth: None,
        })
        .explore(&df, &outcomes);
        let total: f64 = leaves.iter().map(|l| l.support).sum();
        assert!((total - 1.0).abs() < 1e-9, "supports sum to 1, got {total}");
        assert!(leaves.len() >= 2);
        for leaf in &leaves {
            assert!(leaf.support >= 0.1 - 1e-12);
        }
    }

    #[test]
    fn finds_the_error_cluster() {
        let (df, outcomes) = setup();
        let leaves = CombinedTreeExplorer::new(CombinedTreeConfig {
            min_support: 0.05,
            max_depth: None,
        })
        .explore(&df, &outcomes);
        let top = &leaves[0];
        assert!(top.label.contains("x>"), "top = {}", top.label);
        assert!(top.label.contains("g=b") || top.label.contains("g!=a"));
        assert!(top.divergence.unwrap() > 0.3);
    }

    #[test]
    fn depth_cap_respected() {
        let (df, outcomes) = setup();
        let leaves = CombinedTreeExplorer::new(CombinedTreeConfig {
            min_support: 0.01,
            max_depth: Some(1),
        })
        .explore(&df, &outcomes);
        assert!(leaves.len() <= 2);
        // Depth 1 → at most one condition in the label.
        for leaf in &leaves {
            assert!(!leaf.label.contains('&'), "{}", leaf.label);
        }
    }

    #[test]
    fn pure_noise_yields_single_leaf() {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        let mut outcomes = Vec::new();
        for i in 0..100 {
            b.push_row(vec![Value::Num((i % 10) as f64)]).unwrap();
            outcomes.push(Outcome::Bool(i % 2 == 0)); // uncorrelated with x
        }
        let df = b.finish();
        let leaves = CombinedTreeExplorer::default().explore(&df, &outcomes);
        // Gains are ~0 → (almost) no splits; the root leaf covers all rows.
        assert!(
            leaves.iter().map(|l| l.support).sum::<f64>() > 0.999,
            "partition preserved"
        );
    }
}
