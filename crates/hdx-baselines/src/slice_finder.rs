//! Slice Finder: lattice search for slices with large loss effect size.
//!
//! Following Chung et al., a slice `S` is *problematic* when the effect size
//! of its loss distribution against its counterpart `¬S` exceeds a threshold
//! `T` (default 0.4). The lattice search scans slices level by level (larger
//! slices first within a level) and **stops as soon as `k` problematic
//! slices are found** — there is no minimum-support constraint, which is the
//! failure mode §VI-G / Fig. 6 demonstrates.

use hdx_data::DataFrame;
use hdx_items::{item_cover, Bitset, ItemCatalog, ItemId, Itemset};
use hdx_stats::MeanVar;

/// Slice Finder parameters.
#[derive(Debug, Clone, Copy)]
pub struct SliceFinderConfig {
    /// Effect-size threshold `T` (default 0.4, per the original paper).
    pub effect_size_threshold: f64,
    /// Number of problematic slices to return (default 1).
    pub k: usize,
    /// Maximum slice length (lattice depth; default 3).
    pub max_len: usize,
    /// Minimum Welch t-value for a slice to count as significant
    /// (default 2.0 ≈ 95% two-sided).
    pub min_t: f64,
}

impl Default for SliceFinderConfig {
    fn default() -> Self {
        Self {
            effect_size_threshold: 0.4,
            k: 1,
            max_len: 3,
            min_t: 2.0,
        }
    }
}

/// A slice returned by Slice Finder.
#[derive(Debug, Clone)]
pub struct SliceFinderResult {
    /// The slice's itemset.
    pub itemset: Itemset,
    /// Display label.
    pub label: String,
    /// Number of rows in the slice.
    pub size: usize,
    /// Effect size of the slice's loss vs its counterpart.
    pub effect_size: f64,
    /// Mean loss within the slice.
    pub mean_loss: f64,
}

/// The Slice Finder baseline.
#[derive(Debug, Clone, Default)]
pub struct SliceFinder {
    config: SliceFinderConfig,
}

/// Effect size (Cohen's d with unpooled average variance):
/// `(μ_S − μ_¬S) / sqrt((σ_S² + σ_¬S²) / 2)`.
fn effect_size(slice: &MeanVar, rest: &MeanVar) -> f64 {
    let denom = ((slice.variance() + rest.variance()) / 2.0).sqrt();
    if denom <= 0.0 {
        return 0.0;
    }
    (slice.mean() - rest.mean()) / denom
}

impl SliceFinder {
    /// Creates a Slice Finder with the given configuration.
    pub fn new(config: SliceFinderConfig) -> Self {
        Self { config }
    }

    /// Searches for the top-`k` problematic slices over the given items.
    ///
    /// `losses` is the per-row loss (e.g. 0/1 classification error).
    ///
    /// # Panics
    /// Panics when `losses.len() != df.n_rows()`.
    pub fn find(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        items: &[ItemId],
        losses: &[f64],
    ) -> Vec<SliceFinderResult> {
        assert_eq!(losses.len(), df.n_rows(), "losses not parallel to rows");
        let n = df.n_rows();
        let covers: Vec<(ItemId, Bitset)> = items
            .iter()
            .map(|&i| (i, item_cover(df, catalog, i)))
            .collect();

        let mut results: Vec<SliceFinderResult> = Vec::new();
        // Level-wise frontier: (itemset, cover).
        let mut frontier: Vec<(Itemset, Bitset)> = vec![(Itemset::empty(), Bitset::all_set(n))];
        for _level in 1..=self.config.max_len {
            // Expand.
            let mut next: Vec<(Itemset, Bitset)> = Vec::new();
            let mut seen: std::collections::HashSet<Itemset> = std::collections::HashSet::new();
            for (itemset, cover) in &frontier {
                let last = itemset.items().last().copied();
                for (item, icover) in &covers {
                    if let Some(l) = last {
                        if *item <= l {
                            continue; // canonical order
                        }
                    }
                    let Some(extended) = itemset.with_item(*item, catalog) else {
                        continue;
                    };
                    if !seen.insert(extended.clone()) {
                        continue;
                    }
                    let joint = cover.and(icover);
                    if joint.count() == 0 {
                        continue;
                    }
                    next.push((extended, joint));
                }
            }
            // Rank this level by slice size descending (Slice Finder scans
            // larger slices first) and collect problematic ones.
            next.sort_by_key(|e| std::cmp::Reverse(e.1.count()));
            for (itemset, cover) in &next {
                let mut slice = MeanVar::new();
                let mut rest = MeanVar::new();
                let mut in_slice = vec![false; n];
                for row in cover.iter_ones() {
                    in_slice[row] = true;
                }
                for (row, &loss) in losses.iter().enumerate() {
                    if in_slice[row] {
                        slice.push(loss);
                    } else {
                        rest.push(loss);
                    }
                }
                let eff = effect_size(&slice, &rest);
                let t = hdx_stats::welch_t(
                    slice.mean(),
                    slice.variance(),
                    slice.count(),
                    rest.mean(),
                    rest.variance(),
                    rest.count(),
                );
                if eff >= self.config.effect_size_threshold && t.abs() >= self.config.min_t {
                    results.push(SliceFinderResult {
                        label: itemset.display(catalog).to_string(),
                        itemset: itemset.clone(),
                        size: cover.count(),
                        effect_size: eff,
                        mean_loss: slice.mean(),
                    });
                    if results.len() >= self.config.k {
                        return results;
                    }
                }
            }
            // Recurse only on the slices not yet problematic.
            frontier = next;
        }
        results
    }

    /// Like [`find`](Self::find), but keeps searching all levels and returns
    /// the single slice with the highest effect size (used to report "the
    /// itemset with the highest effect size", Fig. 6).
    pub fn find_best(
        &self,
        df: &DataFrame,
        catalog: &ItemCatalog,
        items: &[ItemId],
        losses: &[f64],
    ) -> Option<SliceFinderResult> {
        let exhaustive = SliceFinder::new(SliceFinderConfig {
            k: usize::MAX,
            ..self.config
        });
        exhaustive
            .find(df, catalog, items, losses)
            .into_iter()
            .max_by(|a, b| a.effect_size.partial_cmp(&b.effect_size).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};
    use hdx_items::{Interval, Item};

    /// x in 0..100 (two bins), g in {a,b}; loss high for x>50 & g=b, and a
    /// *tiny* extreme slice x>90 & g=a with loss 1.
    fn setup() -> (DataFrame, ItemCatalog, Vec<ItemId>, Vec<f64>) {
        let mut b = DataFrameBuilder::new();
        let x = b.add_continuous("x").unwrap();
        let g = b.add_categorical("g").unwrap();
        let mut losses = Vec::new();
        for i in 0..400 {
            let xv = (i % 100) as f64;
            let gv = if i % 2 == 0 { "a" } else { "b" };
            b.push_row(vec![Value::Num(xv), Value::Cat(gv.into())])
                .unwrap();
            let loss = if xv > 50.0 && gv == "b" {
                0.9
            } else if i % 16 == 0 {
                0.5
            } else {
                0.05
            };
            losses.push(loss);
        }
        let df = b.finish();
        let mut catalog = ItemCatalog::new();
        let items = vec![
            catalog.intern(Item::range(x, Interval::at_most(50.0), "x")),
            catalog.intern(Item::range(x, Interval::greater_than(50.0), "x")),
            catalog.intern(Item::cat_eq(g, 0, "g", "a")),
            catalog.intern(Item::cat_eq(g, 1, "g", "b")),
        ];
        (df, catalog, items, losses)
    }

    #[test]
    fn default_search_stops_at_first_problematic_slice() {
        let (df, catalog, items, losses) = setup();
        let sf = SliceFinder::default();
        let results = sf.find(&df, &catalog, &items, &losses);
        assert_eq!(results.len(), 1);
        // A single-literal slice already clears T = 0.4, so the search stops
        // at level 1 (the paper's Fig. 6a behaviour).
        assert_eq!(results[0].itemset.len(), 1);
        assert!(results[0].effect_size >= 0.4);
    }

    #[test]
    fn higher_threshold_forces_deeper_slices() {
        let (df, catalog, items, losses) = setup();
        let sf = SliceFinder::new(SliceFinderConfig {
            effect_size_threshold: 2.0,
            ..SliceFinderConfig::default()
        });
        let results = sf.find(&df, &catalog, &items, &losses);
        assert_eq!(results.len(), 1);
        assert!(results[0].itemset.len() >= 2, "needs an intersection");
        assert!(results[0].label.contains("x>50") && results[0].label.contains("g=b"));
    }

    #[test]
    fn no_support_control() {
        // Slice Finder happily returns very small slices.
        let (df, catalog, items, losses) = setup();
        let sf = SliceFinder::new(SliceFinderConfig {
            effect_size_threshold: 1.3,
            ..SliceFinderConfig::default()
        });
        let best = sf.find_best(&df, &catalog, &items, &losses).unwrap();
        // The best slice is allowed to be small relative to the data.
        assert!(best.size < df.n_rows() / 2);
    }

    #[test]
    fn k_limits_result_count() {
        let (df, catalog, items, losses) = setup();
        let sf = SliceFinder::new(SliceFinderConfig {
            k: 3,
            effect_size_threshold: 0.1,
            ..SliceFinderConfig::default()
        });
        let results = sf.find(&df, &catalog, &items, &losses);
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn uniform_loss_finds_nothing() {
        let (df, catalog, items, _) = setup();
        let losses = vec![0.5; df.n_rows()];
        let results = SliceFinder::default().find(&df, &catalog, &items, &losses);
        assert!(results.is_empty());
    }
}
