//! # hdx-baselines
//!
//! The two prior-work subgroup identification systems the paper compares
//! against in §VI-G, implemented from their original descriptions:
//!
//! * [`SliceFinder`] (Chung et al., ICDE'19 / TKDE'20): lattice search over
//!   slices ranked by **effect size** of the loss against the slice's
//!   counterpart, stopping as soon as `k` slices exceed the effect-size
//!   threshold — notably *without* any support control, the limitation
//!   Fig. 6b illustrates;
//! * [`SliceLine`] (Sagadeeva & Boehm, SIGMOD'21): level-wise enumeration of
//!   slices scored by
//!   `sc(S) = α·(ē_S/ē − 1) − (1−α)·(n/|S| − 1)`,
//!   with a minimum-size constraint and sound upper-bound pruning.
//!
//! Both operate on *leaf* items (a fixed, non-hierarchical discretization),
//! exactly like base DivExplorer — which is the point of the comparison.
//!
//! A third baseline, [`CombinedTreeExplorer`], implements the combined
//! decision-tree alternative the paper's §V-A Discussion contrasts with:
//! one tree over all attributes jointly, yielding disjoint subgroups.

mod error_tree;
mod slice_finder;
mod sliceline;

pub use error_tree::{CombinedLeaf, CombinedTreeConfig, CombinedTreeExplorer};
pub use slice_finder::{SliceFinder, SliceFinderConfig, SliceFinderResult};
pub use sliceline::{SliceLine, SliceLineConfig, SliceLineResult};
