//! The synthetic-peak dataset, exactly as specified in §VI-A.
//!
//! 10,000 points uniform in `[-5, 5]³` (attributes `a`, `b`, `c`); class
//! labels `T`/`F` with equal probability; predictions equal the label except
//! flipped with probability given by the peak-normalized density of a
//! multivariate normal with mean `[0, 1, 2]` and identity covariance. The
//! error rate is therefore a smooth "peak" centred at `[0, 1, 2]` — an
//! anomaly best captured by constraining all three coordinates at once.

use hdx_data::{DataFrameBuilder, Value};
use hdx_stats::MultivariateNormal;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

use crate::dataset::Dataset;

/// The anomaly centre of synthetic-peak.
pub const PEAK_MEAN: [f64; 3] = [0.0, 1.0, 2.0];

/// The flip (error) probability at a point: the normalized `N(PEAK_MEAN, I)`
/// density, which is `1` at the centre.
pub fn peak_error_probability(point: &[f64; 3]) -> f64 {
    let mvn = MultivariateNormal::isotropic(PEAK_MEAN.to_vec(), 1.0);
    mvn.normalized_pdf(point)
}

/// Generates synthetic-peak with `n` rows (paper: 10,000).
pub fn synthetic_peak(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mvn = MultivariateNormal::isotropic(PEAK_MEAN.to_vec(), 1.0);
    let mut b = DataFrameBuilder::new();
    for name in ["a", "b", "c"] {
        b.add_continuous(name).unwrap();
    }
    let mut y_true = Vec::with_capacity(n);
    let mut y_pred = Vec::with_capacity(n);
    for _ in 0..n {
        let p = [
            rng.random_range(-5.0..5.0),
            rng.random_range(-5.0..5.0),
            rng.random_range(-5.0..5.0),
        ];
        b.push_row(vec![Value::Num(p[0]), Value::Num(p[1]), Value::Num(p[2])])
            .unwrap();
        let label = rng.random::<bool>();
        let flip = rng.random::<f64>() < mvn.normalized_pdf(&p);
        y_true.push(label);
        y_pred.push(label != flip);
    }
    Dataset::classification("synthetic-peak", b.finish(), y_true, y_pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_core::OutcomeFn;
    use hdx_stats::StatAccum;

    #[test]
    fn shape_matches_table_ii() {
        let d = synthetic_peak(10_000, 0);
        assert_eq!(d.frame.n_rows(), 10_000);
        assert_eq!(d.frame.n_attributes(), 3);
        assert!(d.frame.schema().continuous_ids().len() == 3);
    }

    #[test]
    fn coordinates_in_range() {
        let d = synthetic_peak(2_000, 1);
        for name in ["a", "b", "c"] {
            let col = d.frame.continuous(d.frame.schema().id(name).unwrap());
            let (lo, hi) = col.min_max().unwrap();
            assert!(lo >= -5.0 && hi <= 5.0);
        }
    }

    #[test]
    fn error_rate_peaks_at_centre() {
        assert!((peak_error_probability(&PEAK_MEAN) - 1.0).abs() < 1e-12);
        assert!(peak_error_probability(&[4.0, -4.0, -4.0]) < 1e-6);

        let d = synthetic_peak(20_000, 2);
        let outcomes = d.classification_outcomes(OutcomeFn::ErrorRate);
        // Empirical error near the peak vs far away.
        let a = d
            .frame
            .continuous(d.frame.schema().id("a").unwrap())
            .values();
        let b = d
            .frame
            .continuous(d.frame.schema().id("b").unwrap())
            .values();
        let c = d
            .frame
            .continuous(d.frame.schema().id("c").unwrap())
            .values();
        let mut near = StatAccum::new();
        let mut far = StatAccum::new();
        for i in 0..d.n_rows() {
            let dist2 = (a[i] - PEAK_MEAN[0]).powi(2)
                + (b[i] - PEAK_MEAN[1]).powi(2)
                + (c[i] - PEAK_MEAN[2]).powi(2);
            if dist2 < 1.0 {
                near.push(outcomes[i]);
            } else if dist2 > 16.0 {
                far.push(outcomes[i]);
            }
        }
        assert!(
            near.statistic().unwrap() > 0.4,
            "near = {:?}",
            near.statistic()
        );
        assert!(
            far.statistic().unwrap() < 0.05,
            "far = {:?}",
            far.statistic()
        );
    }

    #[test]
    fn labels_are_balanced_and_global_error_small() {
        let d = synthetic_peak(20_000, 3);
        let pos = d.y_true.as_ref().unwrap().iter().filter(|&&t| t).count();
        let frac = pos as f64 / 20_000.0;
        assert!((frac - 0.5).abs() < 0.02);
        // Global error rate: expected ≈ mean flip prob over the cube ≈ 1.5%.
        let outcomes = d.classification_outcomes(OutcomeFn::ErrorRate);
        let overall = StatAccum::from_outcomes(&outcomes).statistic().unwrap();
        assert!(overall > 0.005 && overall < 0.04, "overall = {overall}");
    }

    #[test]
    fn deterministic_per_seed() {
        let d1 = synthetic_peak(500, 9);
        let d2 = synthetic_peak(500, 9);
        assert_eq!(d1.frame, d2.frame);
        assert_eq!(d1.y_pred, d2.y_pred);
        let d3 = synthetic_peak(500, 10);
        assert_ne!(d1.y_pred, d3.y_pred);
    }
}
