//! Synthetic stand-in for the compas dataset (ProPublica, [14] in the
//! paper).
//!
//! The real data cannot ship with the repo, so this generator reproduces the
//! structure the paper's analyses depend on:
//!
//! * schema per Table II — continuous `age`, `#prior`, `stay`; categorical
//!   `sex`, `charge`, `race`;
//! * an overall false-positive rate near `0.09` (Table I's "entire
//!   dataset" row);
//! * FPR rising steeply with the number of priors (Table I: `#prior>3` →
//!   ≈0.22, `#prior>8` → ≈0.38) and for younger defendants (`age<27` →
//!   ≈0.15), with the intersectional subgroups more divergent still;
//! * younger defendants having fewer priors on average (the paper's §VI-B
//!   discussion of why the hierarchy adapts granularity per age group).

use hdx_data::{DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};

use crate::dataset::Dataset;

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Exponential sample with the given mean.
fn exp_sample<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    -mean * (1.0 - rng.random::<f64>()).ln()
}

/// Generates a compas-like dataset with `n` rows (paper: 6,172).
pub fn compas(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DataFrameBuilder::new();
    b.add_continuous("age").unwrap();
    b.add_continuous("#prior").unwrap();
    b.add_continuous("stay").unwrap();
    b.add_categorical("sex").unwrap();
    b.add_categorical("charge").unwrap();
    b.add_categorical("race").unwrap();

    let mut y_true = Vec::with_capacity(n);
    let mut y_pred = Vec::with_capacity(n);
    for _ in 0..n {
        // Age skews young: 18 + Exp(mean 24), capped at 75 (≈31% below 27,
        // matching Table I's sup(age<27) = 0.31).
        let age = (18.0 + exp_sample(&mut rng, 24.0)).min(75.0).round();
        // Priors: a chronic-offender mixture tuned so sup(#prior>3) ≈ 0.29
        // and sup(#prior>8) ≈ 0.11 (Table I), scaled by age headroom so
        // young defendants have fewer priors (§VI-B).
        let age_factor = ((age - 16.0) / 25.0).clamp(0.4, 1.3);
        let chronic = rng.random::<f64>() < 0.20 * age_factor;
        let priors = if chronic {
            (4.0 + exp_sample(&mut rng, 7.0)).floor().min(38.0)
        } else {
            (exp_sample(&mut rng, 2.6) * age_factor).floor().min(38.0)
        };
        // Jail stay (days): heavy tail, longer with more priors.
        let stay = (exp_sample(&mut rng, 8.0) * (1.0 + 0.12 * priors))
            .round()
            .min(800.0);
        let sex = if rng.random::<f64>() < 0.81 {
            "Male"
        } else {
            "Female"
        };
        let charge = if rng.random::<f64>() < 0.65 { "F" } else { "M" };
        let race = match rng.random_range(0..100) {
            0..51 => "Afr-Am",
            51..85 => "Caucasian",
            85..94 => "Hispanic",
            _ => "Other",
        };

        // True recidivism.
        let p_recid = sigmoid(
            -1.1 + 0.13 * priors - 0.030 * (age - 30.0) + 0.15 * f64::from(u8::from(charge == "F")),
        );
        let recid = rng.random::<f64>() < p_recid;

        // COMPAS-like high-risk prediction: overweights priors, youth, long
        // stays, and (mildly) race — producing the dataset's well-known FPR
        // disparities.
        let score = -4.25 + 0.17 * priors + 0.95 * priors.sqrt() - 0.075 * (age - 25.0).max(0.0)
            + 0.012 * stay.min(90.0)
            + 1.2 * f64::from(u8::from(age < 27.0))
            + 0.35 * f64::from(u8::from(race == "Afr-Am"))
            + 0.55 * f64::from(u8::from(recid));
        let pred_high_risk = rng.random::<f64>() < sigmoid(score);

        b.push_row(vec![
            Value::Num(age),
            Value::Num(priors),
            Value::Num(stay),
            Value::Cat(sex.into()),
            Value::Cat(charge.into()),
            Value::Cat(race.into()),
        ])
        .unwrap();
        y_true.push(recid);
        y_pred.push(pred_high_risk);
    }
    Dataset::classification("compas", b.finish(), y_true, y_pred)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_core::OutcomeFn;
    use hdx_stats::StatAccum;

    fn fpr_where(d: &Dataset, keep: impl Fn(usize) -> bool) -> f64 {
        let outcomes = d.classification_outcomes(OutcomeFn::Fpr);
        let mut acc = StatAccum::new();
        for (i, &o) in outcomes.iter().enumerate() {
            if keep(i) {
                acc.push(o);
            }
        }
        acc.statistic().unwrap()
    }

    #[test]
    fn schema_matches_table_ii() {
        let d = compas(6_172, 0);
        assert_eq!(d.frame.n_rows(), 6_172);
        assert_eq!(d.frame.n_attributes(), 6);
        assert_eq!(d.frame.schema().continuous_ids().len(), 3);
        assert_eq!(d.frame.schema().categorical_ids().len(), 3);
    }

    #[test]
    fn fpr_structure_matches_table_i() {
        let d = compas(20_000, 1);
        let priors = d
            .frame
            .continuous(d.frame.schema().id("#prior").unwrap())
            .values()
            .to_vec();
        let age = d
            .frame
            .continuous(d.frame.schema().id("age").unwrap())
            .values()
            .to_vec();

        let overall = fpr_where(&d, |_| true);
        assert!(
            (0.05..0.16).contains(&overall),
            "overall FPR = {overall} (paper: 0.088)"
        );

        let fpr_gt3 = fpr_where(&d, |i| priors[i] > 3.0);
        let fpr_gt8 = fpr_where(&d, |i| priors[i] > 8.0);
        let fpr_young = fpr_where(&d, |i| age[i] < 27.0);
        assert!(
            fpr_gt3 > overall + 0.08,
            "#prior>3 FPR {fpr_gt3} vs overall {overall} (paper gap: +0.13)"
        );
        assert!(
            fpr_gt8 > fpr_gt3 + 0.08,
            "#prior>8 FPR {fpr_gt8} vs #prior>3 {fpr_gt3} (paper gap: +0.16)"
        );
        assert!(
            fpr_young > overall + 0.03,
            "age<27 FPR {fpr_young} vs overall {overall} (paper gap: +0.067)"
        );
        // Intersection is the most divergent (Table I last row).
        let fpr_both = fpr_where(&d, |i| age[i] < 27.0 && priors[i] > 3.0);
        assert!(fpr_both > fpr_gt3, "intersection {fpr_both} > {fpr_gt3}");
    }

    #[test]
    fn young_defendants_have_fewer_priors() {
        let d = compas(10_000, 2);
        let priors = d
            .frame
            .continuous(d.frame.schema().id("#prior").unwrap())
            .values();
        let age = d
            .frame
            .continuous(d.frame.schema().id("age").unwrap())
            .values();
        let mean = |keep: &dyn Fn(usize) -> bool| {
            let v: Vec<f64> = (0..d.n_rows())
                .filter(|&i| keep(i))
                .map(|i| priors[i])
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let young = mean(&|i| age[i] < 25.0);
        let old = mean(&|i| age[i] >= 35.0);
        assert!(young < old, "young {young} < old {old}");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(compas(300, 5).frame, compas(300, 5).frame);
        assert_ne!(compas(300, 5).y_pred, compas(300, 6).y_pred);
    }
}
