//! Synthetic stand-in for the folktables income task (ACS 2018, California).
//!
//! Reproduces the structure Table IV relies on: income (the real-valued
//! outcome `f`) rising with age/experience, weekly hours, education, and
//! managerial/professional occupations, with a persistent male/female gap —
//! so the top divergent subgroups combine `AGEP≥35`, `OCCP=MGR`, `SEX=Male`,
//! `WKHP≥44`, `SCHL=Prof beyond bachelor`. Ships the two categorical
//! taxonomies the paper uses: occupation super-categories (OCCP) and a
//! geographical place-of-birth hierarchy (POBP).

use hdx_data::{DataFrameBuilder, Value};
use hdx_items::Taxonomy;
use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};

use crate::dataset::Dataset;

/// Occupation: (level, super-category, income multiplier).
const OCCUPATIONS: &[(&str, &str, f64)] = &[
    ("MGR-Financial Managers", "MGR", 2.05),
    ("MGR-Sales Managers", "MGR", 1.95),
    ("MGR-Operations Managers", "MGR", 1.85),
    ("MED-Dentists", "MED", 2.3),
    ("MED-Registered Nurses", "MED", 1.35),
    ("ENG-Software Developers", "ENG", 1.9),
    ("ENG-Civil Engineers", "ENG", 1.55),
    ("EDU-Teachers", "EDU", 0.95),
    ("EDU-Teaching Assistants", "EDU", 0.55),
    ("SAL-Retail Salespersons", "SAL", 0.62),
    ("SAL-Cashiers", "SAL", 0.5),
    ("ADM-Secretaries", "ADM", 0.72),
    ("SVC-Cooks", "SVC", 0.52),
    ("SVC-Janitors", "SVC", 0.55),
    ("TRN-Drivers", "TRN", 0.68),
];

/// Place of birth: (level, region). The taxonomy is geographical.
const BIRTHPLACES: &[(&str, &str)] = &[
    ("US-California", "US"),
    ("US-Texas", "US"),
    ("US-NewYork", "US"),
    ("MX-Mexico", "LatinAmerica"),
    ("SV-ElSalvador", "LatinAmerica"),
    ("CN-China", "Asia"),
    ("PH-Philippines", "Asia"),
    ("VN-Vietnam", "Asia"),
    ("IN-India", "Asia"),
    ("DE-Germany", "Europe"),
    ("UK-England", "Europe"),
];

const SCHOOLING: &[(&str, f64)] = &[
    ("No diploma", 0.55),
    ("High school", 0.75),
    ("Some college", 0.9),
    ("Bachelor", 1.25),
    ("Master", 1.5),
    ("Prof beyond bachelor", 2.3),
    ("Doctorate", 1.9),
];

fn pick_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.random::<f64>() * total;
    for (i, w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Generates a folktables-like income dataset with `n` rows
/// (paper: 195,556). Ten attributes: 2 continuous (AGEP, WKHP) and 8
/// categorical, matching Table II.
pub fn folktables(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DataFrameBuilder::new();
    b.add_continuous("AGEP").unwrap();
    b.add_continuous("WKHP").unwrap();
    b.add_categorical("OCCP").unwrap();
    b.add_categorical("POBP").unwrap();
    b.add_categorical("SCHL").unwrap();
    b.add_categorical("SEX").unwrap();
    b.add_categorical("MAR").unwrap();
    b.add_categorical("RAC").unwrap();
    b.add_categorical("COW").unwrap();
    b.add_categorical("RELP").unwrap();

    let occ_weights = [
        5.0, 4.0, 5.0, 1.0, 6.0, 7.0, 3.0, 8.0, 4.0, 9.0, 8.0, 6.0, 6.0, 6.0, 7.0,
    ];
    let school_weights = [8.0, 26.0, 22.0, 24.0, 12.0, 3.0, 3.0];
    let pobp_weights = [38.0, 4.0, 4.0, 18.0, 4.0, 8.0, 7.0, 5.0, 5.0, 3.0, 4.0];

    let mut incomes = Vec::with_capacity(n);
    for _ in 0..n {
        let age = rng.random_range(17.0_f64..95.0).round();
        let occ = pick_weighted(&mut rng, &occ_weights);
        let (occ_name, _, occ_mult) = OCCUPATIONS[occ];
        let schl = pick_weighted(&mut rng, &school_weights);
        let (schl_name, schl_mult) = SCHOOLING[schl];
        let pobp = pick_weighted(&mut rng, &pobp_weights);
        let sex = if rng.random::<f64>() < 0.52 {
            "Male"
        } else {
            "Female"
        };
        // Hours: managers/professionals work longer.
        let base_hours = 38.0 + 8.0 * f64::from(u8::from(occ_mult > 1.5));
        let hours = (base_hours + rng.random_range(-18.0_f64..14.0))
            .clamp(1.0, 99.0)
            .round();
        let mar = ["Married", "Never", "Divorced", "Widowed"]
            [pick_weighted(&mut rng, &[48.0, 34.0, 12.0, 6.0])];
        let rac =
            ["White", "Asian", "Black", "Other"][pick_weighted(&mut rng, &[60.0, 16.0, 7.0, 17.0])];
        let cow = ["Private", "Government", "Self-employed"]
            [pick_weighted(&mut rng, &[72.0, 16.0, 12.0])];
        let relp = ["Householder", "Spouse", "Child", "Other"]
            [pick_weighted(&mut rng, &[40.0, 22.0, 22.0, 16.0])];

        // Income model: base × occupation × education × experience × hours,
        // with a male premium and lognormal noise.
        let experience = ((age - 18.0).max(0.0) / 30.0).min(1.3);
        let exp_mult = 0.55 + 0.75 * experience;
        let sex_mult = if sex == "Male" { 1.22 } else { 1.0 };
        let hours_mult = (hours / 40.0).powf(1.15);
        let noise = (rng.random::<f64>() - 0.5).mul_add(0.9, 1.0).max(0.2);
        let income =
            (42_000.0 * occ_mult * schl_mult * exp_mult * sex_mult * hours_mult * noise).round();

        b.push_row(vec![
            Value::Num(age),
            Value::Num(hours),
            Value::Cat(occ_name.into()),
            Value::Cat(BIRTHPLACES[pobp].0.into()),
            Value::Cat(schl_name.into()),
            Value::Cat(sex.into()),
            Value::Cat(mar.into()),
            Value::Cat(rac.into()),
            Value::Cat(cow.into()),
            Value::Cat(relp.into()),
        ])
        .unwrap();
        incomes.push(income);
    }

    let mut occ_tax = Taxonomy::new();
    for &(level, group, _) in OCCUPATIONS {
        occ_tax.set_group(level, group);
    }
    let mut pobp_tax = Taxonomy::new();
    for &(level, region) in BIRTHPLACES {
        pobp_tax.set_group(level, region);
    }

    Dataset::regression("folktables", b.finish(), incomes)
        .with_taxonomy("OCCP", occ_tax)
        .with_taxonomy("POBP", pobp_tax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_stats::StatAccum;

    fn mean_income_where(d: &Dataset, keep: impl Fn(usize) -> bool) -> f64 {
        let target = d.target.as_ref().unwrap();
        let mut acc = StatAccum::new();
        for (i, &v) in target.iter().enumerate() {
            if keep(i) {
                acc.push(hdx_stats::Outcome::Real(v));
            }
        }
        acc.statistic().unwrap()
    }

    #[test]
    fn schema_matches_table_ii() {
        let d = folktables(1_000, 0);
        assert_eq!(d.frame.n_attributes(), 10);
        assert_eq!(d.frame.schema().continuous_ids().len(), 2);
        assert_eq!(d.frame.schema().categorical_ids().len(), 8);
        assert_eq!(d.taxonomies.len(), 2);
    }

    #[test]
    fn income_structure_matches_table_iv() {
        let d = folktables(40_000, 1);
        let overall = mean_income_where(&d, |_| true);
        let age = d
            .frame
            .continuous(d.frame.schema().id("AGEP").unwrap())
            .values()
            .to_vec();
        let occ_col = d.frame.categorical(d.frame.schema().id("OCCP").unwrap());
        let sex_col = d.frame.categorical(d.frame.schema().id("SEX").unwrap());
        let occ: Vec<bool> = (0..d.n_rows())
            .map(|i| occ_col.get(i).unwrap().starts_with("MGR"))
            .collect();
        let male: Vec<bool> = (0..d.n_rows())
            .map(|i| sex_col.get(i) == Some("Male"))
            .collect();
        // The Table IV subgroup: AGEP≥35 & OCCP=MGR & SEX=Male.
        let subgroup = mean_income_where(&d, |i| age[i] >= 35.0 && occ[i] && male[i]);
        assert!(
            subgroup > overall * 1.8,
            "subgroup mean {subgroup} vs overall {overall} (paper: +90.2k over mean)"
        );
        // Male > female on average.
        let m = mean_income_where(&d, |i| male[i]);
        let f = mean_income_where(&d, |i| !male[i]);
        assert!(m > f * 1.1);
    }

    #[test]
    fn taxonomy_paths_cover_levels() {
        let d = folktables(500, 2);
        let (name, occ_tax) = &d.taxonomies[0];
        assert_eq!(name, "OCCP");
        assert_eq!(occ_tax.path("MGR-Sales Managers"), &["MGR".to_string()]);
        let (name2, pobp_tax) = &d.taxonomies[1];
        assert_eq!(name2, "POBP");
        assert_eq!(pobp_tax.path("CN-China"), &["Asia".to_string()]);
    }

    #[test]
    fn hours_and_age_in_range() {
        let d = folktables(5_000, 3);
        let (alo, ahi) = d
            .frame
            .continuous(d.frame.schema().id("AGEP").unwrap())
            .min_max()
            .unwrap();
        assert!(alo >= 17.0 && ahi <= 95.0);
        let (wlo, whi) = d
            .frame
            .continuous(d.frame.schema().id("WKHP").unwrap())
            .min_max()
            .unwrap();
        assert!(wlo >= 1.0 && whi <= 99.0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(folktables(200, 7).target, folktables(200, 7).target);
        assert_ne!(folktables(200, 7).target, folktables(200, 8).target);
    }
}
