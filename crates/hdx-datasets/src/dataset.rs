//! The labelled-dataset container shared by all generators.

use hdx_core::{real_outcomes, OutcomeFn};
use hdx_data::DataFrame;
use hdx_items::Taxonomy;
use hdx_stats::Outcome;

/// A dataset ready for subgroup discovery: the attribute frame plus the
/// label / prediction / target columns (kept **out** of the frame so they
/// are never mined as attributes).
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name (`compas`, `folktables`, …).
    pub name: String,
    /// The mined attributes.
    pub frame: DataFrame,
    /// Ground-truth labels, when classification.
    pub y_true: Option<Vec<bool>>,
    /// Model predictions, when classification.
    pub y_pred: Option<Vec<bool>>,
    /// Real-valued target (e.g. income), when regression-style.
    pub target: Option<Vec<f64>>,
    /// Taxonomies for categorical attributes (attribute name → taxonomy).
    pub taxonomies: Vec<(String, Taxonomy)>,
}

impl Dataset {
    /// Creates a classification dataset.
    pub fn classification(
        name: impl Into<String>,
        frame: DataFrame,
        y_true: Vec<bool>,
        y_pred: Vec<bool>,
    ) -> Self {
        assert_eq!(y_true.len(), frame.n_rows(), "labels not parallel");
        assert_eq!(y_pred.len(), frame.n_rows(), "predictions not parallel");
        Self {
            name: name.into(),
            frame,
            y_true: Some(y_true),
            y_pred: Some(y_pred),
            target: None,
            taxonomies: Vec::new(),
        }
    }

    /// Creates a dataset with a real-valued target.
    pub fn regression(name: impl Into<String>, frame: DataFrame, target: Vec<f64>) -> Self {
        assert_eq!(target.len(), frame.n_rows(), "target not parallel");
        Self {
            name: name.into(),
            frame,
            y_true: None,
            y_pred: None,
            target: Some(target),
            taxonomies: Vec::new(),
        }
    }

    /// Attaches a categorical taxonomy (builder style).
    pub fn with_taxonomy(mut self, attr: impl Into<String>, taxonomy: Taxonomy) -> Self {
        self.taxonomies.push((attr.into(), taxonomy));
        self
    }

    /// Outcomes under a classification outcome function.
    ///
    /// # Panics
    /// Panics when the dataset has no labels/predictions.
    pub fn classification_outcomes(&self, f: OutcomeFn) -> Vec<Outcome> {
        let y_true = self.y_true.as_ref().expect("dataset has no labels");
        let y_pred = self.y_pred.as_ref().expect("dataset has no predictions");
        f.compute(y_true, y_pred)
    }

    /// Outcomes from the real-valued target.
    ///
    /// # Panics
    /// Panics when the dataset has no target.
    pub fn target_outcomes(&self) -> Vec<Outcome> {
        real_outcomes(self.target.as_ref().expect("dataset has no target"))
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.frame.n_rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_data::{DataFrameBuilder, Value};

    fn tiny_frame(n: usize) -> DataFrame {
        let mut b = DataFrameBuilder::new();
        b.add_continuous("x").unwrap();
        for i in 0..n {
            b.push_row(vec![Value::Num(i as f64)]).unwrap();
        }
        b.finish()
    }

    #[test]
    fn classification_outcomes_roundtrip() {
        let d = Dataset::classification(
            "t",
            tiny_frame(3),
            vec![true, false, false],
            vec![true, true, false],
        );
        let o = d.classification_outcomes(OutcomeFn::Fpr);
        assert_eq!(o[0], Outcome::Undefined);
        assert_eq!(o[1], Outcome::Bool(true));
        assert_eq!(o[2], Outcome::Bool(false));
    }

    #[test]
    fn regression_target_outcomes() {
        let d = Dataset::regression("t", tiny_frame(2), vec![10.0, f64::NAN]);
        let o = d.target_outcomes();
        assert_eq!(o[0], Outcome::Real(10.0));
        assert_eq!(o[1], Outcome::Undefined);
    }

    #[test]
    #[should_panic(expected = "no target")]
    fn missing_target_panics() {
        let d = Dataset::classification("t", tiny_frame(1), vec![true], vec![true]);
        let _ = d.target_outcomes();
    }

    #[test]
    #[should_panic(expected = "not parallel")]
    fn mismatched_labels_panic() {
        let _ = Dataset::classification("t", tiny_frame(2), vec![true], vec![true, false]);
    }
}
