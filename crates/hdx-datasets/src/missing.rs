//! Missing-value injection, for robustness testing.
//!
//! Real tabular data has nulls; the synthetic generators do not. This
//! utility knocks out a random fraction of cells so tests can exercise the
//! pipeline's null handling (null cells match no item and join no subgroup).

use hdx_data::{DataFrame, DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Returns a copy of `df` with each cell independently nulled with
/// probability `rate`.
///
/// # Panics
/// Panics when `rate` is outside `[0, 1]`.
pub fn inject_nulls(df: &DataFrame, rate: f64, seed: u64) -> DataFrame {
    assert!((0.0..=1.0).contains(&rate), "rate must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DataFrameBuilder::new();
    for (_, attr) in df.schema().iter() {
        b.add_attribute(attr.clone())
            .expect("names unique in source");
    }
    for row in 0..df.n_rows() {
        let cells: Vec<Value> = df
            .schema()
            .iter()
            .map(|(id, _)| {
                if rng.random::<f64>() < rate {
                    Value::Null
                } else {
                    df.column(id).value(row)
                }
            })
            .collect();
        b.push_row(cells).expect("row kinds preserved");
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic_peak;

    #[test]
    fn injects_roughly_the_requested_fraction() {
        let d = synthetic_peak(2_000, 1);
        let holey = inject_nulls(&d.frame, 0.2, 7);
        assert_eq!(holey.n_rows(), d.frame.n_rows());
        let total_cells = holey.n_rows() * holey.n_attributes();
        let nulls: usize = holey
            .schema()
            .iter()
            .map(|(id, _)| holey.column(id).null_count())
            .sum();
        let frac = nulls as f64 / total_cells as f64;
        assert!((frac - 0.2).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn rate_zero_is_identity_rate_one_all_null() {
        let d = synthetic_peak(200, 2);
        assert_eq!(inject_nulls(&d.frame, 0.0, 1), d.frame);
        let all = inject_nulls(&d.frame, 1.0, 1);
        let nulls: usize = all
            .schema()
            .iter()
            .map(|(id, _)| all.column(id).null_count())
            .sum();
        assert_eq!(nulls, all.n_rows() * all.n_attributes());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = synthetic_peak(300, 3);
        assert_eq!(
            inject_nulls(&d.frame, 0.3, 9),
            inject_nulls(&d.frame, 0.3, 9)
        );
        assert_ne!(
            inject_nulls(&d.frame, 0.3, 9),
            inject_nulls(&d.frame, 0.3, 10)
        );
    }
}
