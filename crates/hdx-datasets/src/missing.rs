//! Missing-value injection, for robustness testing.
//!
//! Real tabular data has nulls; the synthetic generators do not. This
//! utility knocks out a random fraction of cells so tests can exercise the
//! pipeline's null handling (null cells match no item and join no subgroup).

use hdx_data::{DataError, DataFrame, DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Why [`inject_nulls`] could not produce a frame.
#[derive(Debug)]
pub enum InjectError {
    /// The null rate is outside `[0, 1]` (or not a number).
    InvalidRate(f64),
    /// Rebuilding the frame failed.
    Frame(DataError),
}

impl std::fmt::Display for InjectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidRate(rate) => write!(f, "null rate must be in [0, 1], got {rate}"),
            Self::Frame(e) => write!(f, "rebuilding frame with nulls: {e}"),
        }
    }
}

impl std::error::Error for InjectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::InvalidRate(_) => None,
            Self::Frame(e) => Some(e),
        }
    }
}

impl From<DataError> for InjectError {
    fn from(e: DataError) -> Self {
        Self::Frame(e)
    }
}

/// Returns a copy of `df` with each cell independently nulled with
/// probability `rate`.
///
/// # Errors
/// [`InjectError::InvalidRate`] when `rate` is outside `[0, 1]`;
/// [`InjectError::Frame`] when the copy cannot be rebuilt.
pub fn inject_nulls(df: &DataFrame, rate: f64, seed: u64) -> Result<DataFrame, InjectError> {
    if !(0.0..=1.0).contains(&rate) {
        return Err(InjectError::InvalidRate(rate));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DataFrameBuilder::new();
    for (_, attr) in df.schema().iter() {
        b.add_attribute(attr.clone())?;
    }
    let mut injected: u64 = 0;
    for row in 0..df.n_rows() {
        let cells: Vec<Value> = df
            .schema()
            .iter()
            .map(|(id, _)| {
                if rng.random::<f64>() < rate {
                    injected += 1;
                    Value::Null
                } else {
                    df.column(id).value(row)
                }
            })
            .collect();
        b.push_row(cells)?;
    }
    // Injected nulls are deliberate damage; flag them in run telemetry so a
    // dataset that arrives with holes is distinguishable from one we drilled.
    hdx_obs::counter_add!(DatasetsNullsInjected, injected);
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic_peak;

    #[test]
    fn injects_roughly_the_requested_fraction() {
        let d = synthetic_peak(2_000, 1);
        let holey = inject_nulls(&d.frame, 0.2, 7).unwrap();
        assert_eq!(holey.n_rows(), d.frame.n_rows());
        let total_cells = holey.n_rows() * holey.n_attributes();
        let nulls: usize = holey
            .schema()
            .iter()
            .map(|(id, _)| holey.column(id).null_count())
            .sum();
        let frac = nulls as f64 / total_cells as f64;
        assert!((frac - 0.2).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn rate_zero_is_identity_rate_one_all_null() {
        let d = synthetic_peak(200, 2);
        assert_eq!(inject_nulls(&d.frame, 0.0, 1).unwrap(), d.frame);
        let all = inject_nulls(&d.frame, 1.0, 1).unwrap();
        let nulls: usize = all
            .schema()
            .iter()
            .map(|(id, _)| all.column(id).null_count())
            .sum();
        assert_eq!(nulls, all.n_rows() * all.n_attributes());
    }

    #[test]
    fn deterministic_per_seed() {
        let d = synthetic_peak(300, 3);
        assert_eq!(
            inject_nulls(&d.frame, 0.3, 9).unwrap(),
            inject_nulls(&d.frame, 0.3, 9).unwrap()
        );
        assert_ne!(
            inject_nulls(&d.frame, 0.3, 9).unwrap(),
            inject_nulls(&d.frame, 0.3, 10).unwrap()
        );
    }

    #[test]
    fn out_of_range_rate_is_an_error_not_a_panic() {
        let d = synthetic_peak(50, 4);
        for bad in [-0.1, 1.5, f64::NAN] {
            let err = inject_nulls(&d.frame, bad, 1).unwrap_err();
            assert!(matches!(err, InjectError::InvalidRate(_)), "rate {bad}");
            assert!(err.to_string().contains("null rate"));
        }
    }
}
