//! # hdx-datasets
//!
//! Dataset substrate for the experiments of §VI.
//!
//! The paper evaluates on public datasets (compas, folktables, and five UCI
//! datasets) plus one artificial dataset, *synthetic-peak*, that the paper
//! specifies completely. None of the public data ships with this repo, so:
//!
//! * [`synthetic_peak`] implements §VI-A **exactly**: 10,000 uniform points
//!   in `[-5, 5]³`, fair-coin class labels, and predictions flipped with
//!   probability equal to the peak-normalized density of
//!   `N([0, 1, 2], I)` — no substitution needed;
//! * [`compas`] and [`folktables`] are statistically faithful synthetic
//!   stand-ins reproducing the qualitative structure the paper's analyses
//!   rely on (elevated FPR for young/high-prior defendants; income rising
//!   with age, hours, education and managerial occupations, plus OCCP/POBP
//!   taxonomies);
//! * [`adult`], [`bank`], [`german`], [`intentions`], [`wine`] are
//!   schema-matched synthetic classification datasets (row/attribute counts
//!   per Table II) with injected noise-region anomalies, whose predictions
//!   come from an in-repo random forest — mirroring the paper's "random
//!   forest classifier with default parameters".
//!
//! Every generator takes an explicit seed and a row count, so experiments
//! are reproducible and tests can run on scaled-down data.

mod compas;
mod dataset;
mod folktables;
mod missing;
mod peak;
mod uci;

pub use compas::compas;
pub use dataset::Dataset;
pub use folktables::folktables;
pub use missing::{inject_nulls, InjectError};
pub use peak::{peak_error_probability, synthetic_peak, PEAK_MEAN};
pub use uci::{adult, bank, german, intentions, wine};

/// Default row counts per Table II of the paper.
pub mod default_rows {
    /// adult dataset rows.
    pub const ADULT: usize = 45_222;
    /// bank (full) dataset rows.
    pub const BANK: usize = 45_211;
    /// compas dataset rows.
    pub const COMPAS: usize = 6_172;
    /// folktables (ACS 2018 CA) rows.
    pub const FOLKTABLES: usize = 195_556;
    /// german credit rows.
    pub const GERMAN: usize = 1_000;
    /// online shoppers intentions rows.
    pub const INTENTIONS: usize = 12_330;
    /// synthetic-peak rows.
    pub const SYNTHETIC_PEAK: usize = 10_000;
    /// wine quality rows.
    pub const WINE: usize = 9_796;
}

/// Builds every classification dataset of the quantitative experiments
/// (Fig. 2/3b/4) at the given scale factor (`1.0` = paper-size).
///
/// Scaled sizes have a floor of 200 rows so tiny scales stay meaningful.
pub fn classification_suite(scale: f64, seed: u64) -> Vec<Dataset> {
    let n = |full: usize| ((full as f64 * scale) as usize).max(200);
    vec![
        adult(n(default_rows::ADULT), seed),
        bank(n(default_rows::BANK), seed.wrapping_add(1)),
        compas(n(default_rows::COMPAS), seed.wrapping_add(2)),
        german(n(default_rows::GERMAN), seed.wrapping_add(3)),
        intentions(n(default_rows::INTENTIONS), seed.wrapping_add(4)),
        synthetic_peak(n(default_rows::SYNTHETIC_PEAK), seed.wrapping_add(5)),
        wine(n(default_rows::WINE), seed.wrapping_add(6)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_the_seven_classification_datasets() {
        let suite = classification_suite(0.02, 3);
        let names: Vec<&str> = suite.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "adult",
                "bank",
                "compas",
                "german",
                "intentions",
                "synthetic-peak",
                "wine"
            ]
        );
        for d in &suite {
            assert!(d.frame.n_rows() >= 200);
            assert!(d.y_true.is_some() && d.y_pred.is_some());
        }
    }
}
