//! Schema-matched synthetic stand-ins for the five UCI datasets of Table II
//! (adult, bank, german, intentions, wine).
//!
//! Each generator produces the paper's row/attribute counts, a ground-truth
//! label driven by a seeded signal over a few attributes, and an injected
//! **noise region** — a box over two numeric attributes where labels are
//! near-random. A random forest (in-repo, default parameters, as in §VI-B)
//! supplies the predictions; its error concentrates in the noise region,
//! giving every dataset genuinely divergent subgroups at intersectional
//! granularity, which is the property Figs. 2–4 measure.

use hdx_data::{DataFrame, DataFrameBuilder, Value};
use hdx_model::{RandomForest, RandomForestConfig};
use rand::rngs::StdRng;
use rand::{Rng, RngExt as _, SeedableRng};

use crate::dataset::Dataset;

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Distribution of one numeric attribute.
struct NumAttr {
    name: &'static str,
    lo: f64,
    hi: f64,
    /// Skew exponent: 1 = uniform, >1 = right-skewed.
    skew: f64,
}

impl NumAttr {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>().powf(self.skew);
        self.lo + u * (self.hi - self.lo)
    }
}

struct CatAttr {
    name: &'static str,
    levels: &'static [&'static str],
}

struct UciSpec {
    name: &'static str,
    nums: Vec<NumAttr>,
    cats: Vec<CatAttr>,
    /// Intercept tuning the positive rate.
    intercept: f64,
}

fn build(spec: &UciSpec, n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DataFrameBuilder::new();
    for a in &spec.nums {
        b.add_continuous(a.name).unwrap();
    }
    for c in &spec.cats {
        b.add_categorical(c.name).unwrap();
    }

    // Seeded signal: weights over the first three numeric attributes and the
    // first categorical attribute (when present).
    let w: Vec<f64> = (0..3).map(|_| rng.random_range(-1.5..1.5)).collect();
    let cat_fx: Vec<f64> = spec
        .cats
        .first()
        .map(|c| {
            c.levels
                .iter()
                .map(|_| rng.random_range(-0.8..0.8))
                .collect()
        })
        .unwrap_or_default();

    // Noise region: central box over numeric attrs 0 and 1 where labels are
    // nearly random (flip probability 0.45).
    let box_of = |a: &NumAttr| {
        let mid = a.lo + 0.55 * (a.hi - a.lo);
        (mid, mid + 0.25 * (a.hi - a.lo))
    };
    let (b0_lo, b0_hi) = box_of(&spec.nums[0]);
    let (b1_lo, b1_hi) = box_of(&spec.nums[1]);

    let mut y_true = Vec::with_capacity(n);
    for _ in 0..n {
        let mut row: Vec<Value> = Vec::with_capacity(spec.nums.len() + spec.cats.len());
        let mut xs: Vec<f64> = Vec::with_capacity(spec.nums.len());
        for a in &spec.nums {
            let v = a.sample(&mut rng);
            xs.push(v);
            row.push(Value::Num(v.round()));
        }
        let mut cat_codes: Vec<usize> = Vec::with_capacity(spec.cats.len());
        for c in &spec.cats {
            let k = rng.random_range(0..c.levels.len());
            cat_codes.push(k);
            row.push(Value::Cat(c.levels[k].into()));
        }
        // Signal on standardized first three numerics.
        let mut score = spec.intercept;
        for (j, wj) in w.iter().enumerate() {
            let a = &spec.nums[j.min(spec.nums.len() - 1)];
            let z = (xs[j.min(xs.len() - 1)] - (a.lo + a.hi) / 2.0) / ((a.hi - a.lo) / 4.0);
            score += wj * z;
        }
        if let Some(&k) = cat_codes.first() {
            score += cat_fx[k];
        }
        let mut label = rng.random::<f64>() < sigmoid(score);
        // Inside the noise region the label is nearly random.
        let in_box = xs[0] >= b0_lo && xs[0] <= b0_hi && xs[1] >= b1_lo && xs[1] <= b1_hi;
        if in_box && rng.random::<f64>() < 0.45 {
            label = !label;
        }
        b.push_row(row).unwrap();
        y_true.push(label);
    }
    let frame: DataFrame = b.finish();
    // Two-fold cross-fitting: every prediction is out-of-sample, so the
    // forest's error reflects generalization (and concentrates in the noise
    // region) instead of memorising the training labels.
    let mut y_pred = vec![false; n];
    for fold in 0..2usize {
        let train_rows: Vec<usize> = (0..n).filter(|r| r % 2 == fold).collect();
        let train_frame = frame.take(&train_rows);
        let train_labels: Vec<bool> = train_rows.iter().map(|&r| y_true[r]).collect();
        let forest = RandomForest::fit(
            &train_frame,
            &train_labels,
            &RandomForestConfig {
                seed: seed.wrapping_add(1 + fold as u64),
                ..RandomForestConfig::default()
            },
        );
        for r in (0..n).filter(|r| r % 2 != fold) {
            y_pred[r] = forest.predict_prob(&frame, r) >= 0.5;
        }
    }
    Dataset::classification(spec.name, frame, y_true, y_pred)
}

/// adult-like dataset: 4 numeric + 7 categorical attributes (Table II).
pub fn adult(n: usize, seed: u64) -> Dataset {
    build(
        &UciSpec {
            name: "adult",
            nums: vec![
                NumAttr {
                    name: "age",
                    lo: 17.0,
                    hi: 90.0,
                    skew: 1.6,
                },
                NumAttr {
                    name: "fnlwgt",
                    lo: 12_000.0,
                    hi: 1_400_000.0,
                    skew: 2.2,
                },
                NumAttr {
                    name: "education-num",
                    lo: 1.0,
                    hi: 16.0,
                    skew: 0.8,
                },
                NumAttr {
                    name: "hours-per-week",
                    lo: 1.0,
                    hi: 99.0,
                    skew: 1.0,
                },
            ],
            cats: vec![
                CatAttr {
                    name: "workclass",
                    levels: &["Private", "Self-emp", "Gov", "Other"],
                },
                CatAttr {
                    name: "education",
                    levels: &["HS", "Some-college", "Bachelors", "Masters", "Doctorate"],
                },
                CatAttr {
                    name: "marital-status",
                    levels: &["Married", "Never", "Divorced"],
                },
                CatAttr {
                    name: "occupation",
                    levels: &["Tech", "Sales", "Exec", "Service", "Craft", "Other"],
                },
                CatAttr {
                    name: "relationship",
                    levels: &["Husband", "Wife", "Own-child", "Unmarried"],
                },
                CatAttr {
                    name: "race",
                    levels: &["White", "Black", "Asian", "Other"],
                },
                CatAttr {
                    name: "sex",
                    levels: &["Male", "Female"],
                },
            ],
            intercept: -0.9,
        },
        n,
        seed,
    )
}

/// bank-full-like dataset: 7 numeric + 8 categorical attributes (Table II;
/// `month` is treated as numeric, per §VI-A).
pub fn bank(n: usize, seed: u64) -> Dataset {
    build(
        &UciSpec {
            name: "bank",
            nums: vec![
                NumAttr {
                    name: "age",
                    lo: 18.0,
                    hi: 95.0,
                    skew: 1.4,
                },
                NumAttr {
                    name: "balance",
                    lo: -8_000.0,
                    hi: 100_000.0,
                    skew: 3.0,
                },
                NumAttr {
                    name: "duration",
                    lo: 0.0,
                    hi: 4_900.0,
                    skew: 2.5,
                },
                NumAttr {
                    name: "campaign",
                    lo: 1.0,
                    hi: 60.0,
                    skew: 3.0,
                },
                NumAttr {
                    name: "pdays",
                    lo: -1.0,
                    hi: 871.0,
                    skew: 2.8,
                },
                NumAttr {
                    name: "previous",
                    lo: 0.0,
                    hi: 270.0,
                    skew: 4.0,
                },
                NumAttr {
                    name: "month",
                    lo: 1.0,
                    hi: 12.0,
                    skew: 1.0,
                },
            ],
            cats: vec![
                CatAttr {
                    name: "job",
                    levels: &[
                        "admin",
                        "blue-collar",
                        "technician",
                        "services",
                        "management",
                        "retired",
                    ],
                },
                CatAttr {
                    name: "marital",
                    levels: &["married", "single", "divorced"],
                },
                CatAttr {
                    name: "education",
                    levels: &["primary", "secondary", "tertiary"],
                },
                CatAttr {
                    name: "default",
                    levels: &["no", "yes"],
                },
                CatAttr {
                    name: "housing",
                    levels: &["no", "yes"],
                },
                CatAttr {
                    name: "loan",
                    levels: &["no", "yes"],
                },
                CatAttr {
                    name: "contact",
                    levels: &["cellular", "telephone", "unknown"],
                },
                CatAttr {
                    name: "poutcome",
                    levels: &["unknown", "failure", "success", "other"],
                },
            ],
            intercept: -1.6,
        },
        n,
        seed,
    )
}

/// german-credit-like dataset: 7 numeric + 14 categorical attributes.
pub fn german(n: usize, seed: u64) -> Dataset {
    build(
        &UciSpec {
            name: "german",
            nums: vec![
                NumAttr {
                    name: "duration",
                    lo: 4.0,
                    hi: 72.0,
                    skew: 1.5,
                },
                NumAttr {
                    name: "credit-amount",
                    lo: 250.0,
                    hi: 18_500.0,
                    skew: 2.0,
                },
                NumAttr {
                    name: "installment-rate",
                    lo: 1.0,
                    hi: 4.0,
                    skew: 0.8,
                },
                NumAttr {
                    name: "residence-since",
                    lo: 1.0,
                    hi: 4.0,
                    skew: 1.0,
                },
                NumAttr {
                    name: "age",
                    lo: 19.0,
                    hi: 75.0,
                    skew: 1.6,
                },
                NumAttr {
                    name: "existing-credits",
                    lo: 1.0,
                    hi: 4.0,
                    skew: 2.0,
                },
                NumAttr {
                    name: "num-dependents",
                    lo: 1.0,
                    hi: 2.0,
                    skew: 1.0,
                },
            ],
            cats: vec![
                CatAttr {
                    name: "status",
                    levels: &["<0", "0-200", ">=200", "none"],
                },
                CatAttr {
                    name: "credit-history",
                    levels: &["critical", "paid", "delayed", "existing"],
                },
                CatAttr {
                    name: "purpose",
                    levels: &["car", "furniture", "radio/tv", "education", "business"],
                },
                CatAttr {
                    name: "savings",
                    levels: &["<100", "100-500", "500-1000", ">=1000", "unknown"],
                },
                CatAttr {
                    name: "employment",
                    levels: &["unemployed", "<1y", "1-4y", "4-7y", ">=7y"],
                },
                CatAttr {
                    name: "personal-status",
                    levels: &["male-single", "female", "male-married"],
                },
                CatAttr {
                    name: "other-debtors",
                    levels: &["none", "co-applicant", "guarantor"],
                },
                CatAttr {
                    name: "property",
                    levels: &["real-estate", "insurance", "car", "unknown"],
                },
                CatAttr {
                    name: "other-installment",
                    levels: &["bank", "stores", "none"],
                },
                CatAttr {
                    name: "housing",
                    levels: &["own", "rent", "free"],
                },
                CatAttr {
                    name: "job",
                    levels: &["unskilled", "skilled", "management"],
                },
                CatAttr {
                    name: "telephone",
                    levels: &["none", "yes"],
                },
                CatAttr {
                    name: "foreign-worker",
                    levels: &["yes", "no"],
                },
                CatAttr {
                    name: "guarantor-flag",
                    levels: &["no", "yes"],
                },
            ],
            intercept: 0.8,
        },
        n,
        seed,
    )
}

/// online-shoppers-intentions-like dataset: 11 numeric + 6 categorical
/// attributes (`month` numeric, per §VI-A).
pub fn intentions(n: usize, seed: u64) -> Dataset {
    build(
        &UciSpec {
            name: "intentions",
            nums: vec![
                NumAttr {
                    name: "administrative",
                    lo: 0.0,
                    hi: 27.0,
                    skew: 2.5,
                },
                NumAttr {
                    name: "administrative-duration",
                    lo: 0.0,
                    hi: 3_400.0,
                    skew: 3.0,
                },
                NumAttr {
                    name: "informational",
                    lo: 0.0,
                    hi: 24.0,
                    skew: 3.5,
                },
                NumAttr {
                    name: "informational-duration",
                    lo: 0.0,
                    hi: 2_550.0,
                    skew: 3.5,
                },
                NumAttr {
                    name: "product-related",
                    lo: 0.0,
                    hi: 700.0,
                    skew: 2.5,
                },
                NumAttr {
                    name: "product-related-duration",
                    lo: 0.0,
                    hi: 64_000.0,
                    skew: 3.0,
                },
                NumAttr {
                    name: "bounce-rates",
                    lo: 0.0,
                    hi: 100.0,
                    skew: 2.0,
                },
                NumAttr {
                    name: "exit-rates",
                    lo: 0.0,
                    hi: 100.0,
                    skew: 1.8,
                },
                NumAttr {
                    name: "page-values",
                    lo: 0.0,
                    hi: 360.0,
                    skew: 3.0,
                },
                NumAttr {
                    name: "special-day",
                    lo: 0.0,
                    hi: 1.0,
                    skew: 2.0,
                },
                NumAttr {
                    name: "month",
                    lo: 1.0,
                    hi: 12.0,
                    skew: 1.0,
                },
            ],
            cats: vec![
                CatAttr {
                    name: "operating-systems",
                    levels: &["win", "mac", "linux", "other"],
                },
                CatAttr {
                    name: "browser",
                    levels: &["chrome", "firefox", "safari", "edge", "other"],
                },
                CatAttr {
                    name: "region",
                    levels: &["r1", "r2", "r3", "r4", "r5"],
                },
                CatAttr {
                    name: "traffic-type",
                    levels: &["direct", "search", "ad", "referral"],
                },
                CatAttr {
                    name: "visitor-type",
                    levels: &["returning", "new", "other"],
                },
                CatAttr {
                    name: "weekend",
                    levels: &["no", "yes"],
                },
            ],
            intercept: -1.4,
        },
        n,
        seed,
    )
}

/// wine-quality-like dataset: 11 numeric attributes, no categorical
/// (Table II).
pub fn wine(n: usize, seed: u64) -> Dataset {
    build(
        &UciSpec {
            name: "wine",
            nums: vec![
                NumAttr {
                    name: "fixed-acidity",
                    lo: 38.0,
                    hi: 159.0,
                    skew: 1.3,
                },
                NumAttr {
                    name: "volatile-acidity",
                    lo: 8.0,
                    hi: 158.0,
                    skew: 1.8,
                },
                NumAttr {
                    name: "citric-acid",
                    lo: 0.0,
                    hi: 166.0,
                    skew: 1.2,
                },
                NumAttr {
                    name: "residual-sugar",
                    lo: 6.0,
                    hi: 658.0,
                    skew: 2.5,
                },
                NumAttr {
                    name: "chlorides",
                    lo: 1.0,
                    hi: 61.0,
                    skew: 2.5,
                },
                NumAttr {
                    name: "free-so2",
                    lo: 1.0,
                    hi: 289.0,
                    skew: 1.8,
                },
                NumAttr {
                    name: "total-so2",
                    lo: 6.0,
                    hi: 440.0,
                    skew: 1.2,
                },
                NumAttr {
                    name: "density",
                    lo: 987.0,
                    hi: 1_039.0,
                    skew: 1.0,
                },
                NumAttr {
                    name: "ph",
                    lo: 272.0,
                    hi: 401.0,
                    skew: 1.0,
                },
                NumAttr {
                    name: "sulphates",
                    lo: 22.0,
                    hi: 200.0,
                    skew: 1.8,
                },
                NumAttr {
                    name: "alcohol",
                    lo: 80.0,
                    hi: 149.0,
                    skew: 1.1,
                },
            ],
            cats: vec![],
            intercept: 0.4,
        },
        n,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdx_core::OutcomeFn;
    use hdx_model::metrics;
    use hdx_stats::StatAccum;

    #[test]
    fn schemas_match_table_ii() {
        let cases: Vec<(Dataset, usize, usize)> = vec![
            (adult(300, 0), 4, 7),
            (bank(300, 0), 7, 8),
            (german(300, 0), 7, 14),
            (intentions(300, 0), 11, 6),
            (wine(300, 0), 11, 0),
        ];
        for (d, n_num, n_cat) in cases {
            assert_eq!(
                d.frame.schema().continuous_ids().len(),
                n_num,
                "{}: numeric attribute count",
                d.name
            );
            assert_eq!(
                d.frame.schema().categorical_ids().len(),
                n_cat,
                "{}: categorical attribute count",
                d.name
            );
        }
    }

    #[test]
    fn forest_predictions_beat_chance() {
        let d = adult(3_000, 1);
        let m = metrics(d.y_true.as_ref().unwrap(), d.y_pred.as_ref().unwrap());
        assert!(m.accuracy > 0.7, "accuracy = {}", m.accuracy);
        // But not perfect: the noise region guarantees residual error.
        assert!(m.accuracy < 0.999);
    }

    #[test]
    fn noise_region_concentrates_error() {
        let d = wine(6_000, 2);
        let outcomes = d.classification_outcomes(OutcomeFn::ErrorRate);
        let overall = StatAccum::from_outcomes(&outcomes).statistic().unwrap();
        // The box lives in the 55–80% band of the first two numerics.
        let schema = d.frame.schema();
        let a0 = d.frame.continuous(schema.continuous_ids()[0]).values();
        let a1 = d.frame.continuous(schema.continuous_ids()[1]).values();
        let in_band = |v: f64, lo: f64, hi: f64| {
            let m0 = lo + 0.55 * (hi - lo);
            let m1 = lo + 0.80 * (hi - lo);
            v >= m0 && v <= m1
        };
        let mut boxed = StatAccum::new();
        for i in 0..d.n_rows() {
            if in_band(a0[i], 38.0, 159.0) && in_band(a1[i], 8.0, 158.0) {
                boxed.push(outcomes[i]);
            }
        }
        assert!(
            boxed.statistic().unwrap() > overall + 0.1,
            "box error {:?} vs overall {overall}",
            boxed.statistic()
        );
    }

    #[test]
    fn labels_not_degenerate() {
        for d in [
            adult(2_000, 3),
            bank(2_000, 3),
            german(1_000, 3),
            intentions(2_000, 3),
            wine(2_000, 3),
        ] {
            let pos = d.y_true.as_ref().unwrap().iter().filter(|&&t| t).count();
            let frac = pos as f64 / d.n_rows() as f64;
            assert!(
                (0.05..0.95).contains(&frac),
                "{}: positive rate {frac}",
                d.name
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = german(400, 9);
        let b = german(400, 9);
        assert_eq!(a.frame, b.frame);
        assert_eq!(a.y_pred, b.y_pred);
    }
}
