//! End-to-end pipeline benchmarks (Fig. 2b's execution-time panel): base vs
//! hierarchical exploration across supports, and an ablation of the
//! accumulate-during-mining design against a second-pass divergence
//! computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdx_bench::experiments::{outcomes_for, run_exploration};
use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::{compas, synthetic_peak};
use hdx_items::{item_cover, Bitset};
use hdx_mining::{mine, MiningConfig, Transactions};
use hdx_stats::StatAccum;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let datasets = vec![synthetic_peak(2_500, 4), compas(1_543, 4)];
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for dataset in &datasets {
        for s in [0.05, 0.1] {
            let config = HDivExplorerConfig {
                min_support: s,
                ..HDivExplorerConfig::default()
            };
            for (mode, name) in [
                (ExplorationMode::Base, "base"),
                (ExplorationMode::Generalized, "hier"),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/{name}", dataset.name), s),
                    dataset,
                    |b, d| b.iter(|| black_box(run_exploration(d, config, mode).1.max_divergence)),
                );
            }
        }
    }
    group.finish();
}

/// Ablation: divergence accumulated during mining (the paper's design) vs a
/// second pass over the dataset per frequent itemset.
fn bench_accumulation_ablation(c: &mut Criterion) {
    let dataset = synthetic_peak(2_500, 5);
    let outcomes = outcomes_for(&dataset);
    let pipeline = hdx_bench::experiments::pipeline_for(&dataset, HDivExplorerConfig::default());
    let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
    let transactions =
        Transactions::encode_generalized(&dataset.frame, &catalog, &hierarchies, &outcomes);
    let config = MiningConfig {
        min_support: 0.05,
        ..MiningConfig::default()
    };

    let mut group = c.benchmark_group("accumulation-ablation");
    group.sample_size(10);
    group.bench_function("integrated", |b| {
        b.iter(|| {
            let result = mine(&transactions, &catalog, &config);
            let best = result
                .itemsets
                .iter()
                .filter_map(|fi| fi.accum.divergence(&result.global))
                .fold(f64::NEG_INFINITY, f64::max);
            black_box(best)
        })
    });
    group.bench_function("second-pass", |b| {
        b.iter(|| {
            let result = mine(&transactions, &catalog, &config);
            // Recompute each itemset's statistics from scratch via covers.
            let global = StatAccum::from_outcomes(&outcomes);
            let best = result
                .itemsets
                .iter()
                .filter_map(|fi| {
                    let mut cover: Option<Bitset> = None;
                    for &item in fi.itemset.items() {
                        let ic = item_cover(&dataset.frame, &catalog, item);
                        cover = Some(match cover {
                            None => ic,
                            Some(c) => c.and(&ic),
                        });
                    }
                    let mut acc = StatAccum::new();
                    for row in cover?.iter_ones() {
                        acc.push(outcomes[row]);
                    }
                    acc.divergence(&global)
                })
                .fold(f64::NEG_INFINITY, f64::max);
            black_box(best)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_accumulation_ablation);
criterion_main!(benches);
