//! Polarity-pruning benchmark (Fig. 4b): complete vs pruned hierarchical
//! exploration at low support, where the pruning pays off most.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdx_bench::experiments::{outcomes_for, pipeline_for};
use hdx_core::{mine_with_polarity, HDivExplorerConfig};
use hdx_datasets::{synthetic_peak, wine};
use hdx_mining::{mine, MiningConfig, Transactions};
use std::hint::black_box;

fn bench_polarity(c: &mut Criterion) {
    // wine has the most continuous attributes (11) — the paper's best case
    // for polarity pruning (×27.6 average, ×116.8 peak).
    let datasets = vec![wine(2_449, 2), synthetic_peak(2_500, 2)];
    let mut group = c.benchmark_group("polarity");
    group.sample_size(10);
    for dataset in &datasets {
        let outcomes = outcomes_for(dataset);
        let pipeline = pipeline_for(dataset, HDivExplorerConfig::default());
        let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
        let transactions =
            Transactions::encode_generalized(&dataset.frame, &catalog, &hierarchies, &outcomes);
        for s in [0.025, 0.05] {
            let config = MiningConfig {
                min_support: s,
                ..MiningConfig::default()
            };
            group.bench_with_input(
                BenchmarkId::new(format!("{}/complete", dataset.name), s),
                &transactions,
                |b, t| b.iter(|| black_box(mine(t, &catalog, &config).itemsets.len())),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{}/pruned", dataset.name), s),
                &transactions,
                |b, t| {
                    b.iter(|| black_box(mine_with_polarity(t, &catalog, &config).itemsets.len()))
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_polarity);
criterion_main!(benches);
