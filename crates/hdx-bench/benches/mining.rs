//! Mining-algorithm benchmarks (ablation for Fig. 2b's execution-time
//! panel): Apriori vs FP-Growth vs the vertical miner, on base and
//! generalized transactions of synthetic-peak and compas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdx_bench::experiments::{outcomes_for, pipeline_for};
use hdx_core::HDivExplorerConfig;
use hdx_datasets::{compas, synthetic_peak};
use hdx_mining::{mine, MiningAlgorithm, MiningConfig, Transactions};
use std::hint::black_box;

fn bench_algorithms(c: &mut Criterion) {
    let datasets = vec![synthetic_peak(2_500, 1), compas(1_543, 1)];
    let mut group = c.benchmark_group("mining");
    group.sample_size(20);
    for dataset in &datasets {
        let outcomes = outcomes_for(dataset);
        let pipeline = pipeline_for(dataset, HDivExplorerConfig::default());
        let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
        for (kind, transactions) in [
            (
                "base",
                Transactions::encode_base(&dataset.frame, &catalog, &hierarchies, &outcomes),
            ),
            (
                "generalized",
                Transactions::encode_generalized(&dataset.frame, &catalog, &hierarchies, &outcomes),
            ),
        ] {
            for algorithm in [
                MiningAlgorithm::Apriori,
                MiningAlgorithm::FpGrowth,
                MiningAlgorithm::Vertical,
                MiningAlgorithm::VerticalParallel,
            ] {
                let config = MiningConfig {
                    min_support: 0.05,
                    max_len: None,
                    algorithm,
                    threads: None,
                };
                group.bench_with_input(
                    BenchmarkId::new(format!("{}/{kind}", dataset.name), format!("{algorithm:?}")),
                    &transactions,
                    |b, t| b.iter(|| black_box(mine(t, &catalog, &config).itemsets.len())),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
