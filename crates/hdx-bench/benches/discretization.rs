//! Discretization benchmarks (§VI-F: "the time required by the
//! discretization process is always negligible compared to exploration"):
//! tree discretization under both gain criteria vs the quantile baseline,
//! across dataset sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdx_core::OutcomeFn;
use hdx_datasets::synthetic_peak;
use hdx_discretize::{quantile_hierarchy, GainCriterion, TreeDiscretizer};
use hdx_items::ItemCatalog;
use std::hint::black_box;

fn bench_discretization(c: &mut Criterion) {
    let mut group = c.benchmark_group("discretization");
    group.sample_size(20);
    for n in [2_500usize, 10_000] {
        let d = synthetic_peak(n, 3);
        let outcomes = d.classification_outcomes(OutcomeFn::ErrorRate);
        let attr = d.frame.schema().id("a").unwrap();
        for criterion in [GainCriterion::Divergence, GainCriterion::Entropy] {
            let discretizer = TreeDiscretizer::with_support(0.1, criterion);
            group.bench_with_input(
                BenchmarkId::new(format!("tree/{criterion:?}"), n),
                &d,
                |b, d| {
                    b.iter(|| {
                        let mut catalog = ItemCatalog::new();
                        black_box(discretizer.discretize_attribute(
                            &d.frame,
                            attr,
                            &outcomes,
                            &mut catalog,
                        ))
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("quantile/8bins", n), &d, |b, d| {
            b.iter(|| {
                let mut catalog = ItemCatalog::new();
                black_box(quantile_hierarchy(&d.frame, attr, 8, &mut catalog))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_discretization);
criterion_main!(benches);
