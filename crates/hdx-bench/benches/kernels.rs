//! Micro-benchmarks for the word-level outcome kernels: the bitplane
//! popcount/masked-sum paths in [`hdx_stats::OutcomePlanes`] against the
//! scalar row-walking reference ([`hdx_mining::accum_scalar`]), on dense
//! boolean, dense numeric, and mixed outcome vectors.
//!
//! The headline acceptance number (boolean dense kernel ≥ 3x scalar) is
//! measured by the `bench_mining` binary, which exports machine-readable
//! timings to `BENCH_mining.json`; this harness gives the same comparison
//! with criterion's statistics for local iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hdx_bench::splitmix64;
use hdx_items::Bitset;
use hdx_mining::accum_scalar;
use hdx_stats::{Outcome, OutcomePlanes};
use std::hint::black_box;

const N_ROWS: usize = 65_536;
const N_COVERS: usize = 32;

fn covers(n_rows: usize, seed: u64) -> Vec<Bitset> {
    let mut state = seed;
    (0..N_COVERS)
        .map(|_| {
            let mut cover = Bitset::new(n_rows);
            for row in 0..n_rows {
                // ~50% density: one pseudo-random bit per row.
                if splitmix64(&mut state) & 1 == 1 {
                    cover.set(row);
                }
            }
            cover
        })
        .collect()
}

fn outcomes(kind: &str, n_rows: usize) -> Vec<Outcome> {
    let mut state = 0x5eed_0123_4567_89ab;
    (0..n_rows)
        .map(|_| {
            let bits = splitmix64(&mut state);
            match kind {
                "boolean" => Outcome::Bool(bits & 1 == 1),
                "numeric" => Outcome::Real((bits >> 11) as f64 * 1e-6),
                _ => match bits % 10 {
                    0 => Outcome::Undefined,
                    1..=5 => Outcome::Bool(bits & 2 == 2),
                    _ => Outcome::Real((bits >> 11) as f64 * 1e-6),
                },
            }
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let cover_set = covers(N_ROWS, 7);
    let counts: Vec<u64> = cover_set.iter().map(|c| c.count() as u64).collect();
    let mut group = c.benchmark_group("kernels");
    group.throughput(Throughput::Elements((N_ROWS * N_COVERS) as u64));
    for kind in ["boolean", "numeric", "mixed"] {
        let outcome_vec = outcomes(kind, N_ROWS);
        let planes = OutcomePlanes::from_outcomes(&outcome_vec);
        group.bench_with_input(BenchmarkId::new("kernel", kind), &planes, |b, planes| {
            b.iter(|| {
                for (cover, &n) in cover_set.iter().zip(&counts) {
                    black_box(planes.accum(cover.words(), n));
                }
            })
        });
        group.bench_with_input(
            BenchmarkId::new("scalar", kind),
            &outcome_vec,
            |b, outcome_vec| {
                b.iter(|| {
                    for cover in &cover_set {
                        black_box(accum_scalar(cover, outcome_vec));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("pair-fused", kind),
            &planes,
            |b, planes| {
                b.iter(|| {
                    for pair in cover_set.chunks_exact(2) {
                        let n = pair[0].and_count(&pair[1]) as u64;
                        black_box(planes.accum_pair(pair[0].words(), pair[1].words(), n));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
