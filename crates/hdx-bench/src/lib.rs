//! # hdx-bench
//!
//! Experiment harness regenerating **every table and figure** of the paper's
//! evaluation (§VI). Each `src/bin/<exp>.rs` binary prints the rows/series
//! of one paper artifact; the library holds the shared runners so the
//! integration tests and Criterion benches exercise the same code.
//!
//! Run e.g.:
//!
//! ```text
//! cargo run --release -p hdx-bench --bin table3 -- --scale 0.25
//! ```
//!
//! `--scale` shrinks every dataset relative to the paper's row counts
//! (Table II); `--seed` changes the generator seed. Absolute numbers shift
//! with scale, but the comparisons the paper makes (hierarchical ≥ base,
//! polarity pruning lossless, …) hold at any scale.

/// Experiment runners, one submodule per paper table/figure.
pub mod experiments;
/// Minimal plotting helpers (ASCII/Gnuplot-style series dumps).
pub mod plot;
/// Shared CLI argument parsing, RNG, and table formatting.
pub mod util;

pub use util::{fmt_table, splitmix64, Args};
