//! Minimal ASCII line charts for the figure binaries.
//!
//! The paper's figures are line plots of divergence/time vs support; the
//! harness prints the exact numbers as tables and, via this module, a
//! terminal rendering of the same series so the *shape* (who dominates,
//! where curves cross) is visible at a glance.

/// Symbols assigned to series, in order.
const SYMBOLS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Renders series sharing an x-axis as an ASCII chart.
///
/// * `x_labels` — tick labels, one per x position;
/// * `series` — `(name, ys)` pairs; `ys.len()` must equal `x_labels.len()`;
///   non-finite values are skipped.
/// * `height` — plot rows (≥ 2).
///
/// # Panics
/// Panics on mismatched lengths, no series, or `height < 2`.
pub fn line_chart(x_labels: &[String], series: &[(&str, Vec<f64>)], height: usize) -> String {
    assert!(!series.is_empty(), "at least one series");
    assert!(height >= 2, "height must be at least 2");
    for (name, ys) in series {
        assert_eq!(ys.len(), x_labels.len(), "series `{name}` length mismatch");
    }
    let finite: Vec<f64> = series
        .iter()
        .flat_map(|(_, ys)| ys.iter().copied())
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return "(no finite data)\n".to_string();
    }
    let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = if hi > lo { hi - lo } else { 1.0 };

    let col_width = 7usize;
    let width = x_labels.len() * col_width;
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let symbol = SYMBOLS[si % SYMBOLS.len()];
        for (xi, &y) in ys.iter().enumerate() {
            if !y.is_finite() {
                continue;
            }
            let row = ((hi - y) / span * (height - 1) as f64).round() as usize;
            let col = xi * col_width + col_width / 2;
            grid[row.min(height - 1)][col] = symbol;
        }
    }

    let y_label_width = 9;
    let mut out = String::new();
    for (row, line) in grid.iter().enumerate() {
        let y_val = hi - span * row as f64 / (height - 1) as f64;
        let label = if row == 0 || row == height - 1 || row == (height - 1) / 2 {
            format!("{y_val:>8.3}")
        } else {
            " ".repeat(8)
        };
        out.push_str(&format!("{label} |"));
        out.push_str(&line.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&" ".repeat(y_label_width));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&" ".repeat(y_label_width + 1));
    for label in x_labels {
        out.push_str(&format!("{label:^col_width$}"));
    }
    out.push('\n');
    // Legend.
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(si, (name, _))| format!("{} {name}", SYMBOLS[si % SYMBOLS.len()]))
        .collect();
    out.push_str(&format!(
        "{}{}\n",
        " ".repeat(y_label_width + 1),
        legend.join("   ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn renders_two_series_with_legend() {
        let chart = line_chart(
            &labels(&["0.05", "0.1", "0.2"]),
            &[
                ("base", vec![0.1, 0.08, 0.02]),
                ("hier", vec![0.3, 0.25, 0.2]),
            ],
            8,
        );
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("* base"));
        assert!(chart.contains("o hier"));
        assert!(chart.contains("0.05"));
        // Max and min appear as y labels.
        assert!(chart.contains("0.300"));
        assert!(chart.contains("0.020"));
    }

    #[test]
    fn dominant_series_sits_above() {
        let chart = line_chart(
            &labels(&["a", "b"]),
            &[("low", vec![0.0, 0.0]), ("high", vec![1.0, 1.0])],
            5,
        );
        let lines: Vec<&str> = chart.lines().collect();
        let row_of = |sym: char| lines.iter().position(|l| l.contains(sym)).unwrap();
        assert!(row_of('o') < row_of('*'), "high (o) above low (*)\n{chart}");
    }

    #[test]
    fn constant_series_and_nan_handled() {
        let chart = line_chart(
            &labels(&["a", "b", "c"]),
            &[("flat", vec![0.5, f64::NAN, 0.5])],
            4,
        );
        // Count symbols in the plot area only (the legend repeats one).
        let plot_area: String = chart.lines().take(4).collect();
        assert_eq!(
            plot_area.matches('*').count(),
            2,
            "NaN point skipped\n{chart}"
        );
        let empty = line_chart(&labels(&["a"]), &[("nan", vec![f64::NAN])], 4);
        assert!(empty.contains("no finite data"));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_rejected() {
        let _ = line_chart(&labels(&["a", "b"]), &[("s", vec![1.0])], 4);
    }
}
