//! Fig. 4: complete vs polarity-pruned hierarchical exploration — (a) the
//! highest divergence is (nearly always) preserved, (b) the pruned search is
//! substantially faster.

use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::classification_suite;

use crate::experiments::common::run_exploration;
use crate::experiments::fig2::SUPPORTS;
use crate::util::{fmt_table, Args};

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Exploration support.
    pub s: f64,
    /// Complete-search max divergence.
    pub full_div: f64,
    /// Polarity-pruned max divergence.
    pub pruned_div: f64,
    /// Complete-search mining seconds.
    pub full_secs: f64,
    /// Pruned-search mining seconds.
    pub pruned_secs: f64,
    /// Subgroups explored by the complete search.
    pub full_subgroups: usize,
    /// Subgroups surviving polarity pruning.
    pub pruned_subgroups: usize,
}

/// Computes the sweep.
pub fn points(args: Args) -> Vec<Point> {
    let mut out = Vec::new();
    for dataset in classification_suite(args.scale, args.seed) {
        for s in SUPPORTS {
            let mk = |polarity_pruning| HDivExplorerConfig {
                min_support: s,
                polarity_pruning,
                ..HDivExplorerConfig::default()
            };
            let (_, full) = run_exploration(&dataset, mk(false), ExplorationMode::Generalized);
            let (_, pruned) = run_exploration(&dataset, mk(true), ExplorationMode::Generalized);
            out.push(Point {
                dataset: dataset.name.clone(),
                s,
                full_div: full.max_divergence,
                pruned_div: pruned.max_divergence,
                full_secs: full.elapsed_secs,
                pruned_secs: pruned.elapsed_secs,
                full_subgroups: full.n_subgroups,
                pruned_subgroups: pruned.n_subgroups,
            });
        }
    }
    out
}

/// Renders Fig. 4.
pub fn run(args: Args) -> String {
    let body: Vec<Vec<String>> = points(args)
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                format!("{}", p.s),
                format!("{:.3}", p.full_div),
                format!("{:.3}", p.pruned_div),
                format!("{:.4}", p.full_secs),
                format!("{:.4}", p.pruned_secs),
                format!("{:.1}x", p.full_secs / p.pruned_secs.max(1e-9)),
                format!("{}", p.full_subgroups),
                format!("{}", p.pruned_subgroups),
            ]
        })
        .collect();
    format!(
        "Fig. 4 — complete vs polarity-pruned hierarchical exploration (st = 0.1)\n\
         paper reference: pruning preserves the max divergence (differs slightly in only\n\
         4 of all cases) while cutting execution time (mean speedups ×1.4 adult – ×27.6\n\
         wine, peak ×116.8 at s = 0.01)\n\n{}",
        fmt_table(
            &[
                "dataset",
                "s",
                "maxΔ full",
                "maxΔ pruned",
                "t full (s)",
                "t pruned (s)",
                "speedup",
                "#subgroups full",
                "#subgroups pruned",
            ],
            &body
        ),
    )
}
