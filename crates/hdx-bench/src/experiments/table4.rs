//! Table IV: top income-divergent folktables itemsets, base vs generalized
//! exploration (tree discretization, divergence criterion — the only one
//! applicable to a real-valued outcome), `s ∈ {0.05, 0.025, 0.01}`.

use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::{default_rows, folktables};
use hdx_discretize::GainCriterion;

use crate::experiments::common::{run_exploration, RunStats};
use crate::util::{fmt_table, Args};

/// One Table IV row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Exploration support.
    pub s: f64,
    /// `"base"` or `"generalized"`.
    pub itemset_type: &'static str,
    /// Condensed run result.
    pub stats: RunStats,
}

/// Computes all Table IV rows.
pub fn rows(args: Args) -> Vec<Row> {
    let d = folktables(args.rows(default_rows::FOLKTABLES), args.seed);
    let mut out = Vec::new();
    for s in [0.05, 0.025, 0.01] {
        let config = HDivExplorerConfig {
            min_support: s,
            tree_min_support: 0.1,
            criterion: GainCriterion::Divergence,
            // The paper's Table IV itemsets have ≤ 4 items; capping the
            // pattern length keeps the s = 0.01 sweep tractable without
            // affecting the reported maxima.
            max_len: Some(4),
            ..HDivExplorerConfig::default()
        };
        for (mode, itemset_type) in [
            (ExplorationMode::Base, "base"),
            (ExplorationMode::Generalized, "generalized"),
        ] {
            let (result, _) = run_exploration(&d, config, mode);
            out.push(Row {
                s,
                itemset_type,
                stats: crate::experiments::common::condense(&result),
            });
        }
    }
    out
}

/// Renders Table IV.
pub fn run(args: Args) -> String {
    let body: Vec<Vec<String>> = rows(args)
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.s),
                r.itemset_type.to_string(),
                r.stats.top_label.clone(),
                format!("{:.2}", r.stats.top_support),
                format!("{:+.1}k", r.stats.max_divergence / 1_000.0),
                format!("{:.1}", r.stats.top_t),
            ]
        })
        .collect();
    format!(
        "Table IV — folktables top income-divergent itemsets (st = 0.1)\n\
         paper reference (Δincome): s=0.05: base 81.0k < generalized 90.2k;\n\
         s=0.025: 105.3k < 119.3k;  s=0.01: 163.5k < 172.3k\n\
         (generalized itemsets use non-leaf items such as OCCP=MGR and AGEP≥35)\n\n{}",
        fmt_table(
            &["s", "Itemset type", "Itemset", "Sup", "Δincome", "t"],
            &body
        ),
    )
}
