//! Table I: FPR and FPR divergence of fixed compas subgroups under two
//! discretizations of `#prior`, motivating the hierarchical approach.

use hdx_core::OutcomeFn;
use hdx_datasets::{compas, default_rows};
use hdx_stats::StatAccum;

use crate::util::{fmt_table, Args};

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Row {
    /// Subgroup description.
    pub subgroup: String,
    /// False-positive rate of the subgroup.
    pub fpr: f64,
    /// FPR divergence from the whole dataset.
    pub delta_fpr: f64,
    /// Support.
    pub support: f64,
}

/// Computes the rows of Table I.
pub fn rows(args: Args) -> Vec<Row> {
    let d = compas(args.rows(default_rows::COMPAS), args.seed);
    let outcomes = d.classification_outcomes(OutcomeFn::Fpr);
    let schema = d.frame.schema();
    let priors = d.frame.continuous(schema.id("#prior").unwrap()).values();
    let age = d.frame.continuous(schema.id("age").unwrap()).values();
    let n = d.n_rows() as f64;

    type Slice<'a> = (&'a str, Box<dyn Fn(usize) -> bool + 'a>);
    let slices: Vec<Slice> = vec![
        ("Entire dataset", Box::new(|_| true)),
        ("#prior>3", Box::new(|i| priors[i] > 3.0)),
        ("#prior>8", Box::new(|i| priors[i] > 8.0)),
        ("age<27", Box::new(|i| age[i] < 27.0)),
        (
            "age<27, #prior>3",
            Box::new(|i| age[i] < 27.0 && priors[i] > 3.0),
        ),
    ];

    let overall = StatAccum::from_outcomes(&outcomes)
        .statistic()
        .expect("dataset has negatives");
    slices
        .into_iter()
        .map(|(name, keep)| {
            let mut acc = StatAccum::new();
            let mut count = 0usize;
            for (i, &o) in outcomes.iter().enumerate() {
                if keep(i) {
                    acc.push(o);
                    count += 1;
                }
            }
            let fpr = acc.statistic().unwrap_or(f64::NAN);
            Row {
                subgroup: name.to_string(),
                fpr,
                delta_fpr: fpr - overall,
                support: count as f64 / n,
            }
        })
        .collect()
}

/// Renders Table I.
pub fn run(args: Args) -> String {
    let table = fmt_table(
        &["Data subgroup", "FPR", "ΔFPR", "Support"],
        &rows(args)
            .iter()
            .map(|r| {
                vec![
                    r.subgroup.clone(),
                    format!("{:.3}", r.fpr),
                    format!("{:+.3}", r.delta_fpr),
                    format!("{:.2}", r.support),
                ]
            })
            .collect::<Vec<_>>(),
    );
    format!(
        "Table I — impact of #prior discretization on FPR divergence (compas)\n\
         paper reference: FPR(D)=0.088, Δ(#prior>3)=+0.131, Δ(#prior>8)=+0.295,\n\
         Δ(age<27)=+0.067, Δ(age<27 ∧ #prior>3)=+0.288\n\n{table}"
    )
}
