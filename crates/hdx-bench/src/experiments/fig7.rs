//! Fig. 7: unsupervised quantile discretization (best over 2–10 bins,
//! explored by base DivExplorer) vs the tree-based hierarchical exploration,
//! on synthetic-peak.
//!
//! Extension beyond the paper: a third series runs the Fayyad–Irani MDLP
//! supervised discretizer (§II, ref. 23) with base exploration, showing that
//! even a supervised flat discretization is dominated by the hierarchy.

use hdx_core::{DivExplorer, ExplorationConfig, ExplorationMode, HDivExplorerConfig, OutcomeFn};
use hdx_datasets::{default_rows, synthetic_peak};
use hdx_discretize::{mdlp_hierarchy, quantile_hierarchy};
use hdx_items::{HierarchySet, ItemCatalog};

use crate::experiments::common::run_exploration;
use crate::plot::line_chart;
use crate::util::{fmt_table, Args};

/// The support sweep of Fig. 7.
pub const SUPPORTS: [f64; 4] = [0.01, 0.025, 0.05, 0.07];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Exploration support.
    pub s: f64,
    /// Best base-exploration divergence over quantile discretizations with
    /// 2–10 bins.
    pub quantile_div: f64,
    /// The bin count achieving it.
    pub best_bins: usize,
    /// MDLP (supervised, flat) + base exploration divergence (extension).
    pub mdlp_div: f64,
    /// Hierarchical (tree) exploration divergence.
    pub tree_div: f64,
}

/// Computes the sweep.
pub fn points(args: Args) -> Vec<Point> {
    let d = synthetic_peak(args.rows(default_rows::SYNTHETIC_PEAK), args.seed);
    let outcomes = d.classification_outcomes(OutcomeFn::ErrorRate);
    let continuous = d.frame.schema().continuous_ids();

    // Pre-build a quantile hierarchy set per bin count.
    let per_bins: Vec<(usize, ItemCatalog, HierarchySet)> = (2..=10)
        .map(|k| {
            let mut catalog = ItemCatalog::new();
            let mut hs = HierarchySet::new();
            for &attr in &continuous {
                hs.push(quantile_hierarchy(&d.frame, attr, k, &mut catalog));
            }
            (k, catalog, hs)
        })
        .collect();

    // MDLP hierarchy is support-independent; build once.
    let mut mdlp_catalog = ItemCatalog::new();
    let mut mdlp_hs = HierarchySet::new();
    for &attr in &continuous {
        let h = mdlp_hierarchy(&d.frame, attr, &outcomes, &mut mdlp_catalog);
        if !h.is_empty() {
            mdlp_hs.push(h);
        }
    }

    SUPPORTS
        .iter()
        .map(|&s| {
            let explorer = DivExplorer::new(ExplorationConfig {
                min_support: s,
                ..ExplorationConfig::default()
            });
            let mdlp_div = if mdlp_hs.is_empty() {
                0.0
            } else {
                explorer
                    .explore(&d.frame, &mdlp_catalog, &mdlp_hs, &outcomes)
                    .max_divergence()
                    .unwrap_or(0.0)
            };
            let (best_bins, quantile_div) = per_bins
                .iter()
                .map(|(k, catalog, hs)| {
                    let report = explorer.explore(&d.frame, catalog, hs, &outcomes);
                    (*k, report.max_divergence().unwrap_or(0.0))
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite divergences"))
                .expect("bin range non-empty");
            let (_, tree) = run_exploration(
                &d,
                HDivExplorerConfig {
                    min_support: s,
                    ..HDivExplorerConfig::default()
                },
                ExplorationMode::Generalized,
            );
            Point {
                s,
                quantile_div,
                best_bins,
                mdlp_div,
                tree_div: tree.max_divergence,
            }
        })
        .collect()
}

/// Renders Fig. 7.
pub fn run(args: Args) -> String {
    let pts = points(args);
    let body: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.s),
                format!("{:.3}", p.quantile_div),
                format!("{}", p.best_bins),
                format!("{:.3}", p.mdlp_div),
                format!("{:.3}", p.tree_div),
            ]
        })
        .collect();
    let x_labels: Vec<String> = pts.iter().map(|p| format!("{}", p.s)).collect();
    let chart = line_chart(
        &x_labels,
        &[
            (
                "quantile (best)",
                pts.iter().map(|p| p.quantile_div).collect(),
            ),
            ("MDLP", pts.iter().map(|p| p.mdlp_div).collect()),
            (
                "tree hierarchical",
                pts.iter().map(|p| p.tree_div).collect(),
            ),
        ],
        10,
    );
    format!(
        "Fig. 7 — quantile discretization (best of 2–10 bins, base exploration) vs\n\
         tree-based hierarchical exploration, synthetic-peak\n\
         paper reference: the hierarchical exploration dominates at every support\n\n{}\n{}",
        fmt_table(
            &[
                "s",
                "maxΔ quantile (best)",
                "best #bins",
                "maxΔ MDLP (ext.)",
                "maxΔ tree hierarchical"
            ],
            &body
        ),
        chart,
    )
}
