//! Ablation (§V-A Discussion): combined decision tree over all attributes
//! vs per-attribute trees + lattice exploration.
//!
//! The paper argues a single combined tree (i) cannot control per-attribute
//! granularity, (ii) yields no item hierarchies, and (iii) produces
//! *disjoint* subgroups, limiting the divergence it can expose. This
//! experiment quantifies (iii): for the same support constraint, the lattice
//! over per-attribute hierarchies finds subgroups at least as divergent as
//! the best combined-tree leaf.

use hdx_baselines::{CombinedTreeConfig, CombinedTreeExplorer};
use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::{compas, default_rows, synthetic_peak, Dataset};

use crate::experiments::common::{outcomes_for, run_exploration};
use crate::util::{fmt_table, Args};

/// One comparison point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Support threshold.
    pub s: f64,
    /// Best combined-tree leaf divergence.
    pub combined_tree_div: f64,
    /// Base lattice exploration max divergence.
    pub base_div: f64,
    /// Hierarchical lattice exploration max divergence.
    pub hier_div: f64,
    /// Number of combined-tree leaves (disjoint subgroups).
    pub n_leaves: usize,
    /// Number of (overlapping) subgroups the hierarchical lattice explored.
    pub n_lattice: usize,
}

fn sweep(dataset: &Dataset) -> Vec<Point> {
    let outcomes = outcomes_for(dataset);
    [0.05, 0.1]
        .iter()
        .map(|&s| {
            let leaves = CombinedTreeExplorer::new(CombinedTreeConfig {
                min_support: s,
                max_depth: None,
            })
            .explore(&dataset.frame, &outcomes);
            let tree_best = leaves.first().and_then(|l| l.divergence).unwrap_or(0.0);
            let config = HDivExplorerConfig {
                min_support: s,
                ..HDivExplorerConfig::default()
            };
            let (_, base) = run_exploration(dataset, config, ExplorationMode::Base);
            let (_, hier) = run_exploration(dataset, config, ExplorationMode::Generalized);
            Point {
                dataset: dataset.name.clone(),
                s,
                combined_tree_div: tree_best,
                base_div: base.max_divergence,
                hier_div: hier.max_divergence,
                n_leaves: leaves.len(),
                n_lattice: hier.n_subgroups,
            }
        })
        .collect()
}

/// Computes the comparison for synthetic-peak and compas.
pub fn points(args: Args) -> Vec<Point> {
    let mut out = sweep(&synthetic_peak(
        args.rows(default_rows::SYNTHETIC_PEAK),
        args.seed,
    ));
    out.extend(sweep(&compas(args.rows(default_rows::COMPAS), args.seed)));
    out
}

/// Renders the ablation.
pub fn run(args: Args) -> String {
    let body: Vec<Vec<String>> = points(args)
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                format!("{}", p.s),
                format!("{:.3}", p.combined_tree_div),
                format!("{:.3}", p.base_div),
                format!("{:.3}", p.hier_div),
                format!("{}", p.n_leaves),
                format!("{}", p.n_lattice),
            ]
        })
        .collect();
    format!(
        "Ablation — combined tree (disjoint subgroups) vs lattice exploration\n\
         paper §V-A Discussion: combined trees cannot control per-attribute\n\
         granularity and their disjoint leaves limit the divergence exposed\n\n{}",
        fmt_table(
            &[
                "dataset",
                "s",
                "maxΔ combined-tree",
                "maxΔ lattice base",
                "maxΔ lattice hier",
                "#leaves",
                "#lattice subgroups",
            ],
            &body
        ),
    )
}
