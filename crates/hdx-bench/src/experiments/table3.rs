//! Table III: top FPR-divergent compas itemsets under manual
//! discretization, tree discretization (leaf items), and the hierarchical
//! (generalized) exploration, for `s ∈ {0.05, 0.025, 0.01}`.

use hdx_core::{DivExplorer, ExplorationConfig, ExplorationMode, HDivExplorerConfig, OutcomeFn};
use hdx_datasets::{compas, default_rows, Dataset};
use hdx_discretize::manual_hierarchy;
use hdx_items::{HierarchySet, Item, ItemCatalog, ItemHierarchy};

use crate::experiments::common::{condense, run_exploration, RunStats};
use crate::util::{fmt_table, Args};

/// The manual compas discretization used by prior work (refs. 5 and 14): age
/// {<25, 25–45, >45}, #prior {0, 1–3, >3}, stay {<1w, 1w–3M, >3M}.
pub fn manual_hierarchies(d: &Dataset) -> (ItemCatalog, HierarchySet) {
    let mut catalog = ItemCatalog::new();
    let mut hierarchies = HierarchySet::new();
    let schema = d.frame.schema();
    for (name, cuts) in [
        ("age", vec![25.0, 45.0]),
        ("#prior", vec![0.0, 3.0]),
        ("stay", vec![7.0, 90.0]),
    ] {
        let attr = schema.id(name).unwrap();
        hierarchies.push(manual_hierarchy(&d.frame, attr, &cuts, &mut catalog));
    }
    for attr in schema.categorical_ids() {
        let col = d.frame.categorical(attr);
        let items: Vec<_> = (0..col.n_levels() as u32)
            .map(|c| catalog.intern(Item::cat_eq(attr, c, schema.name(attr), col.level(c))))
            .collect();
        hierarchies.push(ItemHierarchy::flat(attr, items));
    }
    (catalog, hierarchies)
}

/// One Table III row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Exploration support `s`.
    pub s: f64,
    /// Setting name.
    pub setting: &'static str,
    /// Condensed run result.
    pub stats: RunStats,
}

/// Computes all Table III rows.
pub fn rows(args: Args) -> Vec<Row> {
    let d = compas(args.rows(default_rows::COMPAS), args.seed);
    let outcomes = d.classification_outcomes(OutcomeFn::Fpr);
    let (manual_catalog, manual_hs) = manual_hierarchies(&d);

    let mut out = Vec::new();
    for s in [0.05, 0.025, 0.01] {
        // Manual discretization + base exploration.
        let explorer = DivExplorer::new(ExplorationConfig {
            min_support: s,
            ..ExplorationConfig::default()
        });
        let report = explorer.explore(&d.frame, &manual_catalog, &manual_hs, &outcomes);
        let top = report.top();
        out.push(Row {
            s,
            setting: "Manual discretization",
            stats: RunStats {
                max_divergence: report.max_divergence().unwrap_or(0.0),
                elapsed_secs: report.elapsed.as_secs_f64(),
                discretization_secs: 0.0,
                top_label: top.map_or_else(|| "-".into(), |r| r.label.clone()),
                top_support: top.map_or(0.0, |r| r.support),
                top_statistic: top.and_then(|r| r.statistic).unwrap_or(f64::NAN),
                top_t: top.map_or(0.0, |r| r.t_value),
                n_subgroups: report.records.len(),
                termination: report.termination,
            },
        });

        // Tree discretization, base and generalized.
        let config = HDivExplorerConfig {
            min_support: s,
            tree_min_support: 0.1,
            ..HDivExplorerConfig::default()
        };
        let (base_result, _) = run_exploration(&d, config, ExplorationMode::Base);
        out.push(Row {
            s,
            setting: "Tree discretization, base",
            stats: condense(&base_result),
        });
        let (gen_result, _) = run_exploration(&d, config, ExplorationMode::Generalized);
        out.push(Row {
            s,
            setting: "Tree discretization, generalized",
            stats: condense(&gen_result),
        });
    }
    out
}

/// Renders Table III.
pub fn run(args: Args) -> String {
    let body: Vec<Vec<String>> = rows(args)
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.s),
                r.setting.to_string(),
                r.stats.top_label.clone(),
                format!("{:.2}", r.stats.top_support),
                format!("{:+.3}", r.stats.max_divergence),
                format!("{:.1}", r.stats.top_t),
            ]
        })
        .collect();
    format!(
        "Table III — compas top FPR-divergent itemsets (st = 0.1)\n\
         paper reference (ΔFPR): s=0.05: manual 0.220 < base 0.363 < generalized 0.378;\n\
         s=0.025: 0.292 < 0.590 < 0.621;  s=0.01: 0.618 < 0.662 < 0.745\n\n{}",
        fmt_table(
            &["s", "Exploration approach", "Itemset", "Sup", "ΔFPR", "t"],
            &body
        ),
    )
}
