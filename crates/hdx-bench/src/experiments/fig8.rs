//! Fig. 8: sensitivity of the highest divergence to the discretization
//! support `st`, base vs generalized, on synthetic-peak and compas
//! (`s = 0.025`).

use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::{compas, default_rows, synthetic_peak, Dataset};

use crate::experiments::common::run_exploration;
use crate::plot::line_chart;
use crate::util::{fmt_table, Args};

/// The `st` sweep of Fig. 8 (note `st = 0.01 < s`, the regime where leaf
/// items fall below the exploration support and base exploration degrades).
pub const TREE_SUPPORTS: [f64; 8] = [0.01, 0.025, 0.05, 0.1, 0.125, 0.15, 0.175, 0.2];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Tree-node support `st`.
    pub st: f64,
    /// Base max divergence.
    pub base_div: f64,
    /// Generalized max divergence.
    pub gen_div: f64,
}

fn sweep(d: &Dataset) -> Vec<Point> {
    TREE_SUPPORTS
        .iter()
        .map(|&st| {
            let config = HDivExplorerConfig {
                min_support: 0.025,
                tree_min_support: st,
                ..HDivExplorerConfig::default()
            };
            let (_, base) = run_exploration(d, config, ExplorationMode::Base);
            let (_, gen) = run_exploration(d, config, ExplorationMode::Generalized);
            Point {
                dataset: d.name.clone(),
                st,
                base_div: base.max_divergence,
                gen_div: gen.max_divergence,
            }
        })
        .collect()
}

/// Computes the sweep for both datasets.
pub fn points(args: Args) -> Vec<Point> {
    let peak = synthetic_peak(args.rows(default_rows::SYNTHETIC_PEAK), args.seed);
    let comp = compas(args.rows(default_rows::COMPAS), args.seed);
    let mut out = sweep(&peak);
    out.extend(sweep(&comp));
    out
}

/// Renders Fig. 8.
pub fn run(args: Args) -> String {
    let pts = points(args);
    let body: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                format!("{}", p.st),
                format!("{:.3}", p.base_div),
                format!("{:.3}", p.gen_div),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig. 8 — highest divergence vs discretization support st (s = 0.025)\n\
         paper reference: the generalized curve is stable over a wide st range and\n\
         always at/above base; base degrades when st < s (leaf items become\n\
         infrequent) and both drop when st is very large (items too coarse)\n\n{}",
        fmt_table(&["dataset", "st", "maxΔ base", "maxΔ generalized"], &body),
    );
    let x_labels: Vec<String> = TREE_SUPPORTS.iter().map(|s| format!("{s}")).collect();
    let mut datasets: Vec<String> = pts.iter().map(|p| p.dataset.clone()).collect();
    datasets.dedup();
    for name in datasets {
        let of = |f: &dyn Fn(&Point) -> f64| -> Vec<f64> {
            pts.iter().filter(|p| p.dataset == name).map(f).collect()
        };
        out.push_str(&format!("\n{name}: max divergence vs st\n"));
        out.push_str(&line_chart(
            &x_labels,
            &[
                ("base", of(&|p| p.base_div)),
                ("generalized", of(&|p| p.gen_div)),
            ],
            9,
        ));
    }
    out
}
