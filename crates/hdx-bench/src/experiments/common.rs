//! Shared experiment plumbing.

use hdx_core::{
    ExplorationMode, HDivExplorer, HDivExplorerConfig, HDivResult, OutcomeFn, Termination,
};
use hdx_datasets::Dataset;
use hdx_stats::Outcome;

/// The outcome function each dataset is analysed with in the paper:
/// FPR divergence for compas (§VI-B), income divergence for folktables,
/// error-rate divergence for everything else (including synthetic-peak).
pub fn outcomes_for(dataset: &Dataset) -> Vec<Outcome> {
    match dataset.name.as_str() {
        "compas" => dataset.classification_outcomes(OutcomeFn::Fpr),
        "folktables" => dataset.target_outcomes(),
        _ => dataset.classification_outcomes(OutcomeFn::ErrorRate),
    }
}

/// Builds the H-DivExplorer pipeline for a dataset, attaching its
/// taxonomies.
pub fn pipeline_for(dataset: &Dataset, config: HDivExplorerConfig) -> HDivExplorer {
    let mut pipeline = HDivExplorer::new(config);
    for (attr, taxonomy) in &dataset.taxonomies {
        pipeline = pipeline.with_taxonomy(attr.clone(), taxonomy.clone());
    }
    pipeline
}

/// Condensed result of one exploration run.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Highest divergence found (`0.0` when nothing was mined).
    pub max_divergence: f64,
    /// Mining wall-clock seconds (excludes discretization).
    pub elapsed_secs: f64,
    /// Discretization wall-clock seconds.
    pub discretization_secs: f64,
    /// The top subgroup's label.
    pub top_label: String,
    /// The top subgroup's support.
    pub top_support: f64,
    /// The top subgroup's statistic.
    pub top_statistic: f64,
    /// The top subgroup's Welch t-value.
    pub top_t: f64,
    /// Number of frequent subgroups explored.
    pub n_subgroups: usize,
    /// How the run ended (`Complete` unless a budget/deadline tripped —
    /// a partial run's timings are not comparable to a complete one's).
    pub termination: Termination,
}

/// Runs a full pipeline exploration on a dataset and condenses the result.
pub fn run_exploration(
    dataset: &Dataset,
    config: HDivExplorerConfig,
    mode: ExplorationMode,
) -> (HDivResult, RunStats) {
    let outcomes = outcomes_for(dataset);
    let result = pipeline_for(dataset, config).fit_mode(&dataset.frame, &outcomes, mode);
    let stats = condense(&result);
    (result, stats)
}

/// Condenses an [`HDivResult`] into [`RunStats`].
pub fn condense(result: &HDivResult) -> RunStats {
    let top = result.report.top();
    RunStats {
        max_divergence: result.report.max_divergence().unwrap_or(0.0),
        elapsed_secs: result.report.elapsed.as_secs_f64(),
        discretization_secs: result.discretization_time.as_secs_f64(),
        top_label: top.map_or_else(|| "-".to_string(), |r| r.label.clone()),
        top_support: top.map_or(0.0, |r| r.support),
        top_statistic: top.and_then(|r| r.statistic).unwrap_or(f64::NAN),
        top_t: top.map_or(0.0, |r| r.t_value),
        n_subgroups: result.report.records.len(),
        termination: result.termination(),
    }
}
