//! Fig. 2: (a) the highest divergence and (b) the execution time of base
//! (dashed in the paper) vs hierarchical exploration, across the seven
//! classification datasets, sweeping the exploration support `s`
//! (`st = 0.1`, divergence gain criterion).

use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::classification_suite;

use crate::experiments::common::run_exploration;
use crate::plot::line_chart;
use crate::util::{fmt_table, Args};

/// The support sweep of Figs. 2–4.
pub const SUPPORTS: [f64; 4] = [0.05, 0.1, 0.15, 0.2];

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Dataset name.
    pub dataset: String,
    /// Exploration support.
    pub s: f64,
    /// Base (leaf-only) max divergence.
    pub base_div: f64,
    /// Hierarchical max divergence.
    pub hier_div: f64,
    /// Base mining seconds.
    pub base_secs: f64,
    /// Hierarchical mining seconds.
    pub hier_secs: f64,
}

/// Computes the sweep.
pub fn points(args: Args) -> Vec<Point> {
    let mut out = Vec::new();
    for dataset in classification_suite(args.scale, args.seed) {
        for s in SUPPORTS {
            let config = HDivExplorerConfig {
                min_support: s,
                tree_min_support: 0.1,
                ..HDivExplorerConfig::default()
            };
            let (_, base) = run_exploration(&dataset, config, ExplorationMode::Base);
            let (_, hier) = run_exploration(&dataset, config, ExplorationMode::Generalized);
            out.push(Point {
                dataset: dataset.name.clone(),
                s,
                base_div: base.max_divergence,
                hier_div: hier.max_divergence,
                base_secs: base.elapsed_secs,
                hier_secs: hier.elapsed_secs,
            });
        }
    }
    out
}

/// Renders Fig. 2 as two series tables.
pub fn run(args: Args) -> String {
    let pts = points(args);
    let body: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                format!("{}", p.s),
                format!("{:.3}", p.base_div),
                format!("{:.3}", p.hier_div),
                format!("{:.4}", p.base_secs),
                format!("{:.4}", p.hier_secs),
            ]
        })
        .collect();
    let mut out = format!(
        "Fig. 2 — max divergence (a) and execution time (b), base vs hierarchical\n\
         paper reference: hierarchical (solid) dominates base (dashed) on every dataset\n\
         and every support; hierarchical costs more time because it mines more items\n\n{}",
        fmt_table(
            &[
                "dataset",
                "s",
                "maxΔ base",
                "maxΔ hier",
                "t base (s)",
                "t hier (s)"
            ],
            &body
        ),
    );
    // Fig. 2a rendered per dataset.
    let x_labels: Vec<String> = SUPPORTS.iter().map(|s| format!("{s}")).collect();
    let mut datasets: Vec<String> = pts.iter().map(|p| p.dataset.clone()).collect();
    datasets.dedup();
    for name in datasets {
        let of = |f: &dyn Fn(&Point) -> f64| -> Vec<f64> {
            pts.iter().filter(|p| p.dataset == name).map(f).collect()
        };
        out.push_str(&format!("\n{name}: max divergence vs s\n"));
        out.push_str(&line_chart(
            &x_labels,
            &[
                ("base", of(&|p| p.base_div)),
                ("hierarchical", of(&|p| p.hier_div)),
            ],
            9,
        ));
    }
    out
}
