//! Fig. 6 / §VI-G: prior approaches on synthetic-peak.
//!
//! * Slice Finder with default parameters stops at a single-attribute slice
//!   (a one-term slice already clears the default effect-size threshold);
//!   raising the threshold to 1 makes it return a three-term slice — but
//!   with a vanishing support, because Slice Finder has no support control.
//! * SliceLine's best slices (α swept) match the base DivExplorer itemsets
//!   of Fig. 5 — base exploration is the shared limitation.

use hdx_baselines::{
    SliceFinder, SliceFinderConfig, SliceFinderResult, SliceLine, SliceLineConfig, SliceLineResult,
};
use hdx_core::{ExplorationMode, HDivExplorerConfig, OutcomeFn};
use hdx_datasets::{default_rows, synthetic_peak, Dataset};
use hdx_items::{ItemCatalog, ItemId};
use hdx_stats::Outcome;

use crate::experiments::common::{pipeline_for, run_exploration};
use crate::util::{fmt_table, Args};

/// The shared leaf-item discretization (tree leaves, st = 0.1, as in §VI-C).
fn leaf_items(d: &Dataset) -> (ItemCatalog, Vec<ItemId>, Vec<f64>) {
    let outcomes: Vec<Outcome> = d.classification_outcomes(OutcomeFn::ErrorRate);
    let pipeline = pipeline_for(d, HDivExplorerConfig::default());
    let (catalog, hierarchies, _) = pipeline.discretize(&d.frame, &outcomes);
    let items = hierarchies.leaf_items();
    let losses: Vec<f64> = outcomes.iter().map(|o| o.value().unwrap_or(0.0)).collect();
    (catalog, items, losses)
}

/// Structured Fig. 6 results.
#[derive(Debug)]
pub struct Fig6Results {
    /// Slice Finder, default parameters (T = 0.4): the slice the search
    /// stops at.
    pub sf_default: Option<SliceFinderResult>,
    /// Slice Finder with effect-size threshold 1.
    pub sf_threshold_1: Option<SliceFinderResult>,
    /// SliceLine best slices per (α, σ-as-support) combination.
    pub sliceline: Vec<(f64, f64, SliceLineResult)>,
    /// Base DivExplorer top itemsets at s = 0.05 / 0.025 for comparison.
    pub divexplorer_base: Vec<(f64, String, f64)>,
    /// Dataset size.
    pub n_rows: usize,
}

/// Runs the comparison.
pub fn results(args: Args) -> Fig6Results {
    let d = synthetic_peak(args.rows(default_rows::SYNTHETIC_PEAK), args.seed);
    let (catalog, items, losses) = leaf_items(&d);
    let n = d.n_rows();

    let sf_default =
        SliceFinder::new(SliceFinderConfig::default()).find(&d.frame, &catalog, &items, &losses);
    let sf_t1 = SliceFinder::new(SliceFinderConfig {
        effect_size_threshold: 1.0,
        ..SliceFinderConfig::default()
    })
    .find_best(&d.frame, &catalog, &items, &losses);

    let mut sliceline = Vec::new();
    for s in [0.05, 0.025] {
        for alpha in [0.85, 0.9, 0.95, 0.99] {
            let sl = SliceLine::new(SliceLineConfig {
                alpha,
                min_size: (s * n as f64).ceil() as usize,
                k: 1,
                ..SliceLineConfig::default()
            });
            if let Some(best) = sl
                .find(&d.frame, &catalog, &items, &losses)
                .into_iter()
                .next()
            {
                sliceline.push((alpha, s, best));
            }
        }
    }

    let mut divexplorer_base = Vec::new();
    for s in [0.05, 0.025] {
        let (_, stats) = run_exploration(
            &d,
            HDivExplorerConfig {
                min_support: s,
                ..HDivExplorerConfig::default()
            },
            ExplorationMode::Base,
        );
        divexplorer_base.push((s, stats.top_label, stats.max_divergence));
    }

    Fig6Results {
        sf_default: sf_default.into_iter().next(),
        sf_threshold_1: sf_t1,
        sliceline,
        divexplorer_base,
        n_rows: n,
    }
}

/// Renders Fig. 6 / §VI-G.
pub fn run(args: Args) -> String {
    let r = results(args);
    let mut out = String::from(
        "Fig. 6 / §VI-G — prior approaches on synthetic-peak (leaf items, st = 0.1)\n\
         paper reference: SF default stops at a 1-term slice (effect size 0.79 > 0.4);\n\
         SF with threshold 1 returns a 3-term slice of support 0.0013 (13 instances);\n\
         SliceLine's best slices match base DivExplorer's itemsets\n\n",
    );
    let n_rows = r.n_rows;
    let fmt_sf = move |r: &Option<SliceFinderResult>| {
        r.as_ref().map_or_else(
            || "(none found)".to_string(),
            |s| {
                format!(
                    "{}  size={} (sup {:.4})  effect={:.2}  mean-loss={:.2}",
                    s.label,
                    s.size,
                    s.size as f64 / n_rows as f64,
                    s.effect_size,
                    s.mean_loss
                )
            },
        )
    };
    out.push_str(&format!(
        "Slice Finder, default (T=0.4):  {}\n",
        fmt_sf(&r.sf_default)
    ));
    out.push_str(&format!(
        "Slice Finder, T=1.0 (best):     {}\n\n",
        fmt_sf(&r.sf_threshold_1)
    ));

    let sl_rows: Vec<Vec<String>> = r
        .sliceline
        .iter()
        .map(|(alpha, s, best)| {
            vec![
                format!("{alpha}"),
                format!("{s}"),
                best.label.clone(),
                format!("{:.4}", best.size as f64 / r.n_rows as f64),
                format!("{:.3}", best.mean_error),
            ]
        })
        .collect();
    out.push_str(&fmt_table(
        &["α", "min-sup", "SliceLine best slice", "sup", "mean error"],
        &sl_rows,
    ));
    out.push('\n');
    let dx_rows: Vec<Vec<String>> = r
        .divexplorer_base
        .iter()
        .map(|(s, label, div)| vec![format!("{s}"), label.clone(), format!("{div:+.3}")])
        .collect();
    out.push_str(&fmt_table(
        &["s", "base DivExplorer top itemset", "Δerror"],
        &dx_rows,
    ));
    out
}
