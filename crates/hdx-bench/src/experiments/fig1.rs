//! Fig. 1: the `#prior` item hierarchy produced by tree discretization on
//! the FPR of compas (`st = 0.1`).

use hdx_core::OutcomeFn;
use hdx_datasets::{compas, default_rows};
use hdx_discretize::{DiscretizationTree, GainCriterion, TreeDiscretizer};
use hdx_items::ItemCatalog;

use crate::util::Args;

/// Builds the `#prior` discretization tree.
pub fn tree(args: Args) -> (DiscretizationTree, ItemCatalog) {
    let d = compas(args.rows(default_rows::COMPAS), args.seed);
    let outcomes = d.classification_outcomes(OutcomeFn::Fpr);
    let attr = d.frame.schema().id("#prior").unwrap();
    let mut catalog = ItemCatalog::new();
    let discretizer = TreeDiscretizer::with_support(0.1, GainCriterion::Divergence);
    let (_, tree) = discretizer.discretize_attribute(&d.frame, attr, &outcomes, &mut catalog);
    (tree, catalog)
}

/// Renders Fig. 1.
pub fn run(args: Args) -> String {
    let (tree, catalog) = tree(args);
    format!(
        "Fig. 1 — item hierarchy for #prior on compas FPR (st = 0.1)\n\
         paper reference: root fpr=0.09; first split at #prior=3 (Δ −0.03 / +0.13);\n\
         #prior>3 refines into ≤8 (Δ +0.07) and >8 (Δ +0.30)\n\n{}",
        tree.render(&catalog),
    )
}
