//! Experiment runners, one submodule per paper table/figure.
//!
//! Every runner takes [`Args`](crate::Args) and returns the printable
//! artifact; binaries are thin wrappers, and the integration tests assert on
//! the structured results.

pub mod ablation;
mod common;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

pub use common::{outcomes_for, pipeline_for, run_exploration, RunStats};
