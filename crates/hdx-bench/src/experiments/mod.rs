//! Experiment runners, one submodule per paper table/figure.
//!
//! Every runner takes [`Args`](crate::Args) and returns the printable
//! artifact; binaries are thin wrappers, and the integration tests assert on
//! the structured results.

/// Ablation: combined decision tree vs per-attribute trees + lattice.
pub mod ablation;
mod common;
/// Fig. 1: the `#prior` item hierarchy from tree discretization on compas.
pub mod fig1;
/// Fig. 2: highest divergence and execution time, base vs hierarchical.
pub mod fig2;
/// Fig. 3: folktables divergence; divergence vs entropy split criteria.
pub mod fig3;
/// Fig. 4: complete vs polarity-pruned hierarchical exploration.
pub mod fig4;
/// Fig. 5: attribute ranges of the top synthetic-peak itemset.
pub mod fig5;
/// Fig. 6 / §VI-G: prior approaches on synthetic-peak.
pub mod fig6;
/// Fig. 7: quantile discretization vs tree-based hierarchical exploration.
pub mod fig7;
/// Fig. 8: divergence sensitivity to the discretization support `st`.
pub mod fig8;
/// Table I: compas FPR divergence under two `#prior` discretizations.
pub mod table1;
/// Table II: dataset characteristics.
pub mod table2;
/// Table III: top FPR-divergent compas itemsets per discretization.
pub mod table3;
/// Table IV: top income-divergent folktables itemsets, base vs generalized.
pub mod table4;

pub use common::{outcomes_for, pipeline_for, run_exploration, RunStats};
