//! Fig. 5: the attribute ranges of the most divergent synthetic-peak
//! itemset, base vs generalized exploration, `s ∈ {0.05, 0.025}`.
//!
//! The paper's headline: at `s = 0.05` the base exploration can only afford
//! an itemset over *one* attribute (Δerror ≈ 0.045), while the hierarchical
//! exploration constrains all three coordinates around the anomaly centre
//! `[0, 1, 2]` (Δerror ≈ 0.229) — over four times as divergent.

use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::{default_rows, synthetic_peak};
use hdx_items::Interval;

use crate::experiments::common::run_exploration;
use crate::util::{fmt_table, Args};

/// The best itemset of one run, as per-attribute ranges.
#[derive(Debug, Clone)]
pub struct BestItemset {
    /// Exploration support.
    pub s: f64,
    /// `"base"` or `"generalized"`.
    pub mode: &'static str,
    /// Per-attribute constrained range (attribute order a, b, c; `None` =
    /// unconstrained).
    pub ranges: [Option<Interval>; 3],
    /// The itemset's error-rate divergence.
    pub divergence: f64,
    /// The itemset's support.
    pub support: f64,
}

/// Computes Fig. 5's four panels.
pub fn best_itemsets(args: Args) -> Vec<BestItemset> {
    let d = synthetic_peak(args.rows(default_rows::SYNTHETIC_PEAK), args.seed);
    let mut out = Vec::new();
    for s in [0.05, 0.025] {
        for (mode, name) in [
            (ExplorationMode::Base, "base"),
            (ExplorationMode::Generalized, "generalized"),
        ] {
            let config = HDivExplorerConfig {
                min_support: s,
                tree_min_support: 0.1,
                ..HDivExplorerConfig::default()
            };
            let (result, stats) = run_exploration(&d, config, mode);
            let mut ranges: [Option<Interval>; 3] = [None, None, None];
            if let Some(top) = result.report.top() {
                for &item in top.itemset.items() {
                    let attr = result.catalog.attr_of(item);
                    if let Some(j) = result.catalog.item(item).interval() {
                        ranges[attr.index()] = Some(*j);
                    }
                }
            }
            out.push(BestItemset {
                s,
                mode: name,
                ranges,
                divergence: stats.max_divergence,
                support: stats.top_support,
            });
        }
    }
    out
}

/// Renders Fig. 5.
pub fn run(args: Args) -> String {
    let fmt_range =
        |r: &Option<Interval>| r.map_or_else(|| "(unconstrained)".to_string(), |j| j.to_string());
    let body: Vec<Vec<String>> = best_itemsets(args)
        .iter()
        .map(|b| {
            vec![
                format!("{}", b.s),
                b.mode.to_string(),
                fmt_range(&b.ranges[0]),
                fmt_range(&b.ranges[1]),
                fmt_range(&b.ranges[2]),
                format!("{:.3}", b.support),
                format!("{:+.3}", b.divergence),
            ]
        })
        .collect();
    format!(
        "Fig. 5 — ranges of the highest-divergence synthetic-peak itemset\n\
         paper reference: s=0.05: base constrains b only (Δ 0.045) vs generalized\n\
         constraining a, b and c around [0, 1, 2] (Δ 0.229);\n\
         s=0.025: base Δ 0.212 (b and c) vs generalized Δ 0.297 (a, b, c)\n\n{}",
        fmt_table(&["s", "mode", "a", "b", "c", "sup", "Δerror"], &body),
    )
}
