//! Fig. 3: (a) folktables highest income divergence, base vs hierarchical;
//! (b) divergence-based vs entropy-based split criteria on the
//! boolean-outcome datasets.

use hdx_core::{ExplorationMode, HDivExplorerConfig};
use hdx_datasets::{classification_suite, default_rows, folktables};
use hdx_discretize::GainCriterion;

use crate::experiments::common::run_exploration;
use crate::experiments::fig2::SUPPORTS;
use crate::util::{fmt_table, Args};

/// Fig. 3a point: folktables base vs hierarchical.
#[derive(Debug, Clone)]
pub struct FolkPoint {
    /// Exploration support.
    pub s: f64,
    /// Base max income divergence.
    pub base_div: f64,
    /// Hierarchical max income divergence.
    pub hier_div: f64,
}

/// Fig. 3b point: divergence vs entropy split criterion (hierarchical).
#[derive(Debug, Clone)]
pub struct CriterionPoint {
    /// Dataset name.
    pub dataset: String,
    /// Exploration support.
    pub s: f64,
    /// Max divergence with the divergence criterion.
    pub divergence_criterion: f64,
    /// Max divergence with the entropy criterion.
    pub entropy_criterion: f64,
}

/// Computes Fig. 3a.
pub fn folk_points(args: Args) -> Vec<FolkPoint> {
    let d = folktables(args.rows(default_rows::FOLKTABLES), args.seed);
    SUPPORTS
        .iter()
        .map(|&s| {
            let config = HDivExplorerConfig {
                min_support: s,
                max_len: Some(4),
                ..HDivExplorerConfig::default()
            };
            let (_, base) = run_exploration(&d, config, ExplorationMode::Base);
            let (_, hier) = run_exploration(&d, config, ExplorationMode::Generalized);
            FolkPoint {
                s,
                base_div: base.max_divergence,
                hier_div: hier.max_divergence,
            }
        })
        .collect()
}

/// Computes Fig. 3b.
pub fn criterion_points(args: Args) -> Vec<CriterionPoint> {
    let mut out = Vec::new();
    for dataset in classification_suite(args.scale, args.seed) {
        for s in SUPPORTS {
            let mk = |criterion| HDivExplorerConfig {
                min_support: s,
                criterion,
                ..HDivExplorerConfig::default()
            };
            let (_, div) = run_exploration(
                &dataset,
                mk(GainCriterion::Divergence),
                ExplorationMode::Generalized,
            );
            let (_, ent) = run_exploration(
                &dataset,
                mk(GainCriterion::Entropy),
                ExplorationMode::Generalized,
            );
            out.push(CriterionPoint {
                dataset: dataset.name.clone(),
                s,
                divergence_criterion: div.max_divergence,
                entropy_criterion: ent.max_divergence,
            });
        }
    }
    out
}

/// Renders Fig. 3.
pub fn run(args: Args) -> String {
    let folk: Vec<Vec<String>> = folk_points(args)
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.s),
                format!("{:.1}k", p.base_div / 1_000.0),
                format!("{:.1}k", p.hier_div / 1_000.0),
            ]
        })
        .collect();
    let crit: Vec<Vec<String>> = criterion_points(args)
        .iter()
        .map(|p| {
            vec![
                p.dataset.clone(),
                format!("{}", p.s),
                format!("{:.3}", p.divergence_criterion),
                format!("{:.3}", p.entropy_criterion),
            ]
        })
        .collect();
    format!(
        "Fig. 3a — folktables highest Δincome, base vs hierarchical\n\
         paper reference: hierarchical above base across the sweep (~119k vs ~105k at s=0.025)\n\n{}\n\
         Fig. 3b — divergence vs entropy split criteria (hierarchical exploration)\n\
         paper reference: the two criteria have similar effectiveness; divergence also\n\
         applies to non-probability outcomes\n\n{}",
        fmt_table(&["s", "maxΔ base", "maxΔ hier"], &folk),
        fmt_table(&["dataset", "s", "maxΔ divergence-crit", "maxΔ entropy-crit"], &crit),
    )
}
