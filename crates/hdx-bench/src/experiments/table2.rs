//! Table II: dataset characteristics.

use hdx_datasets::{classification_suite, default_rows, folktables, Dataset};

use crate::util::{fmt_table, Args};

/// Builds all eight datasets at the configured scale.
pub fn datasets(args: Args) -> Vec<Dataset> {
    let mut all = classification_suite(args.scale, args.seed);
    all.push(folktables(
        args.rows(default_rows::FOLKTABLES),
        args.seed.wrapping_add(7),
    ));
    all.sort_by(|a, b| a.name.cmp(&b.name));
    all
}

/// Renders Table II.
pub fn run(args: Args) -> String {
    let rows: Vec<Vec<String>> = datasets(args)
        .iter()
        .map(|d| {
            let schema = d.frame.schema();
            vec![
                d.name.clone(),
                d.n_rows().to_string(),
                schema.len().to_string(),
                schema.continuous_ids().len().to_string(),
                schema.categorical_ids().len().to_string(),
            ]
        })
        .collect();
    format!(
        "Table II — dataset characteristics (scale {scale:.2} of the paper's |D|)\n\
         paper reference: adult 45222/11/4/7, bank 45211/15/7/8, compas 6172/6/3/3,\n\
         folktables 195556/10/2/8, german 1000/21/7/14, intentions 12330/17/11/6,\n\
         synthetic-peak 10000/3/3/0, wine 9796/11/11/0\n\n{}",
        fmt_table(&["dataset", "|D|", "|A|", "|A|num", "|A|cat"], &rows),
        scale = args.scale,
    )
}
