//! Regenerates the paper's fig8 (see `hdx_bench::experiments::fig8`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig8::run(args));
}
