//! Regenerates the paper's table2 (see `hdx_bench::experiments::table2`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::table2::run(args));
}
