//! Regenerates the paper's fig6 (see `hdx_bench::experiments::fig6`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig6::run(args));
}
