//! Regenerates the paper's table3 (see `hdx_bench::experiments::table3`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::table3::run(args));
}
