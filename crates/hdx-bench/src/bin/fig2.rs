//! Regenerates the paper's fig2 (see `hdx_bench::experiments::fig2`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig2::run(args));
}
