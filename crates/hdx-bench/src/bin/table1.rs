//! Regenerates the paper's table1 (see `hdx_bench::experiments::table1`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::table1::run(args));
}
