//! Regenerates every paper table and figure in one go, writing each
//! artifact to `results/<name>.txt` (and echoing progress to stdout).
//!
//! ```text
//! cargo run --release -p hdx-bench --bin runall -- --scale 0.25
//! ```

use hdx_bench::experiments;
use hdx_bench::Args;
use hdx_obs::timing::measure;

fn main() -> std::io::Result<()> {
    let args = Args::from_env();
    let out_dir = std::path::Path::new("results");
    std::fs::create_dir_all(out_dir)?;

    type Runner = fn(Args) -> String;
    let runners: Vec<(&str, Runner)> = vec![
        ("table1", experiments::table1::run),
        ("table2", experiments::table2::run),
        ("table3", experiments::table3::run),
        ("table4", experiments::table4::run),
        ("fig1", experiments::fig1::run),
        ("fig2", experiments::fig2::run),
        ("fig3", experiments::fig3::run),
        ("fig4", experiments::fig4::run),
        ("fig5", experiments::fig5::run),
        ("fig6", experiments::fig6::run),
        ("fig7", experiments::fig7::run),
        ("fig8", experiments::fig8::run),
        ("ablation_combined_tree", experiments::ablation::run),
    ];
    let mut total_ns = 0u64;
    for (name, run) in runners {
        let (output, ns) = measure(|| run(args));
        let path = out_dir.join(format!("{name}.txt"));
        std::fs::write(&path, &output)?;
        total_ns += ns;
        println!(
            "{name:>24}  {:>8.2}s  -> {}",
            ns as f64 / 1e9,
            path.display()
        );
    }
    println!(
        "\nall artifacts regenerated in {:.1}s (scale {}, seed {})",
        total_ns as f64 / 1e9,
        args.scale,
        args.seed
    );
    Ok(())
}
