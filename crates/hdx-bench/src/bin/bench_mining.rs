//! Mining-performance harness: times the word-level outcome kernels against
//! the scalar reference path (micro), the three miners end to end
//! (synthetic-peak and compas), and the parallel miner's rows × threads
//! scaling curve, then writes machine-readable results to
//! `BENCH_mining.json` (`hdx-bench/mining/v4`), with the scheduler
//! steal/park counters summarised as derived utilization rates under
//! `"sched"` and the run's hdx-obs telemetry — per-stage spans, pruning
//! counters, the `hdx.bench.iter.latency_ns` histogram — embedded under
//! `"telemetry"`.
//!
//! Unlike the criterion benches this binary needs no bench runner, finishes
//! in seconds, and has a CI mode:
//!
//! ```text
//! bench_mining [--quick] [--enforce] [--out PATH]
//! ```
//!
//! `--quick` shrinks iteration, row and thread counts for smoke runs;
//! `--enforce` exits non-zero when a performance floor is missed (the
//! regression gate CI runs): the boolean dense kernel must beat the scalar
//! path, the numeric dense kernel must clear
//! [`NUMERIC_FLOOR_FULL`]/[`NUMERIC_FLOOR_QUICK`], and — only when the host
//! actually has ≥ 4 CPUs, since a smaller host cannot *measure* parallel
//! speedup — the 4-thread parallel efficiency on the largest scaling input
//! must clear [`EFFICIENCY_FLOOR`]. `--out` overrides the output path
//! (default `BENCH_mining.json` in the current directory).
//!
//! Schema history: v3 added `"kernel_path"`, `"host_cpus"` and the
//! `"scaling"` section, and re-sized the quick micro geometry (16 Ki → 32 Ki
//! rows) so per-call setup no longer dominates the quick kernel timings.
//! v4 added the `"sched"` section: the work-stealing scheduler's raw
//! steal/park counters and their per-thousand-emitted-itemsets rates
//! derived from the embedded telemetry.

use hdx_bench::experiments::{outcomes_for, pipeline_for};
use hdx_bench::splitmix64;
use hdx_core::HDivExplorerConfig;
use hdx_data::AttrId;
use hdx_datasets::{compas, synthetic_peak};
use hdx_items::{Bitset, Item, ItemCatalog};
use hdx_mining::{accum_scalar, mine, MiningAlgorithm, MiningConfig, Transactions};
use hdx_obs::timing::median_ns;
use hdx_stats::{active_kernel, Outcome, OutcomePlanes};
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;

/// `--enforce` floor for the numeric dense micro speedup in full mode (the
/// paper-repro acceptance bar; assumes a host with AVX-512 or comparable).
const NUMERIC_FLOOR_FULL: f64 = 8.0;
/// `--enforce` floor for the numeric dense micro speedup in quick (smoke)
/// mode — conservative enough for AVX2-only or portable-kernel CI runners.
const NUMERIC_FLOOR_QUICK: f64 = 2.5;
/// `--enforce` floor for 4-thread parallel efficiency on the largest
/// scaling input (checked only on hosts with ≥ 4 CPUs).
const EFFICIENCY_FLOOR: f64 = 0.6;

struct Opts {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        enforce: false,
        out: "BENCH_mining.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--enforce" => opts.enforce = true,
            "--out" => {
                opts.out = it.next().unwrap_or_else(|| panic!("usage: --out <path>"));
            }
            other => panic!("unknown flag `{other}`; supported: --quick --enforce --out <path>"),
        }
    }
    opts
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1)
}

/// One timed micro-comparison: ns per (cover, outcome-vector) accumulation
/// for the kernel and the scalar path, plus their ratio.
struct MicroResult {
    name: &'static str,
    rows: usize,
    covers: usize,
    kernel_ns: f64,
    scalar_ns: f64,
}

impl MicroResult {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.kernel_ns
    }
}

fn make_covers(n_rows: usize, n_covers: usize, seed: u64) -> Vec<Bitset> {
    let mut state = seed;
    (0..n_covers)
        .map(|_| {
            let mut cover = Bitset::new(n_rows);
            for row in 0..n_rows {
                if splitmix64(&mut state) & 1 == 1 {
                    cover.set(row);
                }
            }
            cover
        })
        .collect()
}

fn make_outcomes(kind: &str, n_rows: usize) -> Vec<Outcome> {
    let mut state = 0x5eed_0123_4567_89ab;
    (0..n_rows)
        .map(|_| {
            let bits = splitmix64(&mut state);
            match kind {
                "boolean_dense" => Outcome::Bool(bits & 1 == 1),
                "numeric_dense" => Outcome::Real((bits >> 11) as f64 * 1e-6),
                _ => match bits % 10 {
                    0 => Outcome::Undefined,
                    1..=5 => Outcome::Bool(bits & 2 == 2),
                    _ => Outcome::Real((bits >> 11) as f64 * 1e-6),
                },
            }
        })
        .collect()
}

fn micro(kind: &'static str, quick: bool) -> MicroResult {
    let (n_rows, n_covers, iters) = if quick {
        (32_768, 16, 7)
    } else {
        (131_072, 32, 15)
    };
    let covers = make_covers(n_rows, n_covers, 7);
    let counts: Vec<u64> = covers.iter().map(|c| c.count() as u64).collect();
    let outcomes = make_outcomes(kind, n_rows);
    let planes = OutcomePlanes::from_outcomes(&outcomes);

    hdx_obs::span!("bench", str kind);
    let kernel_total = median_ns(iters, || {
        for (cover, &n) in covers.iter().zip(&counts) {
            black_box(planes.accum(cover.words(), n));
        }
    });
    let scalar_total = median_ns(iters, || {
        for cover in &covers {
            black_box(accum_scalar(cover, &outcomes));
        }
    });
    MicroResult {
        name: kind,
        rows: n_rows,
        covers: n_covers,
        kernel_ns: kernel_total / n_covers as f64,
        scalar_ns: scalar_total / n_covers as f64,
    }
}

struct EndToEnd {
    dataset: String,
    algorithm: MiningAlgorithm,
    itemsets: usize,
    ms: f64,
}

fn end_to_end(quick: bool) -> Vec<EndToEnd> {
    let (rows_peak, rows_compas, iters) = if quick {
        (800, 600, 2)
    } else {
        (2_500, 1_543, 5)
    };
    let mut out = Vec::new();
    for dataset in [synthetic_peak(rows_peak, 1), compas(rows_compas, 1)] {
        hdx_obs::span!("bench", owned dataset.name.clone());
        let outcomes = outcomes_for(&dataset);
        let pipeline = pipeline_for(&dataset, HDivExplorerConfig::default());
        let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
        let transactions =
            Transactions::encode_generalized(&dataset.frame, &catalog, &hierarchies, &outcomes);
        for algorithm in [
            MiningAlgorithm::Apriori,
            MiningAlgorithm::FpGrowth,
            MiningAlgorithm::Vertical,
            MiningAlgorithm::VerticalParallel,
        ] {
            let config = MiningConfig {
                min_support: 0.05,
                max_len: None,
                algorithm,
                threads: None,
            };
            let itemsets = mine(&transactions, &catalog, &config).itemsets.len();
            let ns = median_ns(iters, || {
                black_box(mine(&transactions, &catalog, &config).itemsets.len());
            });
            out.push(EndToEnd {
                dataset: dataset.name.clone(),
                algorithm,
                itemsets,
                ms: ns / 1e6,
            });
        }
    }
    out
}

/// One cell of the rows × threads scaling matrix. `threads == 0` encodes the
/// serial [`MiningAlgorithm::Vertical`] reference row.
struct ScalingCell {
    rows: usize,
    threads: usize,
    itemsets: usize,
    ms: f64,
    /// `T(1 thread) / (threads · T(threads))` within the same row count;
    /// 1.0 for the 1-thread baseline, `None` for the serial reference.
    efficiency: Option<f64>,
}

/// Synthetic scaling input: `n_attrs` categorical attributes of
/// `values_per_attr` levels each (one item per attribute per row, uniform)
/// with a numeric outcome, so the parallel scaling run exercises the
/// masked-sum kernels and a `n_attrs · values_per_attr`-root DFS.
fn scaling_input(n_rows: usize) -> (Transactions, ItemCatalog) {
    const N_ATTRS: usize = 6;
    const VALUES_PER_ATTR: u32 = 3;
    static NAMES: [&str; 6] = ["a", "b", "c", "d", "e", "f"];
    static LEVELS: [&str; 3] = ["0", "1", "2"];
    let mut catalog = ItemCatalog::new();
    let ids: Vec<Vec<_>> = (0..N_ATTRS)
        .map(|a| {
            (0..VALUES_PER_ATTR)
                // BOUND: `a < N_ATTRS = NAMES.len()`; `v < 3 = LEVELS.len()`.
                .map(|v| {
                    catalog.intern(Item::cat_eq(
                        AttrId(a as u16),
                        v,
                        NAMES[a],
                        LEVELS[v as usize],
                    ))
                })
                .collect()
        })
        .collect();
    let mut state = 0x5ca1_ab1e_0000_0001;
    let mut rows = Vec::with_capacity(n_rows);
    let mut outcomes = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let row: Vec<_> = ids
            .iter()
            .map(|attr| {
                let bits = splitmix64(&mut state);
                // BOUND: index taken modulo the per-attribute item count.
                attr[(bits % VALUES_PER_ATTR as u64) as usize]
            })
            .collect();
        rows.push(row);
        outcomes.push(Outcome::Real((splitmix64(&mut state) >> 11) as f64 * 1e-6));
    }
    (Transactions::from_rows(rows, outcomes), catalog)
}

/// Times the parallel miner over a rows × threads matrix (plus a serial
/// reference per row count) on the synthetic scaling input.
fn scaling(quick: bool) -> Vec<ScalingCell> {
    let (row_sizes, thread_counts, iters): (&[usize], &[usize], usize) = if quick {
        (&[16_384, 65_536], &[1, 2, 4], 2)
    } else {
        (&[65_536, 1_048_576], &[1, 2, 4, 8], 3)
    };
    let mut out = Vec::new();
    for &n_rows in row_sizes {
        hdx_obs::span!("scaling", int n_rows as i64);
        let (transactions, catalog) = scaling_input(n_rows);
        let serial = MiningConfig {
            min_support: 0.01,
            max_len: None,
            algorithm: MiningAlgorithm::Vertical,
            threads: None,
        };
        let itemsets = mine(&transactions, &catalog, &serial).itemsets.len();
        let serial_ns = median_ns(iters, || {
            black_box(mine(&transactions, &catalog, &serial).itemsets.len());
        });
        out.push(ScalingCell {
            rows: n_rows,
            threads: 0,
            itemsets,
            ms: serial_ns / 1e6,
            efficiency: None,
        });
        let mut one_thread_ms = 0.0f64;
        for &k in thread_counts {
            let config = MiningConfig {
                algorithm: MiningAlgorithm::VerticalParallel,
                threads: Some(k),
                ..serial
            };
            let ns = median_ns(iters, || {
                black_box(mine(&transactions, &catalog, &config).itemsets.len());
            });
            let ms = ns / 1e6;
            if k == 1 {
                one_thread_ms = ms;
            }
            let efficiency = if one_thread_ms > 0.0 {
                Some(one_thread_ms / (k as f64 * ms))
            } else {
                None
            };
            out.push(ScalingCell {
                rows: n_rows,
                threads: k,
                itemsets,
                ms,
                efficiency,
            });
        }
    }
    out
}

fn render_json(
    mode: &str,
    micros: &[MicroResult],
    e2e: &[EndToEnd],
    cells: &[ScalingCell],
    telemetry: &hdx_obs::RunTelemetry,
) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"hdx-bench/mining/v4\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"kernel_path\": \"{}\",", active_kernel().as_str());
    let _ = writeln!(json, "  \"host_cpus\": {},", host_cpus());
    let _ = writeln!(json, "  \"micro\": [");
    for (i, m) in micros.iter().enumerate() {
        let comma = if i + 1 < micros.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"rows\": {}, \"covers\": {}, \
             \"kernel_ns_per_cover\": {:.1}, \"scalar_ns_per_cover\": {:.1}, \
             \"speedup\": {:.2}}}{comma}",
            m.name,
            m.rows,
            m.covers,
            m.kernel_ns,
            m.scalar_ns,
            m.speedup(),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"end_to_end\": [");
    for (i, e) in e2e.iter().enumerate() {
        let comma = if i + 1 < e2e.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"algorithm\": \"{:?}\", \
             \"itemsets\": {}, \"ms\": {:.3}}}{comma}",
            e.dataset, e.algorithm, e.itemsets, e.ms,
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"scaling\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let algorithm = if c.threads == 0 {
            "Vertical"
        } else {
            "VerticalParallel"
        };
        let efficiency = c
            .efficiency
            .map_or("null".to_string(), |e| format!("{e:.3}"));
        let _ = writeln!(
            json,
            "    {{\"rows\": {}, \"algorithm\": \"{algorithm}\", \"threads\": {}, \
             \"itemsets\": {}, \"ms\": {:.3}, \"efficiency\": {efficiency}}}{comma}",
            c.rows, c.threads, c.itemsets, c.ms,
        );
    }
    let _ = writeln!(json, "  ],");
    // The parallel miner's scheduler health at a glance: raw steal/park
    // counts plus utilization rates normalized per thousand emitted
    // itemsets, so runs of different sizes compare directly.
    let sched = telemetry.sched_rates();
    let _ = writeln!(
        json,
        "  \"sched\": {{\"steals\": {}, \"parks\": {}, \
         \"steals_per_1k_itemsets\": {:.3}, \"parks_per_1k_itemsets\": {:.3}}},",
        sched.steals, sched.parks, sched.steals_per_1k_itemsets, sched.parks_per_1k_itemsets,
    );
    // Embed the run telemetry verbatim (re-indented) so one artifact carries
    // both the headline numbers and the per-stage breakdown behind them.
    let nested = telemetry.to_json();
    let _ = write!(
        json,
        "  \"telemetry\": {}",
        nested.trim_end().replace('\n', "\n  ")
    );
    let _ = writeln!(json, "\n}}");
    json
}

/// The `--enforce` gates; returns an error message for the first missed
/// floor. The parallel-efficiency floor only applies on hosts with enough
/// CPUs to run the measured threads truly in parallel — a 1-core runner
/// timesharing 4 workers measures scheduling, not scaling.
fn enforce(quick: bool, micros: &[MicroResult], cells: &[ScalingCell]) -> Result<(), String> {
    let micro_of = |name: &str| {
        micros
            .iter()
            .find(|m| m.name == name)
            .unwrap_or_else(|| panic!("{name} micro always runs"))
    };
    let boolean = micro_of("boolean_dense");
    if boolean.speedup() < 1.0 {
        return Err(format!(
            "boolean dense kernel is {:.2}x scalar (must be >= 1.0x)",
            boolean.speedup()
        ));
    }
    let numeric = micro_of("numeric_dense");
    let floor = if quick {
        NUMERIC_FLOOR_QUICK
    } else {
        NUMERIC_FLOOR_FULL
    };
    if numeric.speedup() < floor {
        return Err(format!(
            "numeric dense kernel is {:.2}x scalar (must be >= {floor:.1}x; \
             kernel path {})",
            numeric.speedup(),
            active_kernel().as_str()
        ));
    }
    println!(
        "enforce OK: boolean {:.2}x, numeric {:.2}x (floor {floor:.1}x, kernel {})",
        boolean.speedup(),
        numeric.speedup(),
        active_kernel().as_str()
    );
    const GATED_THREADS: usize = 4;
    if host_cpus() < GATED_THREADS {
        println!(
            "enforce: skipping parallel-efficiency floor (host has {} CPU(s), gate needs {})",
            host_cpus(),
            GATED_THREADS
        );
        return Ok(());
    }
    let largest = cells.iter().map(|c| c.rows).max().unwrap_or(0);
    let gated = cells
        .iter()
        .find(|c| c.rows == largest && c.threads == GATED_THREADS);
    match gated.and_then(|c| c.efficiency) {
        Some(eff) if eff < EFFICIENCY_FLOOR => Err(format!(
            "parallel efficiency at {GATED_THREADS} threads on {largest} rows is {eff:.3} \
             (must be >= {EFFICIENCY_FLOOR})"
        )),
        Some(eff) => {
            println!(
                "enforce OK: parallel efficiency {eff:.3} at {GATED_THREADS} threads on \
                 {largest} rows"
            );
            Ok(())
        }
        None => {
            println!("enforce: no {GATED_THREADS}-thread scaling cell measured; skipping");
            Ok(())
        }
    }
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let mode = if opts.quick { "quick" } else { "full" };
    hdx_obs::reset();

    let micros: Vec<MicroResult> = ["boolean_dense", "numeric_dense", "mixed"]
        .into_iter()
        .map(|kind| micro(kind, opts.quick))
        .collect();
    for m in &micros {
        println!(
            "micro {:>14}: kernel {:>12.1} ns/cover  scalar {:>12.1} ns/cover  speedup {:>6.2}x",
            m.name,
            m.kernel_ns,
            m.scalar_ns,
            m.speedup(),
        );
    }
    let e2e = end_to_end(opts.quick);
    for e in &e2e {
        println!(
            "e2e {:>16}/{:<16?} {:>6} itemsets  {:>9.3} ms",
            e.dataset, e.algorithm, e.itemsets, e.ms,
        );
    }
    let cells = scaling(opts.quick);
    for c in &cells {
        let eff = c
            .efficiency
            .map_or_else(|| "  (serial)".to_string(), |e| format!(" eff {e:.3}"));
        println!(
            "scaling {:>9} rows  {:>2} thread(s)  {:>6} itemsets  {:>9.3} ms{eff}",
            c.rows, c.threads, c.itemsets, c.ms,
        );
    }

    let json = render_json(mode, &micros, &e2e, &cells, &hdx_obs::collect());
    if let Err(err) = std::fs::write(&opts.out, &json) {
        eprintln!("cannot write {}: {err}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if opts.enforce {
        if let Err(msg) = enforce(opts.quick, &micros, &cells) {
            eprintln!("REGRESSION: {msg}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
