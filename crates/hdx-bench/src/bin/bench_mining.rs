//! Mining-performance harness: times the word-level outcome kernels against
//! the scalar reference path (micro) and the three miners end to end
//! (synthetic-peak and compas), then writes machine-readable results to
//! `BENCH_mining.json` (`hdx-bench/mining/v2`), with the run's hdx-obs
//! telemetry — per-stage spans, pruning counters, the
//! `hdx.bench.iter.latency_ns` histogram — embedded under `"telemetry"`.
//!
//! Unlike the criterion benches this binary needs no bench runner, finishes
//! in seconds, and has a CI mode:
//!
//! ```text
//! bench_mining [--quick] [--enforce] [--out PATH]
//! ```
//!
//! `--quick` shrinks iteration counts and row counts for smoke runs;
//! `--enforce` exits non-zero if the boolean dense kernel is not faster than
//! the scalar path (the regression gate CI runs); `--out` overrides the
//! output path (default `BENCH_mining.json` in the current directory).

use hdx_bench::experiments::{outcomes_for, pipeline_for};
use hdx_bench::splitmix64;
use hdx_core::HDivExplorerConfig;
use hdx_datasets::{compas, synthetic_peak};
use hdx_items::Bitset;
use hdx_mining::{accum_scalar, mine, MiningAlgorithm, MiningConfig, Transactions};
use hdx_obs::timing::median_ns;
use hdx_stats::{Outcome, OutcomePlanes};
use std::fmt::Write as _;
use std::hint::black_box;
use std::process::ExitCode;

struct Opts {
    quick: bool,
    enforce: bool,
    out: String,
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        quick: false,
        enforce: false,
        out: "BENCH_mining.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--quick" => opts.quick = true,
            "--enforce" => opts.enforce = true,
            "--out" => {
                opts.out = it.next().unwrap_or_else(|| panic!("usage: --out <path>"));
            }
            other => panic!("unknown flag `{other}`; supported: --quick --enforce --out <path>"),
        }
    }
    opts
}

/// One timed micro-comparison: ns per (cover, outcome-vector) accumulation
/// for the kernel and the scalar path, plus their ratio.
struct MicroResult {
    name: &'static str,
    rows: usize,
    covers: usize,
    kernel_ns: f64,
    scalar_ns: f64,
}

impl MicroResult {
    fn speedup(&self) -> f64 {
        self.scalar_ns / self.kernel_ns
    }
}

fn make_covers(n_rows: usize, n_covers: usize, seed: u64) -> Vec<Bitset> {
    let mut state = seed;
    (0..n_covers)
        .map(|_| {
            let mut cover = Bitset::new(n_rows);
            for row in 0..n_rows {
                if splitmix64(&mut state) & 1 == 1 {
                    cover.set(row);
                }
            }
            cover
        })
        .collect()
}

fn make_outcomes(kind: &str, n_rows: usize) -> Vec<Outcome> {
    let mut state = 0x5eed_0123_4567_89ab;
    (0..n_rows)
        .map(|_| {
            let bits = splitmix64(&mut state);
            match kind {
                "boolean_dense" => Outcome::Bool(bits & 1 == 1),
                "numeric_dense" => Outcome::Real((bits >> 11) as f64 * 1e-6),
                _ => match bits % 10 {
                    0 => Outcome::Undefined,
                    1..=5 => Outcome::Bool(bits & 2 == 2),
                    _ => Outcome::Real((bits >> 11) as f64 * 1e-6),
                },
            }
        })
        .collect()
}

fn micro(kind: &'static str, quick: bool) -> MicroResult {
    let (n_rows, n_covers, iters) = if quick {
        (16_384, 16, 5)
    } else {
        (131_072, 32, 15)
    };
    let covers = make_covers(n_rows, n_covers, 7);
    let counts: Vec<u64> = covers.iter().map(|c| c.count() as u64).collect();
    let outcomes = make_outcomes(kind, n_rows);
    let planes = OutcomePlanes::from_outcomes(&outcomes);

    hdx_obs::span!("bench", str kind);
    let kernel_total = median_ns(iters, || {
        for (cover, &n) in covers.iter().zip(&counts) {
            black_box(planes.accum(cover.words(), n));
        }
    });
    let scalar_total = median_ns(iters, || {
        for cover in &covers {
            black_box(accum_scalar(cover, &outcomes));
        }
    });
    MicroResult {
        name: kind,
        rows: n_rows,
        covers: n_covers,
        kernel_ns: kernel_total / n_covers as f64,
        scalar_ns: scalar_total / n_covers as f64,
    }
}

struct EndToEnd {
    dataset: String,
    algorithm: MiningAlgorithm,
    itemsets: usize,
    ms: f64,
}

fn end_to_end(quick: bool) -> Vec<EndToEnd> {
    let (rows_peak, rows_compas, iters) = if quick {
        (800, 600, 2)
    } else {
        (2_500, 1_543, 5)
    };
    let mut out = Vec::new();
    for dataset in [synthetic_peak(rows_peak, 1), compas(rows_compas, 1)] {
        hdx_obs::span!("bench", owned dataset.name.clone());
        let outcomes = outcomes_for(&dataset);
        let pipeline = pipeline_for(&dataset, HDivExplorerConfig::default());
        let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
        let transactions =
            Transactions::encode_generalized(&dataset.frame, &catalog, &hierarchies, &outcomes);
        for algorithm in [
            MiningAlgorithm::Apriori,
            MiningAlgorithm::FpGrowth,
            MiningAlgorithm::Vertical,
            MiningAlgorithm::VerticalParallel,
        ] {
            let config = MiningConfig {
                min_support: 0.05,
                max_len: None,
                algorithm,
            };
            let itemsets = mine(&transactions, &catalog, &config).itemsets.len();
            let ns = median_ns(iters, || {
                black_box(mine(&transactions, &catalog, &config).itemsets.len());
            });
            out.push(EndToEnd {
                dataset: dataset.name.clone(),
                algorithm,
                itemsets,
                ms: ns / 1e6,
            });
        }
    }
    out
}

fn render_json(
    mode: &str,
    micros: &[MicroResult],
    e2e: &[EndToEnd],
    telemetry: &hdx_obs::RunTelemetry,
) -> String {
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"schema\": \"hdx-bench/mining/v2\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"micro\": [");
    for (i, m) in micros.iter().enumerate() {
        let comma = if i + 1 < micros.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"rows\": {}, \"covers\": {}, \
             \"kernel_ns_per_cover\": {:.1}, \"scalar_ns_per_cover\": {:.1}, \
             \"speedup\": {:.2}}}{comma}",
            m.name,
            m.rows,
            m.covers,
            m.kernel_ns,
            m.scalar_ns,
            m.speedup(),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"end_to_end\": [");
    for (i, e) in e2e.iter().enumerate() {
        let comma = if i + 1 < e2e.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"dataset\": \"{}\", \"algorithm\": \"{:?}\", \
             \"itemsets\": {}, \"ms\": {:.3}}}{comma}",
            e.dataset, e.algorithm, e.itemsets, e.ms,
        );
    }
    let _ = writeln!(json, "  ],");
    // Embed the run telemetry verbatim (re-indented) so one artifact carries
    // both the headline numbers and the per-stage breakdown behind them.
    let nested = telemetry.to_json();
    let _ = write!(
        json,
        "  \"telemetry\": {}",
        nested.trim_end().replace('\n', "\n  ")
    );
    let _ = writeln!(json, "\n}}");
    json
}

fn main() -> ExitCode {
    let opts = parse_opts();
    let mode = if opts.quick { "quick" } else { "full" };
    hdx_obs::reset();

    let micros: Vec<MicroResult> = ["boolean_dense", "numeric_dense", "mixed"]
        .into_iter()
        .map(|kind| micro(kind, opts.quick))
        .collect();
    for m in &micros {
        println!(
            "micro {:>14}: kernel {:>12.1} ns/cover  scalar {:>12.1} ns/cover  speedup {:>6.2}x",
            m.name,
            m.kernel_ns,
            m.scalar_ns,
            m.speedup(),
        );
    }
    let e2e = end_to_end(opts.quick);
    for e in &e2e {
        println!(
            "e2e {:>16}/{:<16?} {:>6} itemsets  {:>9.3} ms",
            e.dataset, e.algorithm, e.itemsets, e.ms,
        );
    }

    let json = render_json(mode, &micros, &e2e, &hdx_obs::collect());
    if let Err(err) = std::fs::write(&opts.out, &json) {
        eprintln!("cannot write {}: {err}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);

    if opts.enforce {
        let boolean = micros
            .iter()
            .find(|m| m.name == "boolean_dense")
            .expect("boolean_dense micro always runs");
        if boolean.speedup() < 1.0 {
            eprintln!(
                "REGRESSION: boolean dense kernel is {:.2}x scalar (must be >= 1.0x)",
                boolean.speedup()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "enforce OK: boolean dense kernel {:.2}x scalar",
            boolean.speedup()
        );
    }
    ExitCode::SUCCESS
}
