//! Regenerates the paper's fig7 (see `hdx_bench::experiments::fig7`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig7::run(args));
}
