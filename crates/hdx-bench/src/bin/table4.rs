//! Regenerates the paper's table4 (see `hdx_bench::experiments::table4`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::table4::run(args));
}
