//! Ablation: combined tree vs lattice exploration (paper §V-A Discussion).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::ablation::run(args));
}
