//! Regenerates the paper's fig1 (see `hdx_bench::experiments::fig1`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig1::run(args));
}
