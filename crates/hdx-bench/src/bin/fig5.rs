//! Regenerates the paper's fig5 (see `hdx_bench::experiments::fig5`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig5::run(args));
}
