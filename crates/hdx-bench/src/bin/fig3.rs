//! Regenerates the paper's fig3 (see `hdx_bench::experiments::fig3`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig3::run(args));
}
