//! Regenerates the paper's fig4 (see `hdx_bench::experiments::fig4`).

fn main() {
    let args = hdx_bench::Args::from_env();
    print!("{}", hdx_bench::experiments::fig4::run(args));
}
