//! Harness utilities: CLI arguments and text tables.

/// Common experiment arguments, parsed from `--scale <f>` / `--seed <u>`.
#[derive(Debug, Clone, Copy)]
pub struct Args {
    /// Dataset scale relative to the paper's row counts (default 0.25 —
    /// full-size folktables mining at s=0.01 is minutes of work; 0.25 keeps
    /// every binary comfortably interactive while preserving every
    /// comparison).
    pub scale: f64,
    /// Generator seed (default 42).
    pub seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            scale: 0.25,
            seed: 42,
        }
    }
}

impl Args {
    /// Parses from an iterator of CLI arguments (excluding `argv[0]`).
    ///
    /// # Panics
    /// Panics on malformed flags, with a usage message.
    pub fn parse(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut raw = |name: &str| -> String {
                it.next()
                    .unwrap_or_else(|| panic!("usage: --{name} <value>"))
            };
            match flag.as_str() {
                "--scale" => {
                    let v = raw("scale");
                    out.scale = v
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid --scale `{v}`"));
                }
                "--seed" => {
                    let v = raw("seed");
                    out.seed = v
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid --seed `{v}` (expected an integer)"));
                }
                other => panic!("unknown flag `{other}`; supported: --scale <f64>, --seed <u64>"),
            }
        }
        assert!(out.scale > 0.0, "scale must be positive");
        out
    }

    /// Parses from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Scales a paper-size row count (floor 200).
    pub fn rows(&self, full: usize) -> usize {
        ((full as f64 * self.scale) as usize).max(200)
    }
}

/// Formats an aligned text table.
pub fn fmt_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row arity mismatch");
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], out: &mut String| {
        for (c, cell) in cells.iter().enumerate() {
            if c > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.push_str(&" ".repeat(widths[c].saturating_sub(cell.chars().count())));
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let headers: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    fmt_row(&headers, &mut out);
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    fmt_row(&sep, &mut out);
    for row in rows {
        fmt_row(row, &mut out);
    }
    out
}

/// SplitMix64 step — the deterministic bit source the kernel benches use to
/// build covers and outcome vectors without depending on `rand`'s stream
/// stability across versions.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let d = Args::parse(Vec::<String>::new());
        assert_eq!(d.scale, 0.25);
        assert_eq!(d.seed, 42);
        let a = Args::parse(
            ["--scale", "0.5", "--seed", "7"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(a.scale, 0.5);
        assert_eq!(a.seed, 7);
        // Large seeds survive exactly (no float round-trip).
        let big = Args::parse(
            ["--seed", "18446744073709551615"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(big.seed, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid --seed")]
    fn fractional_seed_rejected() {
        let _ = Args::parse(["--seed", "3.9"].iter().map(|s| s.to_string()));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flag_panics() {
        let _ = Args::parse(["--bogus".to_string()]);
    }

    #[test]
    fn rows_scale_with_floor() {
        let a = Args {
            scale: 0.1,
            seed: 0,
        };
        assert_eq!(a.rows(10_000), 1_000);
        assert_eq!(a.rows(500), 200, "floor applies");
    }

    #[test]
    fn splitmix_is_deterministic_and_advances() {
        let (mut a, mut b) = (42u64, 42u64);
        let first = splitmix64(&mut a);
        assert_eq!(first, splitmix64(&mut b));
        assert_eq!(a, b, "state advances identically");
        assert_ne!(first, splitmix64(&mut a), "stream advances");
    }

    #[test]
    fn table_alignment() {
        let t = fmt_table(
            &["name", "v"],
            &[
                vec!["a".into(), "1.0".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("longer"));
    }
}
