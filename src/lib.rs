//! # h-divexplorer
//!
//! Facade crate for the Rust reproduction of **"A Hierarchical Approach to
//! Anomalous Subgroup Discovery"** (Pastor, Baralis, de Alfaro — ICDE 2023).
//!
//! Re-exports the public API of every workspace crate so downstream users can
//! depend on a single crate:
//!
//! * [`data`] — columnar dataset substrate;
//! * [`stats`] — entropy, Welch's t-test, distributions;
//! * [`items`] — items, itemsets, item hierarchies;
//! * [`discretize`] — hierarchical tree discretization and baselines;
//! * [`mining`] — (generalized) frequent-itemset mining with statistic
//!   accumulation;
//! * [`core`] — DivExplorer / H-DivExplorer pipelines, divergence, polarity
//!   pruning;
//! * [`model`] — decision tree and random forest classifiers;
//! * [`datasets`] — synthetic-peak and the synthetic dataset stand-ins;
//! * [`baselines`] — Slice Finder and SliceLine;
//! * [`governor`] — run budgets, deadlines and cooperative cancellation;
//! * [`checkpoint`] — crash-safe checkpoint/resume for mining runs;
//! * [`ingest`] — crash-safe streaming row ingestion (durable WAL, fold).

pub use hdx_baselines as baselines;
pub use hdx_checkpoint as checkpoint;
pub use hdx_core as core;
pub use hdx_data as data;
pub use hdx_datasets as datasets;
pub use hdx_discretize as discretize;
pub use hdx_governor as governor;
pub use hdx_ingest as ingest;
pub use hdx_items as items;
pub use hdx_mining as mining;
pub use hdx_model as model;
pub use hdx_serve as serve;
pub use hdx_stats as stats;

/// Commonly used types, suitable for `use h_divexplorer::prelude::*`.
pub mod prelude {
    pub use hdx_core::{
        DivExplorer, DivergenceReport, ExplorationConfig, HDivExplorer, OutcomeFn, SubgroupRecord,
    };
    pub use hdx_data::{DataFrame, DataFrameBuilder, Schema, Value};
    pub use hdx_discretize::{GainCriterion, TreeDiscretizer, TreeDiscretizerConfig};
    pub use hdx_governor::{CancelReason, CancelToken, RunBudget, Termination};
    pub use hdx_items::{Item, ItemCatalog, ItemHierarchy, ItemId, Itemset};
    pub use hdx_mining::MiningAlgorithm;
}
