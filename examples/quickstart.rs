//! Quickstart: find anomalous subgroups in a small synthetic dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! We build a toy loan-scoring dataset whose model makes most of its
//! mistakes for young applicants with short credit histories, then let
//! H-DivExplorer find that subgroup at the right granularity.

use h_divexplorer::core::{HDivExplorer, HDivExplorerConfig, OutcomeFn};
use h_divexplorer::data::{DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Assemble a dataset: two continuous attributes, one categorical.
    let mut builder = DataFrameBuilder::new();
    builder.add_continuous("age").unwrap();
    builder.add_continuous("history_years").unwrap();
    builder.add_categorical("region").unwrap();

    let mut y_true = Vec::new();
    let mut y_pred = Vec::new();
    for _ in 0..5_000 {
        let age: f64 = rng.random_range(18.0..80.0);
        let history: f64 = rng.random_range(0.0..(age - 17.0).min(30.0));
        let region = ["north", "south", "east", "west"][rng.random_range(0..4usize)];
        builder
            .push_row(vec![
                Value::Num(age.round()),
                Value::Num(history.round()),
                Value::Cat(region.into()),
            ])
            .unwrap();

        // Ground truth: repayment is mostly driven by credit history.
        let repaid = rng.random::<f64>() < 0.6 + 0.01 * history;
        // The "model" errs heavily for young applicants with short history.
        let hard_case = age < 30.0 && history < 4.0;
        let err = if hard_case {
            rng.random::<f64>() < 0.45
        } else {
            rng.random::<f64>() < 0.05
        };
        y_true.push(repaid);
        y_pred.push(repaid != err);
    }
    let frame = builder.finish();

    // 2. Pick the statistic: error-rate divergence.
    let outcomes = OutcomeFn::ErrorRate.compute(&y_true, &y_pred);

    // 3. Run the hierarchical pipeline: tree discretization (st = 0.1) +
    //    generalized exploration (s = 0.05).
    let result = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.05,
        tree_min_support: 0.1,
        ..HDivExplorerConfig::default()
    })
    .fit(&frame, &outcomes);

    println!(
        "global error rate: {:.3}\n",
        result.report.global_statistic.unwrap()
    );
    println!("top divergent subgroups:\n{}", result.report.table(8));

    // 4. Inspect the discretization hierarchy of `age` (Fig. 1 style).
    println!(
        "age discretization tree:\n{}",
        result.trees[0].render(&result.catalog)
    );
}
