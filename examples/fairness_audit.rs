//! Fairness audit: false-positive-rate divergence on a compas-like dataset.
//!
//! ```text
//! cargo run --release --example fairness_audit
//! ```
//!
//! Mirrors the paper's §VI-B analysis: which defendant subgroups are
//! incorrectly predicted to recidivate far more often than average? We
//! compare the base (leaf-items-only) exploration with the hierarchical one
//! and show that the hierarchy finds strictly more divergent subgroups.

use h_divexplorer::core::{ExplorationMode, HDivExplorer, HDivExplorerConfig, OutcomeFn};
use h_divexplorer::datasets::{compas, default_rows};

fn main() {
    let dataset = compas(default_rows::COMPAS, 42);
    let outcomes = dataset.classification_outcomes(OutcomeFn::Fpr);

    println!(
        "compas-like dataset: {} defendants, {} attributes\n",
        dataset.n_rows(),
        dataset.frame.n_attributes()
    );

    let pipeline = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.025,
        tree_min_support: 0.1,
        ..HDivExplorerConfig::default()
    });

    let base = pipeline.fit_mode(&dataset.frame, &outcomes, ExplorationMode::Base);
    let hier = pipeline.fit_mode(&dataset.frame, &outcomes, ExplorationMode::Generalized);

    println!(
        "overall FPR: {:.3}\n",
        hier.report.global_statistic.unwrap()
    );
    println!("== base exploration (fixed leaf discretization) ==");
    println!("{}", base.report.table(5));
    println!("== hierarchical exploration (all granularities) ==");
    println!("{}", hier.report.table(5));

    let b = base.report.max_divergence().unwrap();
    let h = hier.report.max_divergence().unwrap();
    println!(
        "max ΔFPR: base {b:+.3} vs hierarchical {h:+.3}  (hierarchy gain {:+.3})",
        h - b
    );

    // Statistically significant findings only (|t| >= 3).
    let significant = hier.report.significant(3.0).count();
    println!(
        "{significant} of {} subgroups are significant at |t| >= 3",
        hier.report.records.len()
    );

    // The #prior hierarchy that powers the exploration (Fig. 1 of the paper).
    let prior_attr = dataset.frame.schema().id("#prior").unwrap();
    let tree = hier
        .trees
        .iter()
        .find(|t| t.attr == prior_attr)
        .expect("#prior is continuous");
    println!("\n#prior item hierarchy:\n{}", tree.render(&hier.catalog));
}
