//! Advanced analysis: automatic taxonomy discovery from functional
//! dependencies, plus Shapley-value attribution of a subgroup's divergence
//! to its items.
//!
//! ```text
//! cargo run --release --example attribution_and_fd
//! ```

use h_divexplorer::core::{
    global_item_contributions, item_contributions, HDivExplorer, HDivExplorerConfig, OutcomeFn,
};
use h_divexplorer::data::{DataFrameBuilder, Value};
use h_divexplorer::items::discover_fd_taxonomies;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(3);

    // A dataset with a hidden functional dependency: every branch belongs to
    // one region (branch → region). The model's errors cluster in the whole
    // "west" region — visible only at region granularity.
    let branches = [
        ("sf-01", "west"),
        ("sf-02", "west"),
        ("la-01", "west"),
        ("la-02", "west"),
        ("nyc-01", "east"),
        ("nyc-02", "east"),
        ("bos-01", "east"),
        ("bos-02", "east"),
    ];
    let mut b = DataFrameBuilder::new();
    b.add_continuous("amount").unwrap();
    b.add_categorical("branch").unwrap();
    b.add_categorical("region").unwrap();
    let mut y_true = Vec::new();
    let mut y_pred = Vec::new();
    for _ in 0..4_000 {
        let (branch, region) = branches[rng.random_range(0..branches.len())];
        let amount: f64 = rng.random_range(10.0..5_000.0);
        b.push_row(vec![
            Value::Num(amount.round()),
            Value::Cat(branch.into()),
            Value::Cat(region.into()),
        ])
        .unwrap();
        let label = rng.random::<f64>() < 0.5;
        let err_p = if region == "west" && amount > 2_000.0 {
            0.4
        } else {
            0.04
        };
        let err = rng.random::<f64>() < err_p;
        y_true.push(label);
        y_pred.push(label != err);
    }
    let frame = b.finish();
    let outcomes = OutcomeFn::ErrorRate.compute(&y_true, &y_pred);

    // 1. Discover taxonomies from functional dependencies (branch → region).
    let discovered = discover_fd_taxonomies(&frame, 0.0);
    for (attr, tax) in &discovered {
        println!(
            "discovered FD taxonomy on `{attr}`: e.g. sf-01 → {:?}",
            tax.path("sf-01")
        );
    }

    // 2. Explore with the discovered hierarchies attached.
    let result = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.1,
        ..HDivExplorerConfig::default()
    })
    .with_discovered_taxonomies(&frame, 0.0)
    .fit(&frame, &outcomes);
    println!("\ntop subgroups:\n{}", result.report.table(5));

    // 3. Attribute the top subgroup's divergence to its items (Shapley).
    let top = result.report.top().unwrap();
    println!(
        "Shapley attribution of {} (Δ = {:+.3}):",
        top.label,
        top.divergence.unwrap()
    );
    if let Some(contribs) = item_contributions(&result.report, &top.itemset) {
        for (item, c) in contribs {
            println!("  {:24} {:+.3}", result.catalog.label(item), c);
        }
    }

    // 4. Global item ranking: which single items drive divergence overall?
    println!("\nglobal item contributions (top 5):");
    for (item, c) in global_item_contributions(&result.report)
        .into_iter()
        .take(5)
    {
        println!("  {:24} {:+.3}", result.catalog.label(item), c);
    }
}
