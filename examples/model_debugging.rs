//! Model debugging end-to-end: train a random forest, locate where it
//! fails, and compare H-DivExplorer against Slice Finder and SliceLine.
//!
//! ```text
//! cargo run --release --example model_debugging
//! ```
//!
//! The synthetic-peak dataset (§VI-A) hides an error bump around the point
//! `[0, 1, 2]` in a 3-D cube. Prior tools work on a fixed discretization:
//! Slice Finder stops at the first "problematic enough" slice, SliceLine is
//! bound to leaf items. The hierarchical exploration pins down all three
//! coordinates while respecting the support constraint.

use h_divexplorer::baselines::{SliceFinder, SliceFinderConfig, SliceLine, SliceLineConfig};
use h_divexplorer::core::{ExplorationMode, HDivExplorer, HDivExplorerConfig, OutcomeFn};
use h_divexplorer::datasets::{default_rows, synthetic_peak};
use h_divexplorer::mining::Transactions;

fn main() {
    let dataset = synthetic_peak(default_rows::SYNTHETIC_PEAK, 42);
    let outcomes = dataset.classification_outcomes(OutcomeFn::ErrorRate);
    let losses: Vec<f64> = outcomes.iter().map(|o| o.value().unwrap_or(0.0)).collect();

    let pipeline = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.05,
        tree_min_support: 0.1,
        ..HDivExplorerConfig::default()
    });
    let (catalog, hierarchies, _) = pipeline.discretize(&dataset.frame, &outcomes);
    let leaf_items = hierarchies.leaf_items();

    println!("== Slice Finder (default parameters) ==");
    let sf = SliceFinder::new(SliceFinderConfig::default());
    match sf
        .find(&dataset.frame, &catalog, &leaf_items, &losses)
        .first()
    {
        Some(s) => println!(
            "stops at {}  (size {}, effect {:.2})\n",
            s.label, s.size, s.effect_size
        ),
        None => println!("found nothing\n"),
    }

    println!("== SliceLine (α = 0.95, σ = 5% of rows) ==");
    let sl = SliceLine::new(SliceLineConfig {
        alpha: 0.95,
        min_size: dataset.n_rows() / 20,
        k: 3,
        ..SliceLineConfig::default()
    });
    for s in sl.find(&dataset.frame, &catalog, &leaf_items, &losses) {
        println!(
            "{}  (size {}, mean error {:.3}, score {:.3})",
            s.label, s.size, s.mean_error, s.score
        );
    }

    println!("\n== base DivExplorer (same leaf items) ==");
    let base = pipeline.fit_mode(&dataset.frame, &outcomes, ExplorationMode::Base);
    println!("{}", base.report.table(3));

    println!("== H-DivExplorer (hierarchical) ==");
    let hier = pipeline.fit_mode(&dataset.frame, &outcomes, ExplorationMode::Generalized);
    println!("{}", hier.report.table(3));
    println!(
        "hierarchical exploration finds Δerror {:+.3} vs base {:+.3} at the same support",
        hier.report.max_divergence().unwrap(),
        base.report.max_divergence().unwrap(),
    );

    // Bonus: the pipeline internals are reusable — count generalized items.
    let transactions =
        Transactions::encode_generalized(&dataset.frame, &catalog, &hierarchies, &outcomes);
    println!(
        "item universe: {} leaves, {} items at all granularities",
        leaf_items.len(),
        transactions.distinct_items().len(),
    );
}
