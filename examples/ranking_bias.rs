//! Ranking-bias audit: which candidate subgroups are under-exposed in a
//! ranker's top-k?
//!
//! ```text
//! cargo run --release --example ranking_bias
//! ```
//!
//! §III-B notes the divergence framework covers "rates related to rankings".
//! We simulate a hiring ranker that systematically under-ranks older
//! candidates from one region, then analyse top-20 exposure divergence and
//! discounted (position-weighted) exposure divergence.

use h_divexplorer::core::{
    discounted_exposure_outcomes, topk_exposure_outcomes, HDivExplorer, HDivExplorerConfig,
};
use h_divexplorer::data::{DataFrameBuilder, Value};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let n = 3_000;
    let lists = 150; // candidates are ranked within lists of 20

    let mut b = DataFrameBuilder::new();
    b.add_continuous("age").unwrap();
    b.add_continuous("experience").unwrap();
    b.add_categorical("region").unwrap();

    // Score candidates; the ranker penalises age>50 in the "south" region.
    let mut scored: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let age: f64 = rng.random_range(22.0..65.0);
        let exp: f64 = rng.random_range(0.0..(age - 20.0).min(30.0));
        let region = ["north", "south", "east"][rng.random_range(0..3usize)];
        let merit = exp * 2.0 + rng.random_range(0.0..20.0);
        let penalty = if age > 50.0 && region == "south" {
            25.0
        } else {
            0.0
        };
        scored.push((i, merit - penalty));
        rows.push((age.round(), exp.round(), region));
    }
    for &(age, exp, region) in &rows {
        b.push_row(vec![
            Value::Num(age),
            Value::Num(exp),
            Value::Cat(region.into()),
        ])
        .unwrap();
    }
    let frame = b.finish();

    // Rank within lists of n/lists candidates each.
    let per_list = n / lists;
    let mut ranks: Vec<Option<u32>> = vec![None; n];
    for chunk in scored.chunks_mut(per_list) {
        chunk.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        for (pos, &(idx, _)) in chunk.iter().enumerate() {
            ranks[idx] = Some(pos as u32 + 1);
        }
    }

    let pipeline = HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.05,
        ..HDivExplorerConfig::default()
    });

    // 1. Top-5 exposure: is the subgroup's chance of ranking in the top 5 of
    //    its list divergent?
    let topk = topk_exposure_outcomes(&ranks, 5);
    let result = pipeline.fit(&frame, &topk);
    println!(
        "top-5 exposure rate overall: {:.3}",
        result.report.global_statistic.unwrap()
    );
    println!("\nmost under-exposed subgroups (negative divergence):");
    let mut under: Vec<_> = result
        .report
        .records
        .iter()
        .filter(|r| r.divergence.is_some())
        .collect();
    under.sort_by(|a, b| a.divergence.partial_cmp(&b.divergence).unwrap());
    for r in under.iter().take(5) {
        println!(
            "  {:40} sup={:.3} Δexposure={:+.3} p={:.2e}",
            r.label,
            r.support,
            r.divergence.unwrap(),
            r.p_value
        );
    }

    // 2. Discounted exposure (position-weighted): same story, softer signal.
    let discounted = discounted_exposure_outcomes(&ranks);
    let result2 = pipeline.fit(&frame, &discounted);
    let worst = result2
        .report
        .records
        .iter()
        .filter(|r| r.divergence.is_some())
        .min_by(|a, b| a.divergence.partial_cmp(&b.divergence).unwrap())
        .unwrap();
    println!(
        "\nworst discounted-exposure subgroup: {}  Δ={:+.3}",
        worst.label,
        worst.divergence.unwrap()
    );

    // 3. FDR-controlled findings (10% false-discovery rate).
    let survivors = result.report.significant_fdr(0.1);
    println!(
        "\n{} of {} subgroups survive FDR control at q = 0.1",
        survivors.len(),
        result.report.records.len()
    );
}
