//! Real-valued divergence with categorical taxonomies: who earns far more
//! than average?
//!
//! ```text
//! cargo run --release --example income_divergence
//! ```
//!
//! Mirrors the paper's folktables analysis (§VI-B, Table IV): the statistic
//! is the *income itself* (so only the divergence-based split criterion
//! applies), and two categorical attributes carry taxonomies — occupation
//! super-categories (`OCCP=MGR` covers all managerial occupations) and a
//! geographical place-of-birth hierarchy. Generalized items let the
//! exploration report `OCCP=MGR` where no single occupation is frequent
//! enough on its own.

use h_divexplorer::core::{ExplorationMode, HDivExplorerConfig};
use h_divexplorer::datasets::folktables;
use h_divexplorer::discretize::GainCriterion;

fn main() {
    // A quarter of the paper's 195,556 rows keeps this example snappy.
    let dataset = folktables(48_889, 42);
    let outcomes = dataset.target_outcomes();

    // Attach the dataset's taxonomies to the pipeline.
    let mut pipeline = h_divexplorer::core::HDivExplorer::new(HDivExplorerConfig {
        min_support: 0.025,
        tree_min_support: 0.1,
        criterion: GainCriterion::Divergence,
        max_len: Some(4),
        ..HDivExplorerConfig::default()
    });
    for (attr, taxonomy) in &dataset.taxonomies {
        pipeline = pipeline.with_taxonomy(attr.clone(), taxonomy.clone());
    }

    let base = pipeline.fit_mode(&dataset.frame, &outcomes, ExplorationMode::Base);
    let hier = pipeline.fit_mode(&dataset.frame, &outcomes, ExplorationMode::Generalized);

    println!(
        "mean income: {:.0}\n",
        hier.report.global_statistic.unwrap()
    );
    println!("== base exploration ==");
    println!("{}", base.report.table(5));
    println!("== hierarchical exploration (taxonomies + interval hierarchies) ==");
    println!("{}", hier.report.table(5));

    // Show that the top hierarchical finding uses generalized items.
    let top = hier.report.top().unwrap();
    println!("top subgroup: {}", top.label);
    for &item in top.itemset.items() {
        let h = hier
            .hierarchies
            .get(hier.catalog.attr_of(item))
            .expect("item belongs to a hierarchy");
        let kind = if h.is_leaf(item) {
            "leaf"
        } else {
            "generalized (non-leaf)"
        };
        println!("  {:30} [{kind}]", hier.catalog.label(item));
    }
}
